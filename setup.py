"""Setup shim for editable installs with older setuptools/pip toolchains."""
from setuptools import setup

setup()
