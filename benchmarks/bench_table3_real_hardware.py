"""Benchmark: Table III — attack exploration on simulated real hardware.

Trains a PPO agent against a blackbox machine model (hidden replacement
policy, measurement noise, no flush) and reports the attack accuracy and the
extracted sequence.  At bench scale a single 4-way L2 partition is explored;
``REPRO_BENCH_SCALE=paper`` covers all seven machine/level combinations.
"""

import pytest

from benchmarks._common import emit, run_once
from repro.experiments import table3


@pytest.mark.table
def test_table3_real_hardware(benchmark, bench_scale):
    rows = run_once(benchmark, table3.run, scale=bench_scale)
    emit("Table III", table3.format_results(rows))
    assert rows
    # Sanity: the agent is at least at the accuracy of always guessing one of
    # the two possible secrets; the table records how far beyond that the
    # bench-scale budget got on the noisy, hidden-policy blackbox.
    assert all(row["accuracy"] >= 0.45 for row in rows)
    assert all(row["env_steps"] > 0 for row in rows)
