"""Benchmark: Table X — covert-channel bit rates on (simulated) real machines.

Expected shape: StealthyStreamline beats the LRU address-based channel on every
machine, with a larger relative improvement on the 12-way RocketLake L1Ds than
on the 8-way parts (the paper reports up to 24% and up to 71% respectively).
"""

import pytest

from benchmarks._common import emit
from repro.experiments import table10_fig5


@pytest.mark.table
def test_table10_covert_bitrate(benchmark):
    rows = benchmark(table10_fig5.run, message_bits=2048)
    emit("Table X", table10_fig5.format_results(rows))
    assert len(rows) == 4
    for row in rows:
        assert row["ss_bit_rate_mbps"] > row["lru_bit_rate_mbps"]
        assert row["improvement"] > 0.1
    eight_way = max(row["improvement"] for row in rows if "8way" in row["l1d_config"])
    twelve_way = max(row["improvement"] for row in rows if "12way" in row["l1d_config"])
    assert twelve_way > eight_way
