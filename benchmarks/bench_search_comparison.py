"""Benchmark: Section VI-A — brute-force search versus RL.

Expected shape: the analytical brute-force step count grows exponentially with
associativity and exceeds the paper's ~1M-step RL budget by orders of
magnitude at 8 ways and beyond.
"""

import pytest

from benchmarks._common import emit
from repro.experiments import search_comparison


@pytest.mark.table
def test_search_comparison(benchmark, bench_scale):
    rows = benchmark(search_comparison.run, scale=bench_scale)
    emit("Section VI-A", search_comparison.format_results(rows))
    analytical = {row["num_ways"]: row for row in rows if row["kind"] == "analytical"}
    assert analytical[8]["brute_force_steps"] > 100 * analytical[8]["rl_steps_reference"]
    assert analytical[16]["brute_force_steps"] > analytical[8]["brute_force_steps"]
    empirical = [row for row in rows if "empirical" in row["kind"]]
    assert empirical
