"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
rows it produced.  The training budget is controlled by the
``REPRO_BENCH_SCALE`` environment variable (``smoke``, ``bench`` — the
default — or ``paper``); see EXPERIMENTS.md for how the bench-scale budgets
relate to the paper's GPU-cluster budgets.
"""

from __future__ import annotations

import os

import pytest

import repro
from repro.experiments.common import get_scale


def pytest_configure(config):
    config.addinivalue_line("markers", "table: benchmark regenerating a paper table")
    config.addinivalue_line("markers", "figure: benchmark regenerating a paper figure")


@pytest.fixture(scope="session")
def bench_scale():
    """The experiment scale used by all RL-based benchmarks."""
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "bench"))


@pytest.fixture(scope="session")
def make_env():
    """Scenario-registry constructor: benchmarks build envs via ``repro.make``."""
    return repro.make


@pytest.fixture(scope="session")
def scenario_ids():
    """All registered scenario ids (the benchmark workload catalogue)."""
    return repro.list_scenarios()


def emit(title: str, text: str) -> None:
    """Print a regenerated table so it appears in the benchmark log."""
    print(f"\n=== {title} ===")
    print(text)
