"""Benchmark: Table VII — attacking the partition-locked (PL) cache.

Expected shape: the agent still finds an attack with the victim line locked,
but needs at least as much training as against the unprotected baseline.
"""

import pytest

from benchmarks._common import emit, run_once
from repro.experiments import table7


@pytest.mark.table
def test_table7_plcache(benchmark, bench_scale):
    rows = run_once(benchmark, table7.run, scale=bench_scale)
    emit("Table VII", table7.format_results(rows))
    by_cache = {row["cache"]: row for row in rows}
    assert set(by_cache) == {"PL Cache", "Baseline"}
    assert by_cache["PL Cache"]["epochs_to_converge"] >= 0.0
    assert by_cache["Baseline"]["accuracy"] >= 0.5
