"""Benchmark: Table IV — attacks across diverse cache/attack configurations.

All 17 configurations are verified with their textbook attack; RL training
runs on a subset at bench scale (every configuration at paper scale).
"""

import pytest

from benchmarks._common import emit, run_once
from repro.experiments import table4


@pytest.mark.table
def test_table4_configs(benchmark, bench_scale):
    rl_subset = (5, 6) if bench_scale.name == "bench" else None
    rows = run_once(benchmark, table4.run, scale=bench_scale, rl_configs=rl_subset)
    emit("Table IV", table4.format_results(rows))
    assert len(rows) == 17
    assert all(row["textbook_accuracy"] >= 0.5 for row in rows)
    trained = [row for row in rows if row["rl_trained"]]
    if trained:
        assert all(row["rl_accuracy"] is not None and row["rl_accuracy"] > 0.45
                   for row in trained)
        # At least one of the trained configurations converges to a reliable
        # attack within the bench-scale budget.
        assert max(row["rl_accuracy"] for row in trained) > 0.9
