"""Benchmark: Table IX — bypassing the Cyclone-style SVM detector.

Expected shape: the textbook attacker is detected at a high rate; the agent
trained with the SVM penalty is detected far less often than the textbook
attacker.
"""

import pytest

from benchmarks._common import emit, run_once
from repro.experiments import table9


@pytest.mark.table
def test_table9_svm_bypass(benchmark, bench_scale):
    rows = run_once(benchmark, table9.run, scale=bench_scale)
    emit("Table IX", table9.format_results(rows))
    by_attack = {row["attack"]: row for row in rows}
    assert set(by_attack) == {"textbook", "RL baseline", "RL SVM"}
    assert by_attack["textbook"]["detection_rate"] > 0.5
    assert by_attack["textbook"]["svm_validation_accuracy"] > 0.9
    assert (by_attack["RL SVM"]["detection_rate"]
            <= by_attack["textbook"]["detection_rate"])
