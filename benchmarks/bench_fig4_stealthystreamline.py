"""Benchmark: Figure 4 — StealthyStreamline versus the prior attacks.

Expected shape: StealthyStreamline transmits more bits per access than the
LRU address-based attack while (unlike Streamline) never making the victim
miss, so it bypasses µarch-statistics detection.
"""

import pytest

from benchmarks._common import emit
from repro.experiments import fig4


@pytest.mark.figure
def test_fig4_stealthystreamline(benchmark):
    rows = benchmark(fig4.run, num_ways=8, message_bits=512)
    emit("Figure 4", fig4.format_results(rows))
    by_name = {row["channel"]: row for row in rows}
    stealthy = by_name["stealthy_streamline"]
    assert stealthy["bypasses_miss_detection"]
    assert stealthy["error_rate"] == 0.0
    assert stealthy["bits_per_access"] > by_name["lru_address_based"]["bits_per_access"]
    assert not by_name["streamline"]["bypasses_miss_detection"]


@pytest.mark.figure
def test_fig4_cache_state_walkthrough(benchmark):
    rows = benchmark(fig4.cache_state_walkthrough, num_ways=8)
    assert all(row["correct"] for row in rows)
