"""Training throughput: the compiled/fused RL fast path vs the legacy graph path.

Measures PPO training on ``guessing/lru-4way`` (mlp backbone, default
``PPOConfig``) in three modes:

* ``graph``        — the legacy path: graph-based ``policy.act()``
  (``REPRO_DISABLE_COMPILED=1``) and composed per-primitive autodiff kernels
  (:func:`repro.autodiff.functional.composed_ops`), i.e. the pre-fast-path
  execution model.  (The persistent rollout buffer and in-place Adam are
  active in every mode — they are bit-identical infrastructure — so the
  reported speedup is a conservative lower bound on the improvement over the
  true pre-PR code.)
* ``fast``         — the default path: graph-free compiled inference plans
  plus the fused PPO update kernel, float64 (bit-identical to ``graph``).
* ``fast-float32`` — the same fast path with the opt-in
  ``PPOConfig(dtype="float32")`` policy/optimizer mode.

Two metrics per mode:

* **updates/sec** — repeated ``PPOUpdater.update()`` calls over one collected
  rollout (32 minibatch steps per update at the default config);
* **env-steps/sec (end-to-end)** — a real ``train()`` loop: rollout
  collection, updates, and periodic evaluation included.

Plus a **telemetry overhead** measurement on the fast path: updates/sec of
the same ``train()`` loop with telemetry disabled vs enabled (the PR 10
acceptance budget is < 2% regression with ``REPRO_TELEMETRY=1``).

Appends one entry to the perf trajectory file ``BENCH_train.json`` at the
repo root, so successive PRs accumulate a training-throughput history.

Usage::

    PYTHONPATH=src python benchmarks/bench_train_throughput.py [--smoke]
        [--scenario guessing/lru-4way] [--updates 5] [--trials 3]
        [--output BENCH_train.json]
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import time
from pathlib import Path

from repro.autodiff import functional as F
from repro.rl.ppo import PPOConfig
from repro.rl.trainer import PPOTrainer

DEFAULT_SCENARIO = "guessing/lru-4way"
MODES = ("graph", "fast", "fast-float32")


@contextlib.contextmanager
def _mode(mode: str):
    """Activate one execution mode for the duration of a measurement."""
    if mode == "graph":
        previous = os.environ.get("REPRO_DISABLE_COMPILED")
        os.environ["REPRO_DISABLE_COMPILED"] = "1"
        try:
            with F.composed_ops():
                yield
        finally:
            if previous is None:
                os.environ.pop("REPRO_DISABLE_COMPILED", None)
            else:
                os.environ["REPRO_DISABLE_COMPILED"] = previous
    else:
        yield


def _make_trainer(mode: str, scenario: str, seed: int = 0) -> PPOTrainer:
    dtype = "float32" if mode == "fast-float32" else "float64"
    return PPOTrainer(scenario, seed=seed, ppo_config=PPOConfig(dtype=dtype))


def measure_updates(scenario: str, repeats: int, trials: int) -> dict:
    """Best-of-``trials`` PPO updates/sec per mode, over one fixed rollout.

    The modes are timed alternately within each trial so transient machine
    load hits all of them rather than biasing one.
    """
    states = {}
    for mode in MODES:
        with _mode(mode):
            trainer = _make_trainer(mode, scenario)
            observations = trainer.vec_env.reset()
            buffer, _ = trainer._collect_rollout(observations)
            trainer.updater.update(buffer)  # warm up workspaces/moments
            states[mode] = (trainer, buffer)
    best = {mode: 0.0 for mode in MODES}
    for _ in range(trials):
        for mode in MODES:
            trainer, buffer = states[mode]
            with _mode(mode):
                start = time.perf_counter()
                for _ in range(repeats):
                    trainer.updater.update(buffer)
                best[mode] = max(best[mode],
                                 repeats / (time.perf_counter() - start))
    return best


def measure_end_to_end(scenario: str, max_updates: int, trials: int) -> dict:
    """Aggregate env-steps/sec of full train() loops (rollout+update+eval).

    Modes alternate within each trial; best of ``trials`` per mode.
    """
    best = {mode: 0.0 for mode in MODES}
    for _ in range(trials):
        for mode in MODES:
            with _mode(mode):
                trainer = _make_trainer(mode, scenario)
                start = time.perf_counter()
                # target_accuracy > 1 can never be reached, so the loop always
                # runs the full update budget however fast the agent learns.
                trainer.train(max_updates=max_updates, eval_every=5,
                              target_accuracy=2.0)
                elapsed = time.perf_counter() - start
                best[mode] = max(best[mode], trainer.env_steps / elapsed)
    return best


def measure_telemetry_overhead(scenario: str, max_updates: int,
                               trials: int) -> dict:
    """Updates/sec of the default fast path with telemetry off vs on.

    The PR 10 acceptance budget is < 2% regression with ``REPRO_TELEMETRY=1``.
    Handles sample the enabled flag at trainer construction, so each
    measurement builds a fresh trainer after ``telemetry.configure``; the
    process-wide override is restored (and the registry drained) afterwards
    so the bench leaves no telemetry state behind.
    """
    from repro import telemetry

    best = {False: 0.0, True: 0.0}
    try:
        for _ in range(trials):
            for enabled in (False, True):  # off first: cold-cache parity
                telemetry.configure(enabled=enabled, reset=True)
                trainer = _make_trainer("fast", scenario)
                start = time.perf_counter()
                trainer.train(max_updates=max_updates, eval_every=5,
                              target_accuracy=2.0)
                elapsed = time.perf_counter() - start
                best[enabled] = max(best[enabled],
                                    trainer.updates_done / elapsed)
    finally:
        telemetry.configure(enabled=None, reset=True)
    overhead_pct = 100.0 * (1.0 - best[True] / best[False])
    return {"updates_per_second_off": round(best[False], 2),
            "updates_per_second_on": round(best[True], 2),
            "overhead_pct": round(overhead_pct, 2)}


def run(scenario: str = DEFAULT_SCENARIO, repeats: int = 5, trials: int = 3,
        train_updates: int = 10, train_trials: int = 2) -> dict:
    config = PPOConfig()
    update_rates = measure_updates(scenario, repeats, trials)
    step_rates = measure_end_to_end(scenario, train_updates, train_trials)
    telemetry_overhead = measure_telemetry_overhead(scenario, train_updates,
                                                    train_trials)
    results = []
    for mode in MODES:
        row = {"mode": mode,
               "dtype": "float32" if mode == "fast-float32" else "float64",
               "updates_per_second": round(update_rates[mode], 2),
               "env_steps_per_second": round(step_rates[mode], 1)}
        results.append(row)
        print(f"{mode:13s} {row['updates_per_second']:8.2f} updates/s  "
              f"{row['env_steps_per_second']:9.0f} env-steps/s")
    baseline = results[0]
    speedups = {}
    for row in results[1:]:
        key = row["mode"].replace("-", "_")
        speedups[f"updates_{key}_vs_graph"] = round(
            row["updates_per_second"] / baseline["updates_per_second"], 2)
        speedups[f"env_steps_{key}_vs_graph"] = round(
            row["env_steps_per_second"] / baseline["env_steps_per_second"], 2)
    return {
        "benchmark": "train_throughput",
        "scenario": scenario,
        "backbone": "mlp",
        "config": {"num_envs": config.num_envs, "horizon": config.horizon,
                   "minibatch_size": config.minibatch_size,
                   "update_epochs": config.update_epochs},
        "update_repeats": repeats,
        "trials": trials,
        "train_updates": train_updates,
        "train_trials": train_trials,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "results": results,
        "speedups": speedups,
        "telemetry": telemetry_overhead,
    }


def append_trajectory(entry: dict, output: Path) -> None:
    """Append one entry to the perf trajectory JSON (a list of entries)."""
    history = []
    if output.exists():
        data = json.loads(output.read_text())
        history = data.get("entries", [])
    history.append(entry)
    output.write_text(json.dumps({"entries": history}, indent=2) + "\n")


def record_in_catalog(entry: dict, catalog_file: Path, source: str) -> None:
    """Mirror one trajectory entry into the campaign-service bench table."""
    from repro.store.catalog import Catalog
    from repro.store.ingest import record_bench_entry

    with Catalog(catalog_file) as catalog:
        rows = record_bench_entry(catalog, entry, source)
    print(f"recorded {rows} bench row(s) in {catalog_file}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--scenario", default=DEFAULT_SCENARIO)
    parser.add_argument("--updates", type=int, default=5,
                        help="PPO updates per updates/sec measurement")
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--train-updates", type=int, default=10,
                        help="updates per end-to-end train() measurement")
    parser.add_argument("--train-trials", type=int, default=2)
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale: fewer updates, one trial")
    parser.add_argument("--output", default=None,
                        help="perf trajectory JSON (default: BENCH_train.json "
                             "at the repo root)")
    parser.add_argument("--catalog", default=None,
                        help="also record this entry's metrics in the given "
                             "campaign-service catalogue (catalog.sqlite)")
    args = parser.parse_args()
    if args.smoke:
        args.updates = min(args.updates, 2)
        args.trials = 1
        args.train_updates = min(args.train_updates, 4)
        args.train_trials = 1
    entry = run(args.scenario, args.updates, args.trials, args.train_updates,
                args.train_trials)
    if args.smoke:
        entry["scale"] = "smoke"
    output = Path(args.output) if args.output else \
        Path(__file__).resolve().parent.parent / "BENCH_train.json"
    append_trajectory(entry, output)
    if args.catalog:
        record_in_catalog(entry, Path(args.catalog), output.name)
    overhead = entry["telemetry"]
    print(f"telemetry overhead: {overhead['updates_per_second_off']:.2f} -> "
          f"{overhead['updates_per_second_on']:.2f} updates/s "
          f"({overhead['overhead_pct']:+.2f}%)")
    speedups = entry["speedups"]
    print(f"fast vs graph: {speedups['updates_fast_vs_graph']:.2f}x updates/s, "
          f"{speedups['env_steps_fast_vs_graph']:.2f}x env-steps/s; "
          f"float32: {speedups['updates_fast_float32_vs_graph']:.2f}x / "
          f"{speedups['env_steps_fast_float32_vs_graph']:.2f}x -> {output}")


if __name__ == "__main__":
    main()
