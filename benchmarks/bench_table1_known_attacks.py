"""Benchmark: Table I — the known-attack catalogue verified on the simulator.

Runs through the campaign API (``repro.run``), so the benchmark also covers
the experiment-registry expansion and per-cell artifact writes.
"""

import pytest

import repro
from benchmarks._common import emit


@pytest.mark.table
def test_table1_known_attacks(benchmark, tmp_path_factory):
    def campaign():
        out_dir = tmp_path_factory.mktemp("table1")
        return repro.run("table1", scale="smoke", out_dir=out_dir)

    result = benchmark(campaign)
    emit("Table I", result.format_results())
    assert all(row["accuracy"] == 1.0 for row in result.rows)
