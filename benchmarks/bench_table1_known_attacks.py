"""Benchmark: Table I — the known-attack catalogue verified on the simulator."""

import pytest

from benchmarks._common import emit
from repro.experiments import table1_known_attacks


@pytest.mark.table
def test_table1_known_attacks(benchmark):
    rows = benchmark(table1_known_attacks.run)
    emit("Table I", table1_known_attacks.format_results(rows))
    assert all(row["accuracy"] == 1.0 for row in rows)
