"""Environment throughput: per-env object backend vs the SoA batched engine.

Measures aggregate guessing-game steps/sec through :class:`repro.rl.vec_env.VecEnv`
for the two execution paths —

* ``object``  — per-env object-model caches, stepped in a Python loop
  (``backend="object"`` forces it);
* ``soa``     — the collapsed structure-of-arrays batched fast path;

under two workloads —

* ``random`` — uniform-random actions (an untrained agent; episodes end after
  ~4 steps because a quarter of the actions are guesses, so this workload is
  reset-dominated);
* ``replay`` — the canonical prime+probe attack schedule (what a converged
  agent plays): fill accesses, victim trigger, probe accesses, final guess at
  the episode-length limit.

A defended-scenario row (default ``defended/lru-4way-keyed-remap``, which
exercises the keyed-remap SoA kernel) is measured at the headline env count so
defense overhead lands in the trajectory alongside the plain-cache rows.

Appends one entry to the perf trajectory file ``BENCH_throughput.json`` at the
repo root, so successive PRs accumulate a throughput history.

Usage::

    PYTHONPATH=src python benchmarks/bench_env_throughput.py [--smoke]
        [--scenario guessing/lru-4way] [--num-envs 1 8 32]
        [--defended-scenario defended/lru-4way-keyed-remap]
        [--steps 4000] [--trials 3] [--output BENCH_throughput.json]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

import repro
from repro.env.actions import ActionKind

DEFAULT_SCENARIO = "guessing/lru-4way"
DEFAULT_DEFENDED_SCENARIO = "defended/lru-4way-keyed-remap"
DEFAULT_NUM_ENVS = (1, 8, 32, 128)
HEADLINE_NUM_ENVS = 32


def replay_schedule(scenario: str) -> list:
    """A full-length attack episode: prime, trigger, probe, guess at the end."""
    env = repro.make(scenario)
    access = [i for i, a in enumerate(env.actions) if a.kind is ActionKind.ACCESS]
    trigger = env.actions.trigger_index
    guess = env.actions.guess_indices[0]
    length = env.max_steps
    schedule = []
    for step in range(length - 1):
        if step == len(access):
            schedule.append(trigger)
        else:
            schedule.append(access[step % len(access)])
    schedule.append(guess)
    return schedule


def _workload_actions(scenario: str, workload: str, steps: int,
                      num_envs: int, num_actions: int) -> np.ndarray:
    if workload == "random":
        rng = np.random.default_rng(0)
        return rng.integers(num_actions, size=(steps, num_envs))
    schedule = replay_schedule(scenario)
    actions = np.empty((steps, num_envs), dtype=np.int64)
    for i in range(steps):
        actions[i] = schedule[i % len(schedule)]
    return actions


def _time_one(vec, actions: np.ndarray) -> float:
    vec.reset()
    steps = actions.shape[0]
    start = time.perf_counter()
    for i in range(steps):
        vec.step(actions[i])
    return steps * vec.num_envs / (time.perf_counter() - start)


def measure(scenario: str, workload: str, num_envs: int,
            steps: int, trials: int) -> tuple:
    """Best-of-``trials`` aggregate env-steps/sec for (object, soa).

    The two backends are timed alternately within each trial so transient
    machine load hits both, not just one.  Backends are forced explicitly:
    "auto" would fall back to the object path below the batching threshold,
    muddying the comparison.
    """
    from repro.rl.vec_env import VecEnv

    vec_object = VecEnv(scenario, num_envs=num_envs, backend="object")
    # batching_threshold=1 forces the batched engine even below VecEnv's
    # normal num_envs>=4 collapse rule (production "soa"/"auto" configs fall
    # back to the object path there) so the crossover stays measurable.
    vec_soa = VecEnv(scenario, num_envs=num_envs, backend="soa",
                     batching_threshold=1)
    if not vec_soa.batched:
        raise RuntimeError(f"scenario {scenario!r} did not engage the batched path")
    actions = _workload_actions(scenario, workload, steps, num_envs,
                                vec_soa.num_actions)
    best_object = best_soa = 0.0
    for _ in range(trials):
        best_object = max(best_object, _time_one(vec_object, actions))
        best_soa = max(best_soa, _time_one(vec_soa, actions))
    return best_object, best_soa


def run(scenario: str = DEFAULT_SCENARIO, num_envs=DEFAULT_NUM_ENVS,
        steps: int = 4000, trials: int = 3,
        defended_scenario: str = DEFAULT_DEFENDED_SCENARIO) -> dict:
    """Measure all backend/workload/num_envs combinations; return the entry."""
    def measure_rows(target_scenario, counts):
        rows = []
        for workload in ("random", "replay"):
            for count in counts:
                object_rate, soa_rate = measure(target_scenario, workload, count,
                                                steps, trials)
                row = {"scenario": target_scenario, "workload": workload,
                       "num_envs": count,
                       "object_steps_per_second": round(object_rate, 1),
                       "soa_steps_per_second": round(soa_rate, 1),
                       "speedup": round(soa_rate / object_rate, 2)}
                rows.append(row)
                print(f"{target_scenario:30s} {workload:6s} num_envs={count:3d}  "
                      f"object={row['object_steps_per_second']:10.0f}/s  "
                      f"soa={row['soa_steps_per_second']:10.0f}/s  "
                      f"speedup={row['speedup']:.2f}x")
        return rows

    results = measure_rows(scenario, num_envs)
    # Defense overhead row: the keyed-remap SoA kernel at the headline width.
    defended_results = (measure_rows(defended_scenario, (HEADLINE_NUM_ENVS,))
                        if defended_scenario else [])
    headline = [r for r in results
                if r["num_envs"] == HEADLINE_NUM_ENVS] or results[-1:]
    best = max(headline, key=lambda r: r["speedup"])
    entry = {
        "benchmark": "env_throughput",
        "scenario": scenario,
        "steps_per_measurement": steps,
        "trials": trials,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "results": results + defended_results,
        "headline_speedup": best["speedup"],
        "headline_num_envs": best["num_envs"],
    }
    if defended_results:
        entry["defended_scenario"] = defended_scenario
        entry["defended_headline_speedup"] = max(r["speedup"]
                                                 for r in defended_results)
    return entry


def append_trajectory(entry: dict, output: Path) -> None:
    """Append one entry to the perf trajectory JSON (a list of entries)."""
    history = []
    if output.exists():
        data = json.loads(output.read_text())
        history = data.get("entries", [])
    history.append(entry)
    output.write_text(json.dumps({"entries": history}, indent=2) + "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--scenario", default=DEFAULT_SCENARIO)
    parser.add_argument("--defended-scenario", default=DEFAULT_DEFENDED_SCENARIO,
                        help="defended scenario measured at the headline env "
                             "count (empty string disables)")
    parser.add_argument("--num-envs", type=int, nargs="+",
                        default=list(DEFAULT_NUM_ENVS))
    parser.add_argument("--steps", type=int, default=4000)
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale: fewer steps, one trial, 32 envs only")
    parser.add_argument("--output", default=None,
                        help="perf trajectory JSON (default: BENCH_throughput.json "
                             "at the repo root)")
    parser.add_argument("--catalog", default=None,
                        help="also record this entry's metrics in the given "
                             "campaign-service catalogue (catalog.sqlite)")
    args = parser.parse_args()
    if args.smoke:
        args.steps = min(args.steps, 500)
        args.trials = 1
        args.num_envs = [HEADLINE_NUM_ENVS]
    entry = run(args.scenario, tuple(args.num_envs), args.steps, args.trials,
                defended_scenario=args.defended_scenario)
    if args.smoke:
        entry["scale"] = "smoke"
    output = Path(args.output) if args.output else \
        Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
    append_trajectory(entry, output)
    if args.catalog:
        record_in_catalog(entry, Path(args.catalog), output.name)
    print(f"headline speedup at num_envs={entry['headline_num_envs']}: "
          f"{entry['headline_speedup']:.2f}x -> {output}")


def record_in_catalog(entry: dict, catalog_file: Path, source: str) -> None:
    """Mirror one trajectory entry into the campaign-service bench table."""
    from repro.store.catalog import Catalog
    from repro.store.ingest import record_bench_entry

    with Catalog(catalog_file) as catalog:
        rows = record_bench_entry(catalog, entry, source)
    print(f"recorded {rows} bench row(s) in {catalog_file}")


if __name__ == "__main__":
    main()
