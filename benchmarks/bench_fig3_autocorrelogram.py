"""Benchmark: Figure 3 — conflict-event trains and autocorrelograms.

Regenerates the event train and autocorrelogram of the textbook prime+probe
attacker (the paper's periodic reference series).  The RL agents' trains are
produced by the Table VIII benchmark; this one isolates the fast, deterministic
part so the figure's inputs can be rebuilt quickly.
"""

import pytest

from benchmarks._common import emit
from repro.analysis.autocorrelogram import event_train_autocorrelogram
from repro.attacks.scripted import TextbookPrimeProbeAttacker, run_scripted_attacker
from repro.detection.autocorrelation import AutocorrelationDetector
from repro.experiments.table8_fig3 import make_covert_env_factory


def _textbook_figure_data():
    env = make_covert_env_factory(num_sets=4, episode_length=160)(0)
    stats = run_scripted_attacker(env, TextbookPrimeProbeAttacker(env), episodes=1)
    events = env.backend.events
    train = events.conflict_train() if events is not None else []
    return event_train_autocorrelogram(train, max_lag=30)


@pytest.mark.figure
def test_fig3_autocorrelogram(benchmark):
    figure = benchmark(_textbook_figure_data)
    emit("Figure 3 (textbook event train)",
         f"train length = {figure['length']}, "
         f"max autocorrelation beyond lag 0 = {figure['max_beyond_lag_zero']:.3f}")
    assert figure["length"] > 10
    assert figure["max_beyond_lag_zero"] > 0.75
    detector = AutocorrelationDetector()
    assert detector.detect(figure["train"])
