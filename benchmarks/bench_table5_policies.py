"""Benchmark: Table V — RL training statistics per replacement policy.

Runs through the campaign API (``repro.run``) with a worker pool, so the
timing covers exactly what a user invoking ``python -m repro run table5``
pays: cell expansion, parallel training, and artifact persistence.

Expected shape (matching the paper): RRIP takes more epochs to converge and
yields a longer attack sequence than LRU and PLRU.
"""

import pytest

import repro
from benchmarks._common import emit, run_once


@pytest.mark.table
def test_table5_replacement_policies(benchmark, bench_scale, tmp_path):
    campaign = run_once(benchmark, repro.run, "table5", scale=bench_scale,
                        workers=3, out_dir=tmp_path / "table5")
    rows = campaign.rows
    emit("Table V", campaign.format_results())
    by_policy = {row["replacement_policy"]: row for row in rows}
    assert set(by_policy) == {"lru", "plru", "rrip"}
    # RRIP requires at least as much training as the easiest of LRU/PLRU.
    easiest = min(by_policy["lru"]["epochs_to_converge"],
                  by_policy["plru"]["epochs_to_converge"])
    assert by_policy["rrip"]["epochs_to_converge"] >= easiest
