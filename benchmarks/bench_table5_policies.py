"""Benchmark: Table V — RL training statistics per replacement policy.

Expected shape (matching the paper): RRIP takes more epochs to converge and
yields a longer attack sequence than LRU and PLRU.
"""

import pytest

from benchmarks._common import emit, run_once
from repro.experiments import table5


@pytest.mark.table
def test_table5_replacement_policies(benchmark, bench_scale):
    rows = run_once(benchmark, table5.run, scale=bench_scale)
    emit("Table V", table5.format_results(rows))
    by_policy = {row["replacement_policy"]: row for row in rows}
    assert set(by_policy) == {"lru", "plru", "rrip"}
    # RRIP requires at least as much training as the easiest of LRU/PLRU.
    easiest = min(by_policy["lru"]["epochs_to_converge"],
                  by_policy["plru"]["epochs_to_converge"])
    assert by_policy["rrip"]["epochs_to_converge"] >= easiest
