"""Benchmark: Table VI — attacks against the random replacement policy.

Expected shape: there is no perfectly reliable attack; the step-reward value
trades attack length against accuracy.
"""

import pytest

from benchmarks._common import emit, run_once
from repro.experiments import table6


@pytest.mark.table
def test_table6_random_replacement(benchmark, bench_scale):
    rows = run_once(benchmark, table6.run, scale=bench_scale)
    emit("Table VI", table6.format_results(rows))
    assert len(rows) == 3
    assert all(0.0 <= row["end_accuracy"] <= 1.0 for row in rows)
    assert all(row["episode_length"] >= 1.0 for row in rows)
