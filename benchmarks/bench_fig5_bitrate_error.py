"""Benchmark: Figure 5 — bit rate versus error rate on every machine.

Expected shape: both channels keep their bit rate as noise grows (the curve
spreads along the error axis), and StealthyStreamline's curve sits above the
LRU address-based curve at comparable error rates.
"""

import pytest

from benchmarks._common import emit
from repro.experiments import table10_fig5


@pytest.mark.figure
def test_fig5_bitrate_error_curves(benchmark):
    curves = benchmark(table10_fig5.figure5_curves, message_bits=2048, trials=3)
    lines = []
    for machine, channels in curves.items():
        for channel, points in channels.items():
            best = points[0]
            lines.append(f"{machine:20s} {channel:22s} "
                         f"{best['bit_rate_mbps']:.2f} Mbps @ {best['error_rate_mean']:.3f} error")
    emit("Figure 5 (lowest-noise operating points)", "\n".join(lines))
    assert len(curves) == 4
    for channels in curves.values():
        stealthy = channels["stealthy_streamline"][0]["bit_rate_mbps"]
        lru = channels["lru_address_based"][0]["bit_rate_mbps"]
        assert stealthy > lru
