"""Benchmark: Table VIII — bypassing CC-Hunter's autocorrelation detection.

Expected shape: the textbook prime+probe attacker shows near-perfect
periodicity (high maximum autocorrelation); the autocorrelation-penalized RL
agent stays well below the textbook attacker's autocorrelation.
"""

import pytest

from benchmarks._common import emit, run_once
from repro.experiments import table8_fig3


@pytest.mark.table
def test_table8_cchunter_bypass(benchmark, bench_scale):
    rows = run_once(benchmark, table8_fig3.run, scale=bench_scale)
    emit("Table VIII", table8_fig3.format_results(rows))
    by_attack = {row["attack"]: row for row in rows}
    assert set(by_attack) == {"textbook", "RL baseline", "RL autocor"}
    assert by_attack["textbook"]["max_autocorrelation"] > 0.75
    assert by_attack["textbook"]["guess_accuracy"] > 0.95
    assert (by_attack["RL autocor"]["max_autocorrelation"]
            <= by_attack["textbook"]["max_autocorrelation"])
