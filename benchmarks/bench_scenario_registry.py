"""Benchmark: scenario-registry construction cost across the whole catalogue.

Environment construction sits on the sharding/rollout-worker startup path, so
``repro.make()`` must stay cheap for every registered scenario.  This builds
each constructible scenario once per round (the SVM wrapper variants need a
trained detector and are skipped) and checks the envs actually reset.
"""

import pytest

import repro


def _constructible(scenario_ids):
    return [scenario_id for scenario_id in scenario_ids
            if not any(w["type"] == "svm_detection"
                       for w in repro.get_spec(scenario_id).wrappers)]


def test_make_every_scenario(benchmark, make_env, scenario_ids):
    ids = _constructible(scenario_ids)

    def build_catalogue():
        return [make_env(scenario_id, seed=0) for scenario_id in ids]

    envs = benchmark(build_catalogue)
    assert len(envs) == len(ids)
    for env in envs:
        assert env.reset().shape == (env.observation_size,)


@pytest.mark.parametrize("scenario_id", ["guessing/lru-4way", "covert/prime-probe",
                                         "blackbox/core-i7-6700-l2"])
def test_spec_json_round_trip(benchmark, scenario_id):
    spec = repro.get_spec(scenario_id)

    def round_trip():
        return repro.ScenarioSpec.from_json(spec.to_json())

    assert benchmark(round_trip) == spec
