"""Helpers shared by the benchmark files."""

from __future__ import annotations


def emit(title: str, text: str) -> None:
    """Print a regenerated table so it appears in the benchmark log (-s)."""
    print(f"\n=== {title} ===")
    print(text)


def run_once(benchmark, function, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
