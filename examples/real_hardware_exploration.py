#!/usr/bin/env python3
"""Explore attacks against a blackbox "real" machine (the Table III workflow).

The machine models in :mod:`repro.hardware` hide their replacement policy and
add measurement noise, exactly like the CacheQuery-driven real-hardware setup
in the paper.  This example first pokes at one cache set through the
CacheQuery-style batched interface (the manual reverse-engineering a human
would attempt), then trains the RL agent, which needs no such knowledge, and
prints the attack it finds.

Run with:  python examples/real_hardware_exploration.py --machine "Core i7-6700:L2"
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro.experiments import table3
from repro.hardware import CacheQueryInterface, get_machine, list_machines
from repro.runs import CellContext


def probe_with_cachequery(machine_key: str) -> None:
    """Manually measure eviction behaviour, as a human analyst would."""
    machine = get_machine(machine_key)
    interface = CacheQueryInterface(machine, rng=np.random.default_rng(0))
    prime = list(range(1, machine.num_ways + 1))
    with_victim = interface.measure_eviction(prime, prime[0], victim_address=0, repeats=20)
    without_victim = interface.measure_eviction(prime, prime[0], victim_address=None, repeats=20)
    print(f"CacheQuery probing of {machine.name} {machine.cache_level} "
          f"({machine.num_ways} ways, policy "
          f"{'documented: ' + machine.documented_policy if machine.documented_policy else 'not documented'}):")
    print(f"  probe miss rate after priming, victim active : {with_victim:.2f}")
    print(f"  probe miss rate after priming, victim idle    : {without_victim:.2f}")
    print("  (a difference means the set leaks victim activity, but turning that"
          " into a reliable attack sequence is what the RL agent automates)\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--machine", default="Core i7-6700:L2",
                        help=f"one of: {', '.join(list_machines())}")
    parser.add_argument("--scale", default="bench", choices=("smoke", "bench", "paper"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out-dir", default="runs/real-hardware",
                        help="cell artifact directory (checkpoints enable resume)")
    arguments = parser.parse_args()

    probe_with_cachequery(arguments.machine)

    machine = get_machine(arguments.machine)
    print(f"Training the RL agent against the blackbox {machine.name} "
          f"{machine.cache_level}...  (interrupt and re-run to resume)")
    # The Table III driver computes one row per machine; the CellContext makes
    # the training checkpointed/resumable and persists its artifacts.
    ctx = CellContext(Path(arguments.out_dir) / machine.key.replace(":", "-"),
                      checkpoint_every=2)
    row = table3.run_cell({"machine": machine.key}, arguments.scale,
                          seed=arguments.seed, ctx=ctx)

    print(f"\nconverged        : {row['converged']}")
    print(f"guess accuracy   : {row['accuracy']:.3f}")
    print(f"attack sequence  : {row['sequence']}")
    print(f"attack category  : {row['attack_category']}")
    print(f"artifacts        : {ctx.cell_dir}/")


if __name__ == "__main__":
    main()
