#!/usr/bin/env python3
"""Explore attacks against a blackbox "real" machine (the Table III workflow).

The machine models in :mod:`repro.hardware` hide their replacement policy and
add measurement noise, exactly like the CacheQuery-driven real-hardware setup
in the paper.  This example first pokes at one cache set through the
CacheQuery-style batched interface (the manual reverse-engineering a human
would attempt), then trains the RL agent, which needs no such knowledge, and
prints the attack it finds.

Run with:  python examples/real_hardware_exploration.py --machine "Core i7-6700:L2"
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.analysis.classifier import classify_sequence
from repro.attacks.sequences import AttackSequence
from repro.experiments.common import BENCH
from repro.hardware import CacheQueryInterface, get_machine, list_machines
from repro.rl import PPOTrainer
from repro.scenarios import machine_scenario_id


def probe_with_cachequery(machine_key: str) -> None:
    """Manually measure eviction behaviour, as a human analyst would."""
    machine = get_machine(machine_key)
    interface = CacheQueryInterface(machine, rng=np.random.default_rng(0))
    prime = list(range(1, machine.num_ways + 1))
    with_victim = interface.measure_eviction(prime, prime[0], victim_address=0, repeats=20)
    without_victim = interface.measure_eviction(prime, prime[0], victim_address=None, repeats=20)
    print(f"CacheQuery probing of {machine.name} {machine.cache_level} "
          f"({machine.num_ways} ways, policy "
          f"{'documented: ' + machine.documented_policy if machine.documented_policy else 'not documented'}):")
    print(f"  probe miss rate after priming, victim active : {with_victim:.2f}")
    print(f"  probe miss rate after priming, victim idle    : {without_victim:.2f}")
    print("  (a difference means the set leaks victim activity, but turning that"
          " into a reliable attack sequence is what the RL agent automates)\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--machine", default="Core i7-6700:L2",
                        help=f"one of: {', '.join(list_machines())}")
    parser.add_argument("--updates", type=int, default=BENCH.max_updates)
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()

    probe_with_cachequery(arguments.machine)

    machine = get_machine(arguments.machine)
    factory = repro.make_factory(machine_scenario_id(machine.key),
                                 attacker_addresses=machine.num_ways + 1)
    trainer = PPOTrainer(factory, BENCH.ppo_config(), hidden_sizes=BENCH.hidden_sizes,
                         seed=arguments.seed)
    print(f"Training the RL agent against the blackbox {machine.name} {machine.cache_level}...")
    result = trainer.train(max_updates=arguments.updates, eval_every=10, eval_episodes=40,
                           target_accuracy=0.9)

    print(f"\nconverged        : {result.converged}")
    print(f"guess accuracy   : {result.final_accuracy:.3f}")
    extraction = result.extraction or trainer.extract()
    print("attack sequence  :", extraction.render())
    category = classify_sequence(AttackSequence.from_labels(extraction.representative),
                                 factory(0).config)
    print(f"attack category  : {category.value}")


if __name__ == "__main__":
    main()
