#!/usr/bin/env python3
"""StealthyStreamline end to end: simulator correctness, stealth, and bit rates.

Reproduces the three parts of the paper's StealthyStreamline story:

1. transmit a random message through the LRU address-based, Streamline, and
   StealthyStreamline channels on the cache simulator, comparing bits per
   access and whether the sender (victim) ever misses (Figure 4);
2. estimate real-machine bit rates with the per-machine timing models for the
   four Intel processors of Table X / Figure 5;
3. mount a Spectre-v1 attack that exfiltrates a secret string through the
   StealthyStreamline channel (Section V-E).

Run with:  python examples/stealthy_streamline_covert.py
"""

from __future__ import annotations

from repro.attacks import (
    LRUAddressBasedChannel,
    StealthyStreamlineChannel,
    StreamlineChannel,
    run_spectre_demo,
)
from repro.experiments import table10_fig5
from repro.experiments.fig4 import run as fig4_run
from repro.experiments.common import format_table


def main() -> None:
    print("1. Covert channels on the cache simulator (8-way LRU set)")
    rows = fig4_run(num_ways=8, message_bits=2048)
    print(format_table(rows, ["channel", "bits_per_symbol", "bits_per_access",
                              "error_rate", "victim_misses", "bypasses_miss_detection"]))

    print("\n2. Bit rates on the simulated real machines (Table X)")
    table_rows = table10_fig5.run(message_bits=2048)
    print(table10_fig5.format_results(table_rows))

    print("\n3. Bit rate vs error rate (Figure 5, lowest-noise point per machine)")
    curves = table10_fig5.figure5_curves(message_bits=2048, trials=3)
    for machine, channels in curves.items():
        for channel, points in channels.items():
            point = points[0]
            print(f"  {machine:20s} {channel:22s} "
                  f"{point['bit_rate_mbps']:6.2f} Mbps at {point['error_rate_mean']:.3%} error")

    print("\n4. Spectre v1 through the StealthyStreamline channel")
    outcome = run_spectre_demo(secret=b"AutoCAT reproduction")
    print(f"  secret     : {outcome['secret']!r}")
    print(f"  recovered  : {outcome['recovered']!r}")
    print(f"  accuracy   : {outcome['byte_accuracy']:.2%}")
    print(f"  victim (sender) misses: {outcome['sender_misses']}  -> stealthy: {outcome['stealthy']}")


if __name__ == "__main__":
    main()
