#!/usr/bin/env python3
"""Train an attacker that evades detection (the Table VIII / IX case studies).

First the textbook prime+probe attacker is run on a direct-mapped cache covert
channel and scored by two detectors — CC-Hunter's autocorrelation test and a
Cyclone-style SVM over cyclic interference.  Then an RL agent is trained with
the detector's penalty in its reward, and its detection statistics are compared
against the textbook attacker's.

Run with:  python examples/bypass_detection.py [--detector autocorrelation|svm]
"""

from __future__ import annotations

import argparse

import repro
from repro.attacks.scripted import TextbookPrimeProbeAttacker, run_scripted_attacker
from repro.experiments.common import BENCH
from repro.experiments.table8_fig3 import (
    covert_scenario_overrides,
    evaluate_covert_policy,
    make_covert_env_factory,
)
from repro.experiments.table9 import train_detector
from repro.rl import PPOTrainer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--detector", choices=("autocorrelation", "svm"),
                        default="autocorrelation")
    parser.add_argument("--sets", type=int, default=2,
                        help="number of cache sets (4 reproduces the paper's setting)")
    parser.add_argument("--episode-length", type=int, default=64)
    parser.add_argument("--updates", type=int, default=BENCH.max_updates)
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()

    num_sets, episode_length = arguments.sets, arguments.episode_length
    plain_factory = make_covert_env_factory(num_sets, episode_length)

    # 1. Score the textbook attacker.
    textbook_env = plain_factory(arguments.seed)
    textbook = run_scripted_attacker(textbook_env, TextbookPrimeProbeAttacker(textbook_env),
                                     episodes=5)
    print("Textbook prime+probe attacker:")
    print(f"  bit rate            : {textbook['bit_rate']:.3f} guesses/step")
    print(f"  guess accuracy      : {textbook['guess_accuracy']:.3f}")
    print(f"  max autocorrelation : {textbook['max_autocorrelation']:.3f}")

    # 2. Build the detector and the penalized training environment.  Both
    # detector-in-the-loop variants are registered scenarios; the SVM one
    # takes its (non-serializable) trained detector at make() time.
    overrides = covert_scenario_overrides(num_sets, episode_length)
    cyclone = None
    if arguments.detector == "svm":
        cyclone, _ = train_detector(num_sets, episode_length, seed=arguments.seed)
        print(f"  SVM validation accuracy: {cyclone.validation_accuracy:.3f}")
        print(f"  SVM detection rate (textbook): "
              f"{sum(cyclone.detection_rate(t) for t in textbook['traces']) / len(textbook['traces']):.3f}")
        penalized_factory = repro.make_factory("covert/prime-probe-svm",
                                               detector=cyclone, **overrides)
    else:
        penalized_factory = repro.make_factory("covert/prime-probe-cchunter",
                                               **overrides)

    # 3. Train the evading agent and compare.
    print(f"\nTraining an RL attacker with the {arguments.detector} penalty...")
    trainer = PPOTrainer(penalized_factory, BENCH.ppo_config(),
                         hidden_sizes=BENCH.hidden_sizes, seed=arguments.seed)
    trainer.train(max_updates=arguments.updates, eval_every=10, eval_episodes=30,
                  target_accuracy=0.97)
    stats = evaluate_covert_policy(plain_factory, trainer.policy, episodes=5,
                                   seed=arguments.seed)

    print("\nRL attacker trained with the detection penalty:")
    print(f"  bit rate            : {stats['bit_rate']:.3f} guesses/step")
    print(f"  guess accuracy      : {stats['guess_accuracy']:.3f}")
    print(f"  max autocorrelation : {stats['max_autocorrelation']:.3f}")
    if cyclone is not None:
        detection = (sum(cyclone.detection_rate(t) for t in stats["traces"])
                     / max(len(stats["traces"]), 1))
        print(f"  SVM detection rate  : {detection:.3f}")


if __name__ == "__main__":
    main()
