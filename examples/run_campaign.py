#!/usr/bin/env python3
"""Run a whole experiment campaign with persistent, resumable artifacts.

Every table and figure of the paper is a registered *experiment*: a frozen
:class:`repro.ExperimentSpec` naming a grid of cells (one per table row), the
driver that computes a row, and the metric schema.  ``repro.run()`` expands
the spec, executes independent cells across a worker pool, and writes a run
artifact under ``runs/<experiment>-<scale>/`` — re-running the same command
skips finished cells and resumes interrupted training from checkpoints.

Run with:  python examples/run_campaign.py [--experiment table5] [--scale smoke]
           python -m repro run table5 --scale smoke --workers 4   # same thing
"""

from __future__ import annotations

import argparse

import repro


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiment", default="table5",
                        help=f"one of: {', '.join(repro.list_experiments())}")
    parser.add_argument("--scale", default="smoke", choices=("smoke", "bench", "paper"))
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--root", default="runs")
    arguments = parser.parse_args()

    spec = repro.get_experiment(arguments.experiment)
    cells = spec.cells(arguments.scale)
    print(f"Experiment : {spec.experiment_id} — {spec.description}")
    print(f"Cells      : {len(cells)} ({arguments.workers} workers)")
    print(f"Spec (JSON): {spec.to_json()[:88]}...")
    print()

    campaign = repro.run(spec, scale=arguments.scale, workers=arguments.workers,
                         root=arguments.root)

    print(campaign.format_results())
    reused = f" ({campaign.resumed} cells reused from a previous run)" if campaign.resumed else ""
    print(f"\n{campaign.completed}/{len(campaign.cells)} cells complete{reused}")
    print(f"Artifacts in {campaign.out_dir}/ (manifest.json, results.json, "
          f"cells/*/result.json + history JSONL + extracted sequences)")
    print("\nInterrupt this script mid-training and re-run it: finished cells are "
          "skipped and in-flight PPO runs resume from their checkpoints, "
          "bit-identically.")


if __name__ == "__main__":
    main()
