#!/usr/bin/env python3
"""Quickstart: let the RL agent discover a cache-timing attack from scratch.

Builds the smallest interesting guessing game through the scenario registry —
``repro.make("guessing/quickstart")`` is a 2-set direct-mapped cache where the
victim accesses address 0 or 1 and the attacker owns addresses 2 and 3 —
trains a PPO agent for a couple of minutes on one CPU, and prints the attack
sequence it found (typically a minimal prime+probe such as
``2 -> v -> 2 -> g``).

Run with:  python examples/quickstart.py [--updates 120]
"""

from __future__ import annotations

import argparse

import repro
from repro.analysis.classifier import classify_sequence
from repro.attacks.sequences import AttackSequence
from repro.rl import PPOConfig, PPOTrainer

SCENARIO = "guessing/quickstart"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--updates", type=int, default=120,
                        help="maximum number of PPO updates (default: 120)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--scenario", default=SCENARIO,
                        help=f"scenario id (default: {SCENARIO}); "
                             "see repro.list_scenarios()")
    arguments = parser.parse_args()

    print(f"Scenario: {arguments.scenario}")
    print(f"  {repro.get_spec(arguments.scenario).description}")

    ppo = PPOConfig(horizon=256, num_envs=8, minibatch_size=256, update_epochs=4,
                    learning_rate=5e-4, entropy_coefficient=0.03)
    # The trainer accepts a scenario id directly and builds one env per actor.
    trainer = PPOTrainer(arguments.scenario, ppo, hidden_sizes=(64, 64),
                         seed=arguments.seed)

    print("Training the attacker agent (this takes a minute or two on one CPU)...")
    result = trainer.train(max_updates=arguments.updates, eval_every=10,
                           eval_episodes=40, target_accuracy=0.95)

    print(f"\nconverged          : {result.converged}")
    print(f"environment steps  : {result.env_steps}")
    print(f"guess accuracy     : {result.final_accuracy:.3f}")
    print(f"episode length     : {result.final_episode_length:.1f}")

    if result.extraction is None:
        print("\nNo attack extracted — try increasing --updates.")
        return
    print("\nExtracted attack sequences (one per victim secret):")
    for secret, labels in sorted(result.extraction.sequences.items(),
                                 key=lambda item: str(item[0])):
        print(f"  secret {secret!s:>4}: {' -> '.join(labels)}")
    category = classify_sequence(
        AttackSequence.from_labels(result.extraction.representative),
        repro.make(arguments.scenario, seed=0).config)
    print(f"\nAttack category: {category.value}")
    print("\nNext: run whole paper tables as resumable campaigns, e.g.\n"
          "  python -m repro run table5 --scale smoke --workers 4\n"
          "  python examples/run_campaign.py --experiment table1")


if __name__ == "__main__":
    main()
