#!/usr/bin/env python3
"""Discover attacks against a chosen replacement policy (the Table V study).

The victim either accesses address 0 or makes no access; the attacker owns
addresses 0-4 of a 4-way fully-associative set.  The agent must learn an
eviction- or replacement-state-based attack whose shape depends on the policy:
LRU and PLRU admit short attacks, RRIP needs extra accesses to control the
re-reference prediction values, and the random policy only admits probabilistic
attacks.

Run with:  python examples/discover_attack.py --policy rrip [--updates 400]
"""

from __future__ import annotations

import argparse

import repro
from repro.analysis.classifier import classify_sequence
from repro.attacks.sequences import AttackSequence
from repro.experiments.common import BENCH
from repro.rl import PPOTrainer
from repro.rl.trainer import STEPS_PER_EPOCH


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--policy", choices=("lru", "plru", "rrip", "random"), default="lru")
    parser.add_argument("--ways", type=int, default=4)
    parser.add_argument("--updates", type=int, default=BENCH.max_updates)
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()

    # Resolve the scenario for the chosen policy; override the associativity
    # (and the address range / window that depend on it) when not 4-way.
    overrides = {"window_size": 3 * arguments.ways, "max_steps": 3 * arguments.ways}
    if arguments.ways != 4:
        overrides.update({"cache.num_ways": arguments.ways,
                          "attacker_addr_e": arguments.ways})
    factory = repro.make_factory(f"guessing/{arguments.policy}-4way", **overrides)
    trainer = PPOTrainer(factory, BENCH.ppo_config(), hidden_sizes=BENCH.hidden_sizes,
                         seed=arguments.seed)
    print(f"Training against the {arguments.policy.upper()} policy "
          f"({arguments.ways}-way set, victim accesses 0 or nothing)...")
    result = trainer.train(max_updates=arguments.updates, eval_every=10,
                           eval_episodes=50, target_accuracy=0.95)

    epochs = result.epochs_to_converge if result.converged else result.epochs_trained
    print(f"\nconverged            : {result.converged}")
    print(f"epochs (3000 steps)  : {epochs:.1f}")
    print(f"guess accuracy       : {result.final_accuracy:.3f}")
    print(f"mean episode length  : {result.final_episode_length:.1f}")
    print(f"environment steps    : {result.env_steps} "
          f"({result.env_steps / STEPS_PER_EPOCH:.1f} epochs trained)")

    extraction = result.extraction or trainer.extract()
    print("\nAttack sequence found by the agent:")
    print(f"  {extraction.render()}")
    category = classify_sequence(AttackSequence.from_labels(extraction.representative),
                                 factory(0).config)
    print(f"Attack category: {category.value}")


if __name__ == "__main__":
    main()
