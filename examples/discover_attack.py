#!/usr/bin/env python3
"""Discover attacks against a chosen replacement policy (the Table V study).

The victim either accesses address 0 or makes no access; the attacker owns
addresses 0-4 of a 4-way fully-associative set.  The agent must learn an
eviction- or replacement-state-based attack whose shape depends on the policy:
LRU and PLRU admit short attacks, RRIP needs extra accesses to control the
re-reference prediction values, and the random policy only admits probabilistic
attacks.

This example drives the study through the campaign API: it registers a
one-off :class:`repro.ExperimentSpec` whose single cell is the chosen
(policy, ways) configuration, then ``repro.run()``s it — so the training is
checkpointed, resumable (re-run after Ctrl-C to continue), and leaves its
history/extraction artifacts under ``runs/``.

Run with:  python examples/discover_attack.py --policy rrip [--scale bench]
"""

from __future__ import annotations

import argparse

import repro


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--policy", choices=("lru", "plru", "rrip", "random"), default="lru")
    parser.add_argument("--ways", type=int, default=4)
    parser.add_argument("--scale", default="bench", choices=("smoke", "bench", "paper"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--root", default="runs")
    arguments = parser.parse_args()

    experiment_id = f"discover-{arguments.policy}-{arguments.ways}way"
    if not repro.runs.is_experiment_registered(experiment_id):
        repro.register_experiment(
            experiment_id=experiment_id,
            description=f"Discover an attack against {arguments.policy.upper()} "
                        f"({arguments.ways}-way set, victim accesses 0 or nothing)",
            driver="repro.experiments.table5",
            columns=("replacement_policy", "epochs_to_converge", "episode_length",
                     "accuracy", "converged_runs", "runs"),
            grid=({"policy": arguments.policy, "num_ways": arguments.ways},),
            base_seed=arguments.seed,
        )

    print(f"Training against the {arguments.policy.upper()} policy "
          f"({arguments.ways}-way set)...  (re-run to resume if interrupted)")
    campaign = repro.run(experiment_id, scale=arguments.scale, root=arguments.root)

    print()
    print(campaign.format_results())
    row = campaign.rows[0]
    print(f"\nepochs (3000 steps)  : {row['epochs_to_converge']:.1f}")
    print(f"guess accuracy       : {row['accuracy']:.3f}")
    if row["example_sequence"]:
        print(f"attack sequence      : {row['example_sequence']}")
    else:
        print("no attack extracted — try --scale paper (or a smaller --ways)")
    print(f"\nartifacts: {campaign.out_dir}/cells/")


if __name__ == "__main__":
    main()
