"""Cache-timing attack detection and defense schemes.

Implements the four protection schemes the paper evaluates against (Sec. V-D):

* partition-locked cache (in :mod:`repro.cache.plcache`);
* autocorrelation-based detection (CC-Hunter);
* ML-based detection over cyclic interference (Cyclone, linear SVM);
* microarchitecture-statistics (victim miss count) detection.
"""

from repro.detection.autocorrelation import (
    autocorrelation,
    autocorrelogram,
    AutocorrelationDetector,
)
from repro.detection.svm import LinearSVM, StandardScaler
from repro.detection.cyclone import CycloneDetector, cyclone_features
from repro.detection.misscount import MissCountDetector
from repro.detection.workloads import BenignWorkloadGenerator, WorkloadKind

__all__ = [
    "autocorrelation",
    "autocorrelogram",
    "AutocorrelationDetector",
    "LinearSVM",
    "StandardScaler",
    "CycloneDetector",
    "cyclone_features",
    "MissCountDetector",
    "BenignWorkloadGenerator",
    "WorkloadKind",
]
