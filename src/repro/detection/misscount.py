"""Microarchitecture-statistics (performance-counter) detection.

Detection schemes based on hardware performance counters monitor the victim's
cache hit rate and flag an attack when the victim suffers abnormally many
misses.  Following the paper's evaluation setup (Sec. V-D, "µarch
Statistics-based Detection"), an attack is considered detected as soon as the
victim's triggered access results in a cache miss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional


@dataclass
class MissCountDetector:
    """Flags an attack when the victim accumulates more than ``threshold`` misses."""

    threshold: int = 0
    victim_misses: int = 0

    def reset(self) -> None:
        self.victim_misses = 0

    def observe_victim_access(self, hit: Optional[bool]) -> bool:
        """Record one victim access; return True when detection fires.

        ``hit`` is None when the victim made no access (no observable event).
        """
        if hit is False:
            self.victim_misses += 1
        return self.detected

    @property
    def detected(self) -> bool:
        return self.victim_misses > self.threshold

    def scan_trace(self, victim_hits: Iterable[Optional[bool]]) -> bool:
        """Run the detector over a sequence of victim access outcomes."""
        self.reset()
        for hit in victim_hits:
            if self.observe_victim_access(hit):
                return True
        return self.detected
