"""Linear support-vector machine trained from scratch (for the Cyclone detector).

The paper uses an SVM classifier over cyclic-interference features.  Offline,
scikit-learn is unavailable, so this module implements a standard linear SVM
with hinge loss and L2 regularization, optimized by mini-batch subgradient
descent, plus a feature standardizer and k-fold cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class StandardScaler:
    """Standardize features to zero mean and unit variance."""

    mean_: Optional[np.ndarray] = None
    scale_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        features = np.asarray(features, dtype=np.float64)
        self.mean_ = features.mean(axis=0)
        scale = features.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler has not been fit")
        return (np.asarray(features, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)


@dataclass
class LinearSVM:
    """Binary linear SVM with hinge loss, labels in {0, 1}."""

    learning_rate: float = 0.05
    regularization: float = 1e-3
    epochs: int = 200
    batch_size: int = 16
    seed: int = 0
    weights: Optional[np.ndarray] = None
    bias: float = 0.0
    scaler: StandardScaler = field(default_factory=StandardScaler)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearSVM":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        if set(np.unique(labels)) - {0, 1}:
            raise ValueError("labels must be 0 (benign) or 1 (attack)")
        signed = np.where(labels > 0, 1.0, -1.0)
        scaled = self.scaler.fit_transform(features)
        rng = np.random.default_rng(self.seed)
        num_samples, num_features = scaled.shape
        self.weights = np.zeros(num_features)
        self.bias = 0.0
        for _ in range(self.epochs):
            order = rng.permutation(num_samples)
            for start in range(0, num_samples, self.batch_size):
                batch = order[start:start + self.batch_size]
                x_batch, y_batch = scaled[batch], signed[batch]
                margins = y_batch * (x_batch @ self.weights + self.bias)
                violating = margins < 1.0
                grad_w = self.regularization * self.weights
                grad_b = 0.0
                if np.any(violating):
                    grad_w = grad_w - (y_batch[violating, None] * x_batch[violating]).mean(axis=0)
                    grad_b = -float(y_batch[violating].mean())
                self.weights -= self.learning_rate * grad_w
                self.bias -= self.learning_rate * grad_b
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("SVM has not been fit")
        scaled = self.scaler.transform(np.atleast_2d(features))
        return scaled @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.decision_function(features) > 0.0).astype(np.int64)

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        predictions = self.predict(features)
        return float(np.mean(predictions == np.asarray(labels)))


def k_fold_cross_validate(features: np.ndarray, labels: np.ndarray, folds: int = 5,
                          seed: int = 0, **svm_kwargs) -> Tuple[float, List[float]]:
    """K-fold cross-validation accuracy of :class:`LinearSVM` on the data."""
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(labels))
    fold_indices = np.array_split(order, folds)
    scores: List[float] = []
    for fold in range(folds):
        test_index = fold_indices[fold]
        train_index = np.concatenate([fold_indices[i] for i in range(folds) if i != fold])
        model = LinearSVM(seed=seed, **svm_kwargs)
        model.fit(features[train_index], labels[train_index])
        scores.append(model.score(features[test_index], labels[test_index]))
    return float(np.mean(scores)), scores
