"""Synthetic benign workloads standing in for the SPEC2017 traces.

The Cyclone detector is trained on benign memory-access traces.  SPEC2017 is
not available offline, so this generator produces the canonical access
patterns benchmarks exhibit — sequential scans, strided loops, hot working
sets with reuse, and pointer-chasing — attributed to two non-colluding
domains.  What matters for Cyclone is that benign co-running programs produce
little *cyclic* interference (a -> b -> a on the same line), which these
patterns reproduce.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np


class WorkloadKind(enum.Enum):
    """Access-pattern families used to synthesize benign traces."""

    SEQUENTIAL = "sequential"
    STRIDED = "strided"
    WORKING_SET = "working_set"
    POINTER_CHASE = "pointer_chase"
    MIXED = "mixed"


@dataclass
class BenignWorkloadGenerator:
    """Generates (domain, address) traces for two benign co-running programs.

    The two programs are interleaved at *timeslice* granularity (tens of
    accesses per scheduling quantum), as real co-running processes are.  This
    is what keeps benign cyclic interference low: a victim->attacker->victim
    ping-pong on one line within a short interval essentially never happens
    without deliberate synchronization.
    """

    address_space: int = 64
    seed: int = 0
    victim_share: float = 0.5
    timeslice: int = 32

    def __post_init__(self) -> None:
        if self.address_space < 8:
            raise ValueError("address_space must be >= 8")
        if self.timeslice < 1:
            raise ValueError("timeslice must be >= 1")
        self.rng = np.random.default_rng(self.seed)

    # -------------------------------------------------------------- patterns
    def _sequential(self, length: int, base: int) -> List[int]:
        return [(base + i) % self.address_space for i in range(length)]

    def _strided(self, length: int, base: int, stride: int) -> List[int]:
        return [(base + i * stride) % self.address_space for i in range(length)]

    def _working_set(self, length: int, size: int) -> List[int]:
        working_set = self.rng.choice(self.address_space, size=size, replace=False)
        return [int(self.rng.choice(working_set)) for _ in range(length)]

    def _pointer_chase(self, length: int) -> List[int]:
        permutation = self.rng.permutation(self.address_space)
        current = int(self.rng.integers(self.address_space))
        trace = []
        for _ in range(length):
            trace.append(current)
            current = int(permutation[current])
        return trace

    def _single_program(self, kind: WorkloadKind, length: int) -> List[int]:
        if kind is WorkloadKind.SEQUENTIAL:
            return self._sequential(length, base=int(self.rng.integers(self.address_space)))
        if kind is WorkloadKind.STRIDED:
            stride = int(self.rng.integers(2, 8))
            return self._strided(length, base=int(self.rng.integers(self.address_space)), stride=stride)
        if kind is WorkloadKind.WORKING_SET:
            size = int(self.rng.integers(4, max(5, self.address_space // 4)))
            return self._working_set(length, size=size)
        if kind is WorkloadKind.POINTER_CHASE:
            return self._pointer_chase(length)
        # MIXED: concatenate shorter phases of each pattern.
        phases = [WorkloadKind.SEQUENTIAL, WorkloadKind.WORKING_SET,
                  WorkloadKind.STRIDED, WorkloadKind.POINTER_CHASE]
        per_phase = max(1, length // len(phases))
        trace: List[int] = []
        for phase in phases:
            trace.extend(self._single_program(phase, per_phase))
        return trace[:length]

    # ---------------------------------------------------------------- traces
    def generate(self, length: int, kind: WorkloadKind = WorkloadKind.MIXED,
                 other_kind: Optional[WorkloadKind] = None) -> List[Tuple[str, int]]:
        """Interleave two benign programs ("attacker" and "victim" domains).

        Despite the domain labels, both programs are benign — the labels exist
        so the detector sees the same domain tagging an attack trace would use.
        """
        other_kind = other_kind or kind
        program_a = self._single_program(kind, length)
        program_b = self._single_program(other_kind, length)
        trace: List[Tuple[str, int]] = []
        index_a = index_b = 0
        while len(trace) < length and (index_a < len(program_a) or index_b < len(program_b)):
            # One scheduling quantum for one of the two programs.
            run_victim = self.rng.random() < self.victim_share
            quantum = int(self.rng.integers(self.timeslice // 2, self.timeslice + 1))
            for _ in range(quantum):
                if len(trace) >= length:
                    break
                if run_victim and index_b < len(program_b):
                    trace.append(("victim", program_b[index_b]))
                    index_b += 1
                elif not run_victim and index_a < len(program_a):
                    trace.append(("attacker", program_a[index_a]))
                    index_a += 1
                else:
                    break
        return trace

    def dataset(self, num_traces: int, length: int) -> Iterator[List[Tuple[str, int]]]:
        """Yield ``num_traces`` benign traces of the given length."""
        kinds = list(WorkloadKind)
        for index in range(num_traces):
            kind = kinds[index % len(kinds)]
            other = kinds[(index + 1) % len(kinds)]
            yield self.generate(length, kind=kind, other_kind=other)
