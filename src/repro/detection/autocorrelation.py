"""CC-Hunter-style autocorrelation detection of cache covert channels.

CC-Hunter observes the train of inter-domain conflict misses (attacker evicts
victim = 1, victim evicts attacker = 0) and flags an attack when the
autocorrelation of that train at some lag 1 <= p <= P exceeds a threshold
(the paper uses 0.75).  The autocorrelation formula follows Sec. V-D:

    C_p = [ n * sum_{i=0}^{n-p} (X_i - mean)(X_{i+p} - mean) ]
          / [ (n - p) * sum_{i=0}^{n} (X_i - mean)^2 ]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


def autocorrelation(train: Sequence[float], lag: int) -> float:
    """Autocorrelation coefficient of ``train`` at ``lag`` (paper's C_p)."""
    series = np.asarray(train, dtype=np.float64)
    n = series.size
    if lag < 0:
        raise ValueError("lag must be non-negative")
    if n == 0:
        return 0.0
    if lag == 0:
        return 1.0
    if lag >= n:
        return 0.0
    mean = series.mean()
    centered = series - mean
    denominator = (n - lag) * float(np.sum(centered ** 2))
    if denominator == 0.0:
        # A constant train is perfectly periodic at every lag.
        return 1.0
    numerator = n * float(np.sum(centered[: n - lag] * centered[lag:]))
    return numerator / denominator


def autocorrelogram(train: Sequence[float], max_lag: int) -> List[float]:
    """Autocorrelation coefficients for lags 0..max_lag."""
    return [autocorrelation(train, lag) for lag in range(max_lag + 1)]


@dataclass
class AutocorrelationDetector:
    """Flags an attack when max_{1<=p<=P} C_p exceeds the threshold."""

    threshold: float = 0.75
    max_lag: int = 30
    min_events: int = 4

    def max_autocorrelation(self, train: Sequence[float]) -> float:
        """Maximum |C_p| over lags 1..P (0.0 when the train is too short)."""
        series = list(train)
        if len(series) < self.min_events:
            return 0.0
        coefficients = autocorrelogram(series, min(self.max_lag, len(series) - 1))[1:]
        if not coefficients:
            return 0.0
        return float(max(coefficients))

    def detect(self, train: Sequence[float]) -> bool:
        """True when the conflict-event train looks like a periodic covert channel."""
        return self.max_autocorrelation(train) > self.threshold

    def penalty(self, train: Sequence[float], scale: float = -1.0) -> float:
        """L2 penalty over the autocorrelogram, used to shape the RL reward.

        The paper augments the reward with ``a * sum_p C_p^2 / P`` where ``a``
        is negative, so agents learn to keep the conflict train aperiodic.
        """
        series = list(train)
        if len(series) < self.min_events:
            return 0.0
        coefficients = autocorrelogram(series, min(self.max_lag, len(series) - 1))[1:]
        if not coefficients:
            return 0.0
        values = np.asarray(coefficients, dtype=np.float64)
        return float(scale * np.mean(values ** 2))
