"""Cyclone-style ML detector over cyclic-interference features.

Cyclone (Harris et al., MICRO 2019) counts *cyclic interference* — domain A
touches a cache line, domain B touches/evicts it, then A returns — per cache
line per time interval, and feeds those counts to an SVM classifier.  Benign
co-running programs rarely produce cyclic sequences; contention-based covert
channels produce them constantly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.cache import Cache
from repro.cache.config import CacheConfig
from repro.detection.svm import LinearSVM, k_fold_cross_validate
from repro.detection.workloads import BenignWorkloadGenerator

Trace = Sequence[Tuple[str, int]]


def cyclone_features(cache_config: CacheConfig, trace: Trace,
                     interval: int = 40) -> np.ndarray:
    """Per-interval cyclic-interference feature vectors for a (domain, address) trace.

    Returns an array of shape (num_intervals, num_lines) where entry [i, l] is
    the number of cyclic interference events observed on line ``l`` during
    interval ``i``.
    """
    cache = Cache(cache_config)
    num_lines = cache_config.num_blocks
    line_index = {}
    for set_index in range(cache_config.num_sets):
        for way in range(cache_config.num_ways):
            line_index[(set_index, way)] = set_index * cache_config.num_ways + way

    features: List[np.ndarray] = []
    previous_counts = np.zeros(num_lines)
    steps_in_interval = 0
    for domain, address in trace:
        cache.access(address, domain=domain)
        steps_in_interval += 1
        if steps_in_interval >= interval:
            current = np.zeros(num_lines)
            for key, count in cache.events.cyclic_interference.items():
                if key in line_index:
                    current[line_index[key]] = count
            features.append(current - previous_counts)
            previous_counts = current
            steps_in_interval = 0
    if steps_in_interval > 0:
        current = np.zeros(num_lines)
        for key, count in cache.events.cyclic_interference.items():
            if key in line_index:
                current[line_index[key]] = count
        features.append(current - previous_counts)
    if not features:
        return np.zeros((0, num_lines))
    return np.stack(features, axis=0)


@dataclass
class CycloneDetector:
    """SVM over cyclic-interference counts; trained on benign + known-attack traces."""

    cache_config: CacheConfig
    interval: int = 40
    svm: LinearSVM = field(default_factory=LinearSVM)
    validation_accuracy: Optional[float] = None

    def _features_for(self, traces: Iterable[Trace]) -> np.ndarray:
        blocks = [cyclone_features(self.cache_config, trace, interval=self.interval)
                  for trace in traces]
        blocks = [block for block in blocks if len(block)]
        if not blocks:
            return np.zeros((0, self.cache_config.num_blocks))
        return np.concatenate(blocks, axis=0)

    def train(self, benign_traces: Iterable[Trace], attack_traces: Iterable[Trace],
              cross_validate: bool = True) -> float:
        """Fit the SVM; return the k-fold validation accuracy."""
        benign = self._features_for(benign_traces)
        attack = self._features_for(attack_traces)
        if len(benign) == 0 or len(attack) == 0:
            raise ValueError("need at least one benign and one attack trace")
        # Balance the classes: attack traces are typically far shorter than the
        # benign corpus, and an unbalanced hinge loss would collapse to the
        # trivial "always benign" classifier.
        if len(attack) < len(benign):
            repeats = int(np.ceil(len(benign) / len(attack)))
            attack = np.concatenate([attack] * repeats, axis=0)[: len(benign)]
        elif len(benign) < len(attack):
            repeats = int(np.ceil(len(attack) / len(benign)))
            benign = np.concatenate([benign] * repeats, axis=0)[: len(attack)]
        features = np.concatenate([benign, attack], axis=0)
        labels = np.concatenate([np.zeros(len(benign)), np.ones(len(attack))])
        if cross_validate and len(labels) >= 10:
            accuracy, _ = k_fold_cross_validate(features, labels, folds=5,
                                                seed=self.svm.seed,
                                                epochs=self.svm.epochs)
            self.validation_accuracy = accuracy
        self.svm.fit(features, labels)
        if self.validation_accuracy is None:
            self.validation_accuracy = self.svm.score(features, labels)
        return self.validation_accuracy

    def detection_rate(self, trace: Trace) -> float:
        """Fraction of intervals in ``trace`` classified as an attack."""
        features = cyclone_features(self.cache_config, trace, interval=self.interval)
        if len(features) == 0:
            return 0.0
        predictions = self.svm.predict(features)
        return float(np.mean(predictions))

    def detect(self, trace: Trace) -> bool:
        """True when any interval of the trace is classified as an attack."""
        return self.detection_rate(trace) > 0.0

    @classmethod
    def trained_on_synthetic_benign(cls, cache_config: CacheConfig,
                                    attack_traces: Iterable[Trace],
                                    num_benign: int = 40, trace_length: int = 200,
                                    interval: int = 40, seed: int = 0) -> "CycloneDetector":
        """Convenience constructor: benign = synthetic workloads, attack = given traces."""
        generator = BenignWorkloadGenerator(address_space=max(16, cache_config.num_blocks * 4),
                                            seed=seed)
        benign_traces = list(generator.dataset(num_benign, trace_length))
        detector = cls(cache_config=cache_config, interval=interval,
                       svm=LinearSVM(seed=seed))
        detector.train(benign_traces, list(attack_traces))
        return detector
