"""Synchronous PPO trainer for the cache guessing game."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.rl.buffer import RolloutBuffer
from repro.rl.policy import ActorCriticPolicy
from repro.rl.ppo import PPOConfig, PPOUpdater
from repro.rl.replay import AttackExtraction, evaluate_policy, extract_attack_sequence
from repro.rl.stats import RunningStats, TrainingHistory
from repro.rl.vec_env import VecEnv

# The paper reports training time in epochs of 3000 training steps (Table V).
STEPS_PER_EPOCH = 3000


@dataclass
class TrainingResult:
    """Outcome of one training run."""

    converged: bool
    env_steps: int
    updates: int
    epochs_to_converge: Optional[float]
    final_accuracy: float
    final_guess_rate: float
    final_episode_length: float
    final_episode_reward: float
    wall_time_seconds: float
    history: TrainingHistory = field(default_factory=TrainingHistory)
    extraction: Optional[AttackExtraction] = None

    @property
    def epochs_trained(self) -> float:
        return self.env_steps / STEPS_PER_EPOCH


class PPOTrainer:
    """Collect rollouts from a vector of guessing-game envs and run PPO updates.

    ``env_factory`` may be a ``factory(seed) -> env`` callable, a scenario id
    (``"guessing/lru-4way"``), or a :class:`~repro.scenarios.ScenarioSpec`.
    """

    def __init__(self, env_factory: Callable[[int], object],
                 ppo_config: Optional[PPOConfig] = None,
                 hidden_sizes=(128, 128), backbone: str = "mlp", seed: int = 0):
        from repro.scenarios import as_env_factory

        env_factory = as_env_factory(env_factory)
        self.config = ppo_config or PPOConfig()
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.vec_env = VecEnv(env_factory, self.config.num_envs)
        self.eval_env = env_factory(1_000_000 + seed)
        window_shape = (self.eval_env.encoder.window_size, self.eval_env.encoder.step_features)
        self.policy = ActorCriticPolicy(self.vec_env.observation_size,
                                        self.vec_env.num_actions,
                                        hidden_sizes=hidden_sizes, backbone=backbone,
                                        window_shape=window_shape,
                                        rng=np.random.default_rng(seed))
        self.updater = PPOUpdater(self.policy, self.config, rng=self.rng)
        self.env_steps = 0
        self.updates_done = 0
        self.history = TrainingHistory()
        self._episode_rewards = RunningStats(window=200)
        self._episode_lengths = RunningStats(window=200)
        self._episode_correct = RunningStats(window=200)

    # ---------------------------------------------------------------- rollout
    def _collect_rollout(self, observations: np.ndarray) -> tuple:
        config = self.config
        buffer = RolloutBuffer(config.horizon, config.num_envs, self.vec_env.observation_size)
        for _ in range(config.horizon):
            output = self.policy.act(observations, rng=self.rng)
            next_observations, rewards, dones, infos = self.vec_env.step(output.actions)
            buffer.add(observations, output.actions, rewards, dones, output.values,
                       output.log_probs)
            for info in infos:
                episode = info.get("episode")
                if episode:
                    self._episode_rewards.add(episode["reward"])
                    self._episode_lengths.add(episode["length"])
                    self._episode_correct.add(1.0 if episode["correct"] else 0.0)
            observations = next_observations
            self.env_steps += config.num_envs
        last_values = self.policy.value(observations)
        buffer.finalize(last_values, gamma=config.gamma, lam=config.gae_lambda)
        return buffer, observations

    # ------------------------------------------------------------------ train
    def train(self, max_updates: int = 100, target_accuracy: float = 0.95,
              eval_every: int = 5, eval_episodes: int = 30,
              max_env_steps: Optional[int] = None,
              extract_on_success: bool = True) -> TrainingResult:
        """Train until evaluation accuracy reaches the target or the budget runs out."""
        start = time.time()
        observations = self.vec_env.reset()
        converged = False
        epochs_to_converge: Optional[float] = None
        evaluation: Dict[str, float] = {"accuracy": 0.0, "guess_rate": 0.0,
                                        "mean_episode_length": 0.0,
                                        "mean_episode_reward": 0.0}
        for update in range(1, max_updates + 1):
            buffer, observations = self._collect_rollout(observations)
            self.updater.set_progress(update / max_updates)
            metrics = self.updater.update(buffer)
            self.updates_done += 1
            metrics.update({
                "update": update,
                "env_steps": self.env_steps,
                "rollout_reward": self._episode_rewards.mean,
                "rollout_length": self._episode_lengths.mean,
                "rollout_accuracy": self._episode_correct.mean,
            })
            self.history.record(metrics)
            if update % eval_every == 0 or update == max_updates:
                evaluation = evaluate_policy(self.eval_env, self.policy,
                                             episodes=eval_episodes, seed=self.seed + update)
                self.history.record({"update": update, **{f"eval_{k}": v
                                                          for k, v in evaluation.items()}})
                if (evaluation["accuracy"] >= target_accuracy
                        and evaluation["guess_rate"] >= target_accuracy):
                    converged = True
                    epochs_to_converge = self.env_steps / STEPS_PER_EPOCH
                    break
            if max_env_steps is not None and self.env_steps >= max_env_steps:
                break

        extraction = None
        if extract_on_success and converged:
            extraction = extract_attack_sequence(self.eval_env, self.policy,
                                                 seed=self.seed)
        return TrainingResult(
            converged=converged,
            env_steps=self.env_steps,
            updates=self.updates_done,
            epochs_to_converge=epochs_to_converge,
            final_accuracy=evaluation["accuracy"],
            final_guess_rate=evaluation["guess_rate"],
            final_episode_length=evaluation["mean_episode_length"],
            final_episode_reward=evaluation["mean_episode_reward"],
            wall_time_seconds=time.time() - start,
            history=self.history,
            extraction=extraction,
        )

    # --------------------------------------------------------------- analysis
    def evaluate(self, episodes: int = 100, deterministic: bool = True) -> Dict[str, float]:
        return evaluate_policy(self.eval_env, self.policy, episodes=episodes,
                               deterministic=deterministic, seed=self.seed + 7)

    def extract(self) -> AttackExtraction:
        return extract_attack_sequence(self.eval_env, self.policy, seed=self.seed)
