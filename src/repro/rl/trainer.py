"""Synchronous PPO trainer for the cache guessing game.

The trainer is *resumable*: all mutable training state (policy and optimizer
state, the shared RNG stream, the live vectorized envs, episode statistics,
and convergence bookkeeping) can be captured with :meth:`PPOTrainer.save_checkpoint`
and restored in a fresh process with :meth:`PPOTrainer.load_checkpoint`.  A
run resumed from a checkpoint is bit-identical to the same run left
uninterrupted — the campaign runner in :mod:`repro.runs` relies on this to
resume in-flight training after a crash or kill.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional

import numpy as np

from repro import telemetry
from repro.rl.buffer import RolloutBuffer
from repro.rl.policy import ActorCriticPolicy
from repro.rl.ppo import PPOConfig, PPOUpdater
from repro.rl.replay import AttackExtraction, evaluate_policy, extract_attack_sequence
from repro.rl.stats import RunningStats, TrainingHistory, dump_json
from repro.rl.vec_env import VecEnv

# The paper reports training time in epochs of 3000 training steps (Table V).
STEPS_PER_EPOCH = 3000

CHECKPOINT_FORMAT = "repro-ppo-checkpoint"
CHECKPOINT_VERSION = 1

# callback(trainer, update, metrics) invoked after every completed PPO update.
UpdateCallback = Callable[["PPOTrainer", int, Dict[str, float]], None]


def _trainer_metrics() -> Dict[str, object]:
    """Telemetry handles for one trainer, created once per trainer.

    Handles sample the telemetry enabled-state at creation time: with
    ``REPRO_TELEMETRY=0`` every entry is the shared null metric and the
    training loop's instrumentation is pure no-op attribute calls.  The
    handles are deliberately not checkpoint state — a restored trainer
    re-creates them for its own process.
    """
    return {
        "rollout_seconds": telemetry.counter("trainer.time.rollout_seconds"),
        "update_seconds": telemetry.counter("trainer.time.update_seconds"),
        "eval_seconds": telemetry.counter("trainer.time.eval_seconds"),
        "reset_seconds": telemetry.counter("trainer.time.reset_seconds"),
        "updates": telemetry.counter("trainer.updates.total"),
        "env_steps": telemetry.counter("trainer.env_steps.total"),
        "updates_per_second": telemetry.gauge("trainer.updates.per_second"),
        "env_steps_per_second": telemetry.gauge("trainer.env_steps.per_second"),
        "update_histogram": telemetry.histogram("trainer.update.seconds"),
    }


@dataclass
class TrainingResult:
    """Outcome of one training run."""

    converged: bool
    env_steps: int
    updates: int
    epochs_to_converge: Optional[float]
    final_accuracy: float
    final_guess_rate: float
    final_episode_length: float
    final_episode_reward: float
    wall_time_seconds: float
    history: TrainingHistory = field(default_factory=TrainingHistory)
    extraction: Optional[AttackExtraction] = None

    @property
    def epochs_trained(self) -> float:
        return self.env_steps / STEPS_PER_EPOCH

    # ---------------------------------------------------------- serialization
    def to_dict(self, include_history: bool = True) -> Dict[str, Any]:
        """JSON-safe dict that round-trips losslessly via :meth:`from_dict`.

        Run artifacts (``runs/<id>/``) and ``BENCH_*.json`` files both store
        results through this one path.
        """
        data: Dict[str, Any] = {
            "converged": bool(self.converged),
            "env_steps": int(self.env_steps),
            "updates": int(self.updates),
            "epochs_to_converge": (None if self.epochs_to_converge is None
                                   else float(self.epochs_to_converge)),
            "final_accuracy": float(self.final_accuracy),
            "final_guess_rate": float(self.final_guess_rate),
            "final_episode_length": float(self.final_episode_length),
            "final_episode_reward": float(self.final_episode_reward),
            "wall_time_seconds": float(self.wall_time_seconds),
            "extraction": None if self.extraction is None else self.extraction.to_dict(),
        }
        if include_history:
            data["history"] = self.history.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrainingResult":
        extraction = data.get("extraction")
        history = data.get("history")
        return cls(
            converged=bool(data["converged"]),
            env_steps=int(data["env_steps"]),
            updates=int(data["updates"]),
            epochs_to_converge=(None if data.get("epochs_to_converge") is None
                                else float(data["epochs_to_converge"])),
            final_accuracy=float(data["final_accuracy"]),
            final_guess_rate=float(data["final_guess_rate"]),
            final_episode_length=float(data["final_episode_length"]),
            final_episode_reward=float(data["final_episode_reward"]),
            wall_time_seconds=float(data["wall_time_seconds"]),
            history=(TrainingHistory.from_dict(history) if history else TrainingHistory()),
            extraction=(None if extraction is None
                        else AttackExtraction.from_dict(extraction)),
        )

    def to_json(self, include_history: bool = True, **json_kwargs) -> str:
        return dump_json(self.to_dict(include_history=include_history), **json_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "TrainingResult":
        import json

        return cls.from_dict(json.loads(text))


class PPOTrainer:
    """Collect rollouts from a vector of guessing-game envs and run PPO updates.

    ``env_factory`` may be a ``factory(seed) -> env`` callable, a scenario id
    (``"guessing/lru-4way"``), or a :class:`~repro.scenarios.ScenarioSpec`.
    """

    def __init__(self, env_factory: Callable[[int], object],
                 ppo_config: Optional[PPOConfig] = None,
                 hidden_sizes=(128, 128), backbone: str = "mlp", seed: int = 0):
        from repro.scenarios import as_env_factory

        env_factory = as_env_factory(env_factory)
        self.config = ppo_config or PPOConfig()
        self.seed = seed
        self.hidden_sizes = tuple(hidden_sizes)
        self.backbone = backbone
        self.rng = np.random.default_rng(seed)
        self.vec_env = VecEnv(env_factory, self.config.num_envs)
        self.eval_env = env_factory(1_000_000 + seed)
        window_shape = (self.eval_env.encoder.window_size, self.eval_env.encoder.step_features)
        self.policy = ActorCriticPolicy(self.vec_env.observation_size,
                                        self.vec_env.num_actions,
                                        hidden_sizes=hidden_sizes, backbone=backbone,
                                        window_shape=window_shape,
                                        rng=np.random.default_rng(seed),
                                        dtype=self.config.dtype)
        self.updater = PPOUpdater(self.policy, self.config, rng=self.rng)
        # One rollout buffer for the trainer's lifetime: storage arrays and
        # minibatch scratch are reused across every update.
        self._rollout_buffer = RolloutBuffer(self.config.horizon, self.config.num_envs,
                                             self.vec_env.observation_size)
        self.env_steps = 0
        self.updates_done = 0
        self.history = TrainingHistory()
        self._episode_rewards = RunningStats(window=200)
        self._episode_lengths = RunningStats(window=200)
        self._episode_correct = RunningStats(window=200)
        # Resumable-training state: the live observation batch, the last
        # evaluation, and convergence bookkeeping survive checkpoints.
        self._observations: Optional[np.ndarray] = None
        self._last_evaluation: Optional[Dict[str, float]] = None
        self._converged = False
        self._epochs_to_converge: Optional[float] = None
        self._update_callbacks: List[UpdateCallback] = []
        self._telemetry = _trainer_metrics()

    # ------------------------------------------------------------- callbacks
    def add_update_callback(self, callback: UpdateCallback) -> UpdateCallback:
        """Register ``callback(trainer, update, metrics)`` to run after every
        PPO update (checkpointing, live metric streaming, early stopping via
        exceptions).  Callbacks are not part of checkpoint state."""
        self._update_callbacks.append(callback)
        return callback

    def remove_update_callback(self, callback: UpdateCallback) -> None:
        self._update_callbacks.remove(callback)

    def _notify_update(self, update: int, metrics: Dict[str, float]) -> None:
        for callback in list(self._update_callbacks):
            callback(self, update, metrics)

    # ---------------------------------------------------------------- rollout
    def _collect_rollout(self, observations: np.ndarray) -> tuple:
        config = self.config
        buffer = self._rollout_buffer
        buffer.reset()
        for _ in range(config.horizon):
            output = self.policy.act(observations, rng=self.rng)
            next_observations, rewards, dones, infos = self.vec_env.step(output.actions)
            buffer.add(observations, output.actions, rewards, dones, output.values,
                       output.log_probs)
            for info in infos:
                episode = info.get("episode")
                if episode:
                    self._episode_rewards.add(episode["reward"])
                    self._episode_lengths.add(episode["length"])
                    self._episode_correct.add(1.0 if episode["correct"] else 0.0)
            observations = next_observations
            self.env_steps += config.num_envs
        last_values = self.policy.value(observations)
        buffer.finalize(last_values, gamma=config.gamma, lam=config.gae_lambda)
        return buffer, observations

    # ------------------------------------------------------------------ train
    def train(self, max_updates: int = 100, target_accuracy: float = 0.95,
              eval_every: int = 5, eval_episodes: int = 30,
              max_env_steps: Optional[int] = None,
              extract_on_success: bool = True) -> TrainingResult:
        """Train until evaluation accuracy reaches the target or the budget runs out.

        The loop continues from ``self.updates_done``, so calling ``train()``
        on a trainer restored via :meth:`load_checkpoint` picks up exactly
        where the checkpoint left off (same RNG streams, same env states —
        bit-identical to never having stopped).
        """
        start = time.perf_counter()
        tm = self._telemetry
        steps_at_start = self.env_steps
        updates_at_start = self.updates_done
        if self._observations is None:
            reset_started = time.perf_counter()
            self._observations = self.vec_env.reset()
            tm["reset_seconds"].inc(time.perf_counter() - reset_started)
        if self._last_evaluation is None:
            self._last_evaluation = {"accuracy": 0.0, "guess_rate": 0.0,
                                     "mean_episode_length": 0.0,
                                     "mean_episode_reward": 0.0}
        while not self._converged and self.updates_done < max_updates:
            update = self.updates_done + 1
            phase_started = time.perf_counter()
            buffer, self._observations = self._collect_rollout(self._observations)
            rollout_done = time.perf_counter()
            tm["rollout_seconds"].inc(rollout_done - phase_started)
            self.updater.set_progress(update / max_updates)
            metrics = self.updater.update(buffer)
            update_done = time.perf_counter()
            tm["update_seconds"].inc(update_done - rollout_done)
            tm["update_histogram"].record(update_done - phase_started)
            self.updates_done += 1
            tm["updates"].inc()
            tm["env_steps"].inc(self.config.horizon * self.config.num_envs)
            elapsed = update_done - start
            if elapsed > 0.0:
                tm["updates_per_second"].set(
                    (self.updates_done - updates_at_start) / elapsed)
                tm["env_steps_per_second"].set(
                    (self.env_steps - steps_at_start) / elapsed)
            metrics.update({
                "update": update,
                "env_steps": self.env_steps,
                "rollout_reward": self._episode_rewards.mean,
                "rollout_length": self._episode_lengths.mean,
                "rollout_accuracy": self._episode_correct.mean,
            })
            self.history.record(metrics)
            if update % eval_every == 0 or update == max_updates:
                eval_started = time.perf_counter()
                evaluation = evaluate_policy(self.eval_env, self.policy,
                                             episodes=eval_episodes, seed=self.seed + update)
                tm["eval_seconds"].inc(time.perf_counter() - eval_started)
                self.history.record({"update": update, **{f"eval_{k}": v
                                                          for k, v in evaluation.items()}})
                self._last_evaluation = evaluation
                if (evaluation["accuracy"] >= target_accuracy
                        and evaluation["guess_rate"] >= target_accuracy):
                    self._converged = True
                    self._epochs_to_converge = self.env_steps / STEPS_PER_EPOCH
            self._notify_update(update, metrics)
            if self._converged:
                break
            if max_env_steps is not None and self.env_steps >= max_env_steps:
                break

        extraction = None
        if extract_on_success and self._converged:
            extraction = extract_attack_sequence(self.eval_env, self.policy,
                                                 seed=self.seed)
        evaluation = self._last_evaluation
        return TrainingResult(
            converged=self._converged,
            env_steps=self.env_steps,
            updates=self.updates_done,
            epochs_to_converge=self._epochs_to_converge,
            final_accuracy=evaluation["accuracy"],
            final_guess_rate=evaluation["guess_rate"],
            final_episode_length=evaluation["mean_episode_length"],
            final_episode_reward=evaluation["mean_episode_reward"],
            wall_time_seconds=time.perf_counter() - start,
            history=self.history,
            extraction=extraction,
        )

    # ------------------------------------------------------------ checkpoints
    def save_checkpoint(self, path) -> None:
        """Atomically write everything needed to resume training bit-identically.

        The payload combines structured component state (policy parameters,
        optimizer moments, RNG stream, counters, history) with the pickled
        live environments — the cache state, episode progress, and per-env RNG
        streams are what make a resumed run indistinguishable from an
        uninterrupted one.
        """
        payload = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "seed": self.seed,
            "config": dataclasses.asdict(self.config),
            "hidden_sizes": self.hidden_sizes,
            "backbone": self.backbone,
            "env_steps": self.env_steps,
            "updates_done": self.updates_done,
            "rng_state": self.rng.bit_generator.state,
            "policy_state": self.policy.state_dict(),
            "updater_state": self.updater.state_dict(),
            "history": self.history.to_dict(),
            "episode_stats": (self._episode_rewards, self._episode_lengths,
                              self._episode_correct),
            "converged": self._converged,
            "epochs_to_converge": self._epochs_to_converge,
            "last_evaluation": self._last_evaluation,
            # One pickle payload so aliasing between the observation batch and
            # the vec env's double buffers survives the round trip.
            "world": {"vec_env": self.vec_env, "eval_env": self.eval_env,
                      "observations": self._observations},
        }
        # Imported lazily: repro.runs.context imports this module, so a
        # module-level import of the (leaf) artifacts helper would cycle.
        from repro.runs.artifacts import atomic_write_pickle

        atomic_write_pickle(Path(path), payload)

    @classmethod
    def load_checkpoint(cls, path) -> "PPOTrainer":
        """Restore a trainer saved by :meth:`save_checkpoint` (any process).

        The checkpoint's SHA-256 sidecar is verified first; a corrupt or
        truncated file is quarantined to ``<name>.corrupt-N`` and
        :class:`~repro.runs.artifacts.CorruptArtifactError` raised so the
        caller can restart from its last good state.
        """
        from repro.runs.artifacts import load_pickle

        payload = load_pickle(Path(path))
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise ValueError(f"{path} is not a PPOTrainer checkpoint")
        if payload.get("version") != CHECKPOINT_VERSION:
            raise ValueError(f"unsupported checkpoint version {payload.get('version')!r}")
        trainer = cls.__new__(cls)
        trainer.config = PPOConfig(**payload["config"])
        trainer.seed = payload["seed"]
        trainer.hidden_sizes = tuple(payload["hidden_sizes"])
        trainer.backbone = payload["backbone"]
        trainer.rng = np.random.default_rng(trainer.seed)
        trainer.rng.bit_generator.state = payload["rng_state"]
        world = payload["world"]
        trainer.vec_env = world["vec_env"]
        trainer.eval_env = world["eval_env"]
        trainer._observations = world["observations"]
        window_shape = (trainer.eval_env.encoder.window_size,
                        trainer.eval_env.encoder.step_features)
        trainer.policy = ActorCriticPolicy(trainer.vec_env.observation_size,
                                           trainer.vec_env.num_actions,
                                           hidden_sizes=trainer.hidden_sizes,
                                           backbone=trainer.backbone,
                                           window_shape=window_shape,
                                           rng=np.random.default_rng(trainer.seed),
                                           dtype=trainer.config.dtype)
        trainer.policy.load_state_dict(payload["policy_state"])
        trainer.updater = PPOUpdater(trainer.policy, trainer.config, rng=trainer.rng)
        trainer._rollout_buffer = RolloutBuffer(trainer.config.horizon,
                                                trainer.config.num_envs,
                                                trainer.vec_env.observation_size)
        trainer.updater.load_state_dict(payload["updater_state"])
        trainer.env_steps = int(payload["env_steps"])
        trainer.updates_done = int(payload["updates_done"])
        trainer.history = TrainingHistory.from_dict(payload["history"])
        rewards, lengths, correct = payload["episode_stats"]
        trainer._episode_rewards = rewards
        trainer._episode_lengths = lengths
        trainer._episode_correct = correct
        trainer._converged = bool(payload["converged"])
        trainer._epochs_to_converge = payload["epochs_to_converge"]
        trainer._last_evaluation = payload["last_evaluation"]
        trainer._update_callbacks = []
        trainer._telemetry = _trainer_metrics()
        return trainer

    # --------------------------------------------------------------- analysis
    def evaluate(self, episodes: int = 100, deterministic: bool = True) -> Dict[str, float]:
        return evaluate_policy(self.eval_env, self.policy, episodes=episodes,
                               deterministic=deterministic, seed=self.seed + 7)

    def extract(self) -> AttackExtraction:
        return extract_attack_sequence(self.eval_env, self.policy, seed=self.seed)
