"""Generalized Advantage Estimation (Schulman et al., 2016)."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def compute_gae(rewards: np.ndarray, values: np.ndarray, dones: np.ndarray,
                last_values: np.ndarray, gamma: float = 0.99,
                lam: float = 0.95) -> Tuple[np.ndarray, np.ndarray]:
    """Compute GAE advantages and discounted returns.

    All inputs are shaped (steps, num_envs).  ``dones[t, e]`` marks that the
    episode in env ``e`` terminated *at* step ``t`` (so no bootstrapping across
    it).  ``last_values`` has shape (num_envs,) and bootstraps the final step.
    Returns (advantages, returns), both (steps, num_envs).
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    dones = np.asarray(dones, dtype=np.float64)
    last_values = np.asarray(last_values, dtype=np.float64)
    steps, num_envs = rewards.shape
    advantages = np.zeros((steps, num_envs), dtype=np.float64)
    next_advantage = np.zeros(num_envs, dtype=np.float64)
    next_values = last_values
    for step in reversed(range(steps)):
        non_terminal = 1.0 - dones[step]
        delta = rewards[step] + gamma * next_values * non_terminal - values[step]
        next_advantage = delta + gamma * lam * non_terminal * next_advantage
        advantages[step] = next_advantage
        next_values = values[step]
    returns = advantages + values
    return advantages, returns
