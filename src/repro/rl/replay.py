"""Deterministic replay: extracting attack sequences from a trained policy.

Once training converges, the paper extracts the attack sequence by replaying
the policy deterministically (Sec. IV-C).  For each possible secret we pin the
environment's secret, roll the greedy policy, and record the action labels;
the result is the per-secret attack sequence plus the aggregate guess
accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.rl.policy import ActorCriticPolicy


@dataclass
class AttackExtraction:
    """Attack sequences extracted by deterministic replay."""

    sequences: Dict[Optional[int], List[str]] = field(default_factory=dict)
    correct: Dict[Optional[int], bool] = field(default_factory=dict)
    accuracy: float = 0.0

    @property
    def representative(self) -> List[str]:
        """The longest per-secret sequence (the paper reports one example sequence)."""
        if not self.sequences:
            return []
        return max(self.sequences.values(), key=len)

    def render(self, secret: Optional[int] = None) -> str:
        sequence = self.sequences.get(secret, self.representative)
        return " -> ".join(sequence)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; secrets (int or None) are kept as [secret, value] pairs."""
        return {
            "sequences": [[secret, list(labels)] for secret, labels in self.sequences.items()],
            "correct": [[secret, bool(value)] for secret, value in self.correct.items()],
            "accuracy": float(self.accuracy),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AttackExtraction":
        return cls(
            sequences={secret: list(labels) for secret, labels in data.get("sequences", [])},
            correct={secret: bool(value) for secret, value in data.get("correct", [])},
            accuracy=float(data.get("accuracy", 0.0)),
        )


class _EpisodeRunner:
    """Replays a policy on one env through the compiled batch-act path.

    Instead of handing ``policy.act`` a fresh 1-D observation every step
    (which forces a per-step ``atleast_2d`` copy and a shape-(1, n) workspace
    rebuild), the runner keeps one persistent ``(1, observation_size)``
    batch row.  Envs that support the allocation-free ``reset_into`` /
    ``step_into`` protocol encode their observation directly into that row;
    others fall back to copying the returned observation in.
    """

    def __init__(self, env, policy: ActorCriticPolicy):
        self.env = env
        self.policy = policy
        size = getattr(env, "observation_size", None)
        self._into = bool(getattr(env, "supports_step_into", False)) and size is not None
        self.observations = np.zeros((1, int(size) if size is not None else 1))
        self._row = self.observations[0]

    def reset(self, secret) -> None:
        if self._into:
            self.env.reset_into(self._row, secret=secret)
        else:
            observation = np.asarray(self.env.reset(secret=secret))
            if self.observations.shape[1] != observation.shape[-1]:
                self.observations = np.zeros((1, observation.shape[-1]))
                self._row = self.observations[0]
            self._row[:] = observation

    def step(self, action_index: int) -> tuple:
        if self._into:
            return self.env.step_into(action_index, self._row)
        observation, reward, done, info = self.env.step(action_index)
        self._row[:] = observation
        return reward, done, info

    def act(self, rng: np.random.Generator, deterministic: bool) -> int:
        output = self.policy.act(self.observations, rng=rng,
                                 deterministic=deterministic)
        return int(output.actions[0])


def _run_episode(runner: _EpisodeRunner, secret, max_steps: int,
                 deterministic: bool, rng: np.random.Generator) -> tuple:
    runner.reset(secret)
    env = runner.env
    labels: List[str] = []
    correct = False
    guessed = False
    total_reward = 0.0
    for _ in range(max_steps):
        action_index = runner.act(rng, deterministic)
        labels.append(str(env.actions.decode(action_index)))
        reward, done, info = runner.step(action_index)
        total_reward += reward
        if done:
            correct = bool(info.get("correct", False))
            guessed = "correct" in info
            break
    return labels, correct, guessed, total_reward


def evaluate_policy(env, policy: ActorCriticPolicy, episodes: int = 50,
                    deterministic: bool = True, seed: int = 0) -> Dict[str, float]:
    """Accuracy, guess rate, episode length, and reward of a policy on an env."""
    rng = np.random.default_rng(seed)
    max_steps = env.max_steps + 1
    runner = _EpisodeRunner(env, policy)
    correct_count = 0
    guess_count = 0
    lengths: List[int] = []
    rewards: List[float] = []
    for _ in range(episodes):
        labels, correct, guessed, total_reward = _run_episode(
            runner, "random", max_steps, deterministic, rng)
        correct_count += int(correct)
        guess_count += int(guessed)
        lengths.append(len(labels))
        rewards.append(total_reward)
    return {
        "accuracy": correct_count / episodes,
        "guess_rate": guess_count / episodes,
        "mean_episode_length": float(np.mean(lengths)),
        "mean_episode_reward": float(np.mean(rewards)),
    }


def extract_attack_sequence(env, policy: ActorCriticPolicy, deterministic: bool = True,
                            seed: int = 0) -> AttackExtraction:
    """Replay the greedy policy once per possible secret and record the sequences."""
    rng = np.random.default_rng(seed)
    secrets: List[Optional[int]] = list(env.config.victim_addresses)
    if env.config.victim_no_access_enable:
        secrets.append(None)
    extraction = AttackExtraction()
    max_steps = env.max_steps + 1
    runner = _EpisodeRunner(env, policy)
    for secret in secrets:
        labels, correct, _guessed, _reward = _run_episode(
            runner, secret, max_steps, deterministic, rng)
        extraction.sequences[secret] = labels
        extraction.correct[secret] = correct
    if extraction.correct:
        extraction.accuracy = sum(extraction.correct.values()) / len(extraction.correct)
    return extraction
