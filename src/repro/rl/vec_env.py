"""A synchronous vector of environments with an array-native step path.

Batching several environment copies lets the numpy policy amortize its forward
pass, standing in for the asynchronous actor pool the paper uses (RLMeta /
Sample Factory style).  Environments auto-reset when their episode ends, and
episode summaries are surfaced so the trainer can track accuracy and length.

Environments can be given as a factory callable ``factory(index) -> env``, a
scenario id (``"guessing/lru-4way"``), or a :class:`~repro.scenarios.ScenarioSpec`;
ids and specs are resolved through the scenario registry, so the vectorized
path and ``repro.make()`` construct identical environments.

The hot path is allocation-free: observation/reward/done buffers are
preallocated once, and envs that advertise ``supports_step_into`` write their
observations directly into rows of the batch buffer (wrappers fall back to the
generic ``step()`` path so their reward shaping is preserved).  Returned
arrays are double-buffered — each is reused two calls later, which is exactly
the lifetime the PPO rollout loop needs; callers keeping references longer
must copy.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

import numpy as np


class VecEnv:
    """Synchronous vectorized environment with auto-reset and reusable buffers."""

    def __init__(self, env_source: Union[Callable[[int], object], str, object],
                 num_envs: int, **scenario_overrides):
        if num_envs < 1:
            raise ValueError("num_envs must be >= 1")
        from repro.scenarios import as_env_factory

        env_factory = as_env_factory(env_source, **scenario_overrides)
        self.envs = [env_factory(index) for index in range(num_envs)]
        self.num_envs = num_envs
        first = self.envs[0]
        self.observation_size = first.observation_size
        self.num_actions = first.action_space.n
        self._fast_path = [bool(getattr(env, "supports_step_into", False))
                           for env in self.envs]
        # Double-buffered outputs: the batch returned by one call stays valid
        # while the next call fills the other buffer (the PPO loop holds the
        # previous observation batch across exactly one step).
        self._observation_buffers = (
            np.zeros((num_envs, self.observation_size)),
            np.zeros((num_envs, self.observation_size)),
        )
        self._reward_buffers = (np.zeros(num_envs), np.zeros(num_envs))
        self._done_buffers = (np.zeros(num_envs), np.zeros(num_envs))
        self._flip = 0
        self._episode_rewards = np.zeros(num_envs)
        self._episode_lengths = np.zeros(num_envs, dtype=np.int64)

    def _next_buffers(self) -> tuple:
        buffers = (self._observation_buffers[self._flip],
                   self._reward_buffers[self._flip],
                   self._done_buffers[self._flip])
        self._flip ^= 1
        return buffers

    def reset(self) -> np.ndarray:
        self._episode_rewards[:] = 0.0
        self._episode_lengths[:] = 0
        observations, _rewards, _dones = self._next_buffers()
        for index, env in enumerate(self.envs):
            if self._fast_path[index]:
                env.reset_into(observations[index])
            else:
                observations[index] = env.reset()
        return observations

    def step(self, actions: np.ndarray) -> tuple:
        """Step every env; auto-reset finished ones.

        Returns (observations, rewards, dones, infos) where ``infos`` is a
        list of per-env dicts; finished episodes include an ``"episode"``
        entry with total reward, length, and guess correctness.
        """
        observations, rewards, dones = self._next_buffers()
        infos: List[Dict] = []
        for index, (env, action) in enumerate(zip(self.envs, actions)):
            fast = self._fast_path[index]
            if fast:
                reward, done, info = env.step_into(int(action), observations[index])
            else:
                observation, reward, done, info = env.step(int(action))
                observations[index] = observation
            self._episode_rewards[index] += reward
            self._episode_lengths[index] += 1
            if done:
                info = dict(info)
                info["episode"] = {
                    "reward": float(self._episode_rewards[index]),
                    "length": int(self._episode_lengths[index]),
                    "correct": bool(info.get("correct", False)),
                    "guessed": "correct" in info,
                }
                self._episode_rewards[index] = 0.0
                self._episode_lengths[index] = 0
                if fast:
                    env.reset_into(observations[index])
                else:
                    observations[index] = env.reset()
            rewards[index] = reward
            dones[index] = float(done)
            infos.append(info)
        return observations, rewards, dones, infos

    @property
    def single_env(self):
        """The first underlying environment (used for replay/extraction)."""
        return self.envs[0]
