"""A simple synchronous vector of environments.

Batching several environment copies lets the numpy policy amortize its forward
pass, standing in for the asynchronous actor pool the paper uses (RLMeta /
Sample Factory style).  Environments auto-reset when their episode ends, and
episode summaries are surfaced so the trainer can track accuracy and length.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np


class VecEnv:
    """Synchronous vectorized environment with auto-reset."""

    def __init__(self, env_factory: Callable[[int], object], num_envs: int):
        if num_envs < 1:
            raise ValueError("num_envs must be >= 1")
        self.envs = [env_factory(index) for index in range(num_envs)]
        self.num_envs = num_envs
        first = self.envs[0]
        self.observation_size = first.observation_size
        self.num_actions = first.action_space.n
        self._episode_rewards = np.zeros(num_envs)
        self._episode_lengths = np.zeros(num_envs, dtype=np.int64)

    def reset(self) -> np.ndarray:
        self._episode_rewards[:] = 0.0
        self._episode_lengths[:] = 0
        return np.stack([env.reset() for env in self.envs], axis=0)

    def step(self, actions: np.ndarray) -> tuple:
        """Step every env; auto-reset finished ones.

        Returns (observations, rewards, dones, infos) where ``infos`` is a
        list of per-env dicts; finished episodes include an ``"episode"``
        entry with total reward, length, and guess correctness.
        """
        observations = np.zeros((self.num_envs, self.observation_size))
        rewards = np.zeros(self.num_envs)
        dones = np.zeros(self.num_envs)
        infos: List[Dict] = []
        for index, (env, action) in enumerate(zip(self.envs, actions)):
            observation, reward, done, info = env.step(int(action))
            self._episode_rewards[index] += reward
            self._episode_lengths[index] += 1
            if done:
                info = dict(info)
                info["episode"] = {
                    "reward": float(self._episode_rewards[index]),
                    "length": int(self._episode_lengths[index]),
                    "correct": bool(info.get("correct", False)),
                    "guessed": "correct" in info,
                }
                self._episode_rewards[index] = 0.0
                self._episode_lengths[index] = 0
                observation = env.reset()
            observations[index] = observation
            rewards[index] = reward
            dones[index] = float(done)
            infos.append(info)
        return observations, rewards, dones, infos

    @property
    def single_env(self):
        """The first underlying environment (used for replay/extraction)."""
        return self.envs[0]
