"""A synchronous vector of environments with an array-native step path.

Batching several environment copies lets the numpy policy amortize its forward
pass, standing in for the asynchronous actor pool the paper uses (RLMeta /
Sample Factory style).  Environments auto-reset when their episode ends, and
episode summaries are surfaced so the trainer can track accuracy and length.

Environments can be given as a factory callable ``factory(index) -> env``, a
scenario id (``"guessing/lru-4way"``), or a :class:`~repro.scenarios.ScenarioSpec`;
ids and specs are resolved through the scenario registry, so the vectorized
path and ``repro.make()`` construct identical environments.

Two hot paths exist, picked automatically:

* **Batched SoA fast path** — when the source is a scenario whose
  ``spec.supports_soa()`` capability hook says yes (plain guessing env, every
  wrapper and the defense SoA-capable, supported policy/mapping — the
  ``keyed-remap`` and ``way-partition`` defenses have batched kernels), the N
  per-env objects are collapsed into one
  :class:`~repro.env.batched_env.BatchedGuessingGame` that advances the whole
  batch per step in a handful of numpy kernels.  This is bit-identical to the
  per-env path (same seeds, same RNG streams) but roughly an order of
  magnitude faster.  Opt out per scenario with ``backend="object"``;
  defended scenarios whose defense has no kernel warn and fall back.
* **Per-env fallback** — wrapped/PL/hierarchy envs (and factory callables) are
  stepped one by one; envs that advertise ``supports_step_into`` write their
  observations directly into rows of the batch buffer.

Returned arrays are double-buffered — each is reused two calls later, which is
exactly the lifetime the PPO rollout loop needs; callers keeping references
longer must copy.  The ``infos`` list is likewise reused across steps and only
materializes a fresh dict (with the ``"episode"`` summary) for envs whose
episode just ended.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Union

import numpy as np

# Below this many envs the per-op overhead of the batched numpy kernels loses
# to the per-env object path (BENCH_throughput.json: 0.54x at num_envs=1), so
# the SoA collapse only engages at or above it.
BATCHING_THRESHOLD = 4

# Shared placeholder for steps with nothing to report; treat as read-only.
_EMPTY_INFO: Dict = {}


class VecEnv:
    """Synchronous vectorized environment with auto-reset and reusable buffers."""

    def __init__(self, env_source: Union[Callable[[int], object], str, object],
                 num_envs: int, batching_threshold: int = BATCHING_THRESHOLD,
                 **scenario_overrides):
        if num_envs < 1:
            raise ValueError("num_envs must be >= 1")
        from repro.scenarios import as_env_factory

        env_factory = as_env_factory(env_source, **scenario_overrides)
        self._env_factory = env_factory
        self.num_envs = num_envs
        self._batched = None
        self._envs = None
        spec = getattr(env_factory, "spec", None)
        if spec is not None:
            from repro.env.batched_env import (BatchedGuessingGame,
                                               spec_supports_batching)

            # Batching eligibility is the spec's supports_soa() capability
            # hook (env class + wrappers + defense + cache config), not a
            # hard-coded allowlist.  A defended scenario whose defense has no
            # SoA kernel warns so the throughput cliff is visible.
            batchable = spec_supports_batching(spec)
            if (not batchable and spec.defense is not None
                    and num_envs >= batching_threshold
                    and spec.with_overrides(defense=None).supports_soa()):
                # The defense is the only thing keeping this batch on the
                # object path (not an explicit backend="object", wrapper, ...).
                warnings.warn(
                    f"scenario {spec.scenario_id!r}: its defense has no SoA "
                    "batched kernel; stepping per-env on the bit-identical "
                    "object path (expect object-path throughput)",
                    RuntimeWarning, stacklevel=2)
            if batchable:
                config = spec.build_config()
                # Below the threshold the per-op numpy overhead of the
                # batched kernels loses to the object path, so the collapse
                # only engages where it wins.  An explicit backend="soa"
                # below the threshold falls back to the (bit-identical)
                # object path with a warning; pass batching_threshold=1 to
                # force batching anyway (benchmarks do).
                if num_envs >= batching_threshold:
                    # factory(index) builds spec.build(seed=index); the
                    # batched game reproduces exactly those N envs.
                    self._batched = BatchedGuessingGame(config, num_envs,
                                                        seeds=range(num_envs))
                elif config.backend == "soa":
                    warnings.warn(
                        f"backend='soa' with num_envs={num_envs} is below the "
                        f"batching threshold ({batching_threshold}); using the "
                        "bit-identical object backend instead (the scalar SoA "
                        "path is slower than the object model)",
                        RuntimeWarning, stacklevel=2)
                    from repro.scenarios.registry import SpecFactory

                    # Rebuild with only the backend swapped, keeping any
                    # runtime payload (e.g. a detector) the factory carries.
                    self._env_factory = env_factory = SpecFactory(
                        spec.with_overrides(backend="object"),
                        getattr(env_factory, "runtime", None))
        if self._batched is not None:
            self.observation_size = self._batched.observation_size
            self.num_actions = self._batched.num_actions
            self._fast_path = [True] * num_envs
        else:
            self._envs = [env_factory(index) for index in range(num_envs)]
            first = self._envs[0]
            self.observation_size = first.observation_size
            self.num_actions = first.action_space.n
            self._fast_path = [bool(getattr(env, "supports_step_into", False))
                               for env in self._envs]
        # Double-buffered outputs: the batch returned by one call stays valid
        # while the next call fills the other buffer (the PPO loop holds the
        # previous observation batch across exactly one step).
        self._observation_buffers = (
            np.zeros((num_envs, self.observation_size)),
            np.zeros((num_envs, self.observation_size)),
        )
        self._reward_buffers = (np.zeros(num_envs), np.zeros(num_envs))
        self._done_buffers = (np.zeros(num_envs), np.zeros(num_envs))
        self._flip = 0
        self._episode_rewards = np.zeros(num_envs)
        self._episode_lengths = np.zeros(num_envs, dtype=np.int64)
        self._infos: List[Dict] = [_EMPTY_INFO] * num_envs
        self._info_touched: List[int] = []

    @property
    def batched(self) -> bool:
        """Whether the collapsed SoA batched fast path is active."""
        return self._batched is not None

    @property
    def envs(self) -> list:
        """Per-env objects for introspection (action space, configs, replay).

        Under the batched fast path these are materialized on demand as
        *fresh* envs from the factory — they share the scenario but not the
        live batch state, which lives in the SoA arrays.  Step them only for
        replay/extraction (which resets first), not to observe the batch.
        """
        if self._envs is None:
            self._envs = [self._env_factory(index) for index in range(self.num_envs)]
        return self._envs

    def _next_buffers(self) -> tuple:
        buffers = (self._observation_buffers[self._flip],
                   self._reward_buffers[self._flip],
                   self._done_buffers[self._flip])
        self._flip ^= 1
        return buffers

    def reset(self) -> np.ndarray:
        self._episode_rewards[:] = 0.0
        self._episode_lengths[:] = 0
        observations, _rewards, _dones = self._next_buffers()
        if self._batched is not None:
            self._batched.reset_into(observations)
            return observations
        for index, env in enumerate(self.envs):
            if self._fast_path[index]:
                env.reset_into(observations[index])
            else:
                observations[index] = env.reset()
        return observations

    def step(self, actions: np.ndarray) -> tuple:
        """Step every env; auto-reset finished ones.

        Returns (observations, rewards, dones, infos) where ``infos`` is a
        reused list of per-env dicts; finished episodes get a fresh dict with
        an ``"episode"`` entry (total reward, length, guess correctness).

        Info contract: only the ``"episode"`` entry (and ``"correct"`` on
        guess endings) is guaranteed.  The per-env fallback additionally
        surfaces the env's own step info (``action``/``secret``/``hit``/
        ``trace``...), but the batched fast path shares one empty placeholder
        for non-finished envs — consumers needing per-step introspection
        should force ``backend="object"`` or use a single env.
        """
        observations, rewards, dones = self._next_buffers()
        infos = self._infos
        for index in self._info_touched:
            infos[index] = _EMPTY_INFO
        self._info_touched.clear()
        if self._batched is not None:
            return self._step_batched(actions, observations, rewards, dones)
        for index, (env, action) in enumerate(zip(self.envs, actions)):
            fast = self._fast_path[index]
            if fast:
                reward, done, info = env.step_into(int(action), observations[index])
            else:
                observation, reward, done, info = env.step(int(action))
                observations[index] = observation
            self._episode_rewards[index] += reward
            self._episode_lengths[index] += 1
            if done:
                info = dict(info)
                info["episode"] = {
                    "reward": float(self._episode_rewards[index]),
                    "length": int(self._episode_lengths[index]),
                    "correct": bool(info.get("correct", False)),
                    "guessed": "correct" in info,
                }
                self._episode_rewards[index] = 0.0
                self._episode_lengths[index] = 0
                if fast:
                    env.reset_into(observations[index])
                else:
                    observations[index] = env.reset()
            rewards[index] = reward
            dones[index] = float(done)
            infos[index] = info
            self._info_touched.append(index)
        return observations, rewards, dones, infos

    def _step_batched(self, actions: np.ndarray, observations: np.ndarray,
                      rewards: np.ndarray, dones: np.ndarray) -> tuple:
        correct, guessed = self._batched.step_into(actions, observations,
                                                   rewards, dones)
        self._episode_rewards += rewards
        self._episode_lengths += 1
        infos = self._infos
        done_indices = np.flatnonzero(dones)
        for i in done_indices:
            index = int(i)
            info: Dict = {"episode": {
                "reward": float(self._episode_rewards[index]),
                "length": int(self._episode_lengths[index]),
                "correct": bool(correct[index]),
                "guessed": bool(guessed[index]),
            }}
            if guessed[index]:
                info["correct"] = bool(correct[index])
            infos[index] = info
            self._info_touched.append(index)
        if done_indices.size:
            self._episode_rewards[done_indices] = 0.0
            self._episode_lengths[done_indices] = 0
        return observations, rewards, dones, infos

    @property
    def single_env(self):
        """The first underlying environment (used for replay/extraction)."""
        return self.envs[0]
