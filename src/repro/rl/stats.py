"""Training statistics helpers and the shared metrics serialization path.

Run artifacts (``runs/<id>/``), benchmark JSON files, and checkpoint metadata
all serialize training metrics through the helpers here, so there is exactly
one JSON dialect: numpy scalars become Python scalars, arrays become lists,
and tuples become lists.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional

import numpy as np


def json_ready(value: Any) -> Any:
    """Recursively convert ``value`` into plain JSON-serializable data.

    numpy scalars/arrays are converted to Python scalars/lists, tuples to
    lists, and mappings are rebuilt with their values converted.  This is the
    single normalization applied to every row/metric dict before it is written
    to a run artifact or a ``BENCH_*.json`` file.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, Mapping):
        return {key: json_ready(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_ready(item) for item in value]
    return value


def dump_json(value: Any, **kwargs) -> str:
    """``json.dumps`` over :func:`json_ready`-normalized data."""
    kwargs.setdefault("sort_keys", True)
    return json.dumps(json_ready(value), **kwargs)


class RunningStats:
    """Windowed running statistics over a stream of scalars."""

    def __init__(self, window: int = 100):
        self.window = window
        self._values: Deque[float] = deque(maxlen=window)

    def add(self, value: float) -> None:
        self._values.append(float(value))

    def extend(self, values) -> None:
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            return 0.0
        return float(np.mean(self._values))

    @property
    def std(self) -> float:
        if not self._values:
            return 0.0
        return float(np.std(self._values))

    @property
    def last(self) -> Optional[float]:
        return self._values[-1] if self._values else None


@dataclass
class TrainingHistory:
    """Per-update metric history collected during training."""

    updates: List[Dict[str, float]] = field(default_factory=list)

    def record(self, metrics: Dict[str, float]) -> None:
        self.updates.append(dict(metrics))

    def series(self, key: str) -> List[float]:
        return [update[key] for update in self.updates if key in update]

    def last(self, key: str, default: float = 0.0) -> float:
        values = self.series(key)
        return values[-1] if values else default

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data dict that losslessly round-trips via :meth:`from_dict`."""
        return {"updates": [json_ready(update) for update in self.updates]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrainingHistory":
        return cls(updates=[dict(update) for update in data.get("updates", [])])

    def to_json(self, **json_kwargs) -> str:
        return dump_json(self.to_dict(), **json_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "TrainingHistory":
        return cls.from_dict(json.loads(text))

    def to_jsonl(self) -> str:
        """One JSON object per line, one line per recorded update."""
        return "\n".join(dump_json(update) for update in self.updates)

    @classmethod
    def from_jsonl(cls, text: str) -> "TrainingHistory":
        return cls(updates=[json.loads(line) for line in text.splitlines() if line.strip()])
