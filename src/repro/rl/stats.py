"""Training statistics helpers."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

import numpy as np


class RunningStats:
    """Windowed running statistics over a stream of scalars."""

    def __init__(self, window: int = 100):
        self.window = window
        self._values: Deque[float] = deque(maxlen=window)

    def add(self, value: float) -> None:
        self._values.append(float(value))

    def extend(self, values) -> None:
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            return 0.0
        return float(np.mean(self._values))

    @property
    def std(self) -> float:
        if not self._values:
            return 0.0
        return float(np.std(self._values))

    @property
    def last(self) -> Optional[float]:
        return self._values[-1] if self._values else None


@dataclass
class TrainingHistory:
    """Per-update metric history collected during training."""

    updates: List[Dict[str, float]] = field(default_factory=list)

    def record(self, metrics: Dict[str, float]) -> None:
        self.updates.append(dict(metrics))

    def series(self, key: str) -> List[float]:
        return [update[key] for update in self.updates if key in update]

    def last(self, key: str, default: float = 0.0) -> float:
        values = self.series(key)
        return values[-1] if values else default
