"""Rollout storage for on-policy PPO training.

The buffer is designed to be *persistent*: the trainer allocates it once and
calls :meth:`RolloutBuffer.reset` before every rollout, so the storage arrays,
the advantage-normalization buffer, and the minibatch scratch arrays are all
reused across PPO updates instead of reallocated.  Minibatches are gathered
with ``np.take(..., out=scratch)`` into one persistent scratch copy per batch
size — identical values to fancy indexing, none of its per-minibatch
allocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

import numpy as np


from repro.determinism import fallback_rng
from repro.rl.gae import compute_gae


@dataclass
class RolloutBatch:
    """One minibatch of flattened transitions for a PPO update.

    The arrays are views into the buffer's reusable scratch storage — valid
    until the next minibatch is yielded; copy them to keep them longer.
    """

    observations: np.ndarray
    actions: np.ndarray
    old_log_probs: np.ndarray
    advantages: np.ndarray
    returns: np.ndarray
    old_values: np.ndarray


class RolloutBuffer:
    """Fixed-horizon rollout buffer over a vector of environments."""

    def __init__(self, horizon: int, num_envs: int, observation_size: int):
        self.horizon = horizon
        self.num_envs = num_envs
        self.observation_size = observation_size
        shape = (horizon, num_envs)
        self.observations = np.zeros(shape + (observation_size,), dtype=np.float64)
        self.actions = np.zeros(shape, dtype=np.int64)
        self.rewards = np.zeros(shape, dtype=np.float64)
        self.dones = np.zeros(shape, dtype=np.float64)
        self.values = np.zeros(shape, dtype=np.float64)
        self.log_probs = np.zeros(shape, dtype=np.float64)
        self.advantages: Optional[np.ndarray] = None
        self.returns: Optional[np.ndarray] = None
        self.position = 0
        self._norm_advantages = np.empty(horizon * num_envs, dtype=np.float64)
        # Minibatch scratch arrays, keyed by batch size (the final short
        # minibatch slices the full-size scratch).
        self._scratch: Dict[int, tuple] = {}

    def reset(self) -> None:
        """Rewind the buffer for a fresh rollout (storage is reused).

        Stale rows are not zeroed: ``finalize`` refuses to run until every
        row has been overwritten by ``add``, so they are never observable
        through the minibatch path.
        """
        self.advantages = None
        self.returns = None
        self.position = 0

    @property
    def full(self) -> bool:
        return self.position >= self.horizon

    def add(self, observations: np.ndarray, actions: np.ndarray, rewards: np.ndarray,
            dones: np.ndarray, values: np.ndarray, log_probs: np.ndarray) -> None:
        if self.full:
            raise RuntimeError("rollout buffer is full; call reset() first")
        index = self.position
        self.observations[index] = observations
        self.actions[index] = actions
        self.rewards[index] = rewards
        self.dones[index] = dones
        self.values[index] = values
        self.log_probs[index] = log_probs
        self.position += 1

    def finalize(self, last_values: np.ndarray, gamma: float, lam: float) -> None:
        """Compute GAE advantages and returns after the rollout is collected."""
        if not self.full:
            raise RuntimeError("cannot finalize a partially-filled buffer")
        self.advantages, self.returns = compute_gae(
            self.rewards, self.values, self.dones, last_values, gamma=gamma, lam=lam)

    def _minibatch_scratch(self, batch_size: int) -> tuple:
        scratch = self._scratch.get(batch_size)
        if scratch is None:
            scratch = (
                np.empty((batch_size, self.observation_size), dtype=np.float64),
                np.empty(batch_size, dtype=np.int64),
                np.empty(batch_size, dtype=np.float64),
                np.empty(batch_size, dtype=np.float64),
                np.empty(batch_size, dtype=np.float64),
                np.empty(batch_size, dtype=np.float64),
            )
            self._scratch[batch_size] = scratch
        return scratch

    def iter_minibatches(self, batch_size: int,
                         rng: Optional[np.random.Generator] = None,
                         normalize_advantages: bool = True) -> Iterator[RolloutBatch]:
        """Yield shuffled minibatches of flattened transitions.

        Each minibatch is gathered into a persistent scratch copy; the yielded
        views are overwritten when the next minibatch is produced.
        """
        if self.advantages is None or self.returns is None:
            raise RuntimeError("finalize() must be called before iterating minibatches")
        rng = rng if rng is not None else fallback_rng()
        total = self.horizon * self.num_envs
        observations = self.observations.reshape(total, self.observation_size)
        actions = self.actions.reshape(total)
        log_probs = self.log_probs.reshape(total)
        advantages = self.advantages.reshape(total)
        returns = self.returns.reshape(total)
        values = self.values.reshape(total)
        if normalize_advantages:
            normalized = self._norm_advantages
            np.subtract(advantages, advantages.mean(), out=normalized)
            normalized /= (advantages.std() + 1e-8)
            advantages = normalized
        order = rng.permutation(total)
        scratch = self._minibatch_scratch(min(batch_size, total))
        sources = (observations, actions, log_probs, advantages, returns, values)
        for start in range(0, total, batch_size):
            index = order[start:start + batch_size]
            count = index.shape[0]
            gathered = []
            for source, target in zip(sources, scratch):
                view = target[:count]
                np.take(source, index, axis=0, out=view)
                gathered.append(view)
            yield RolloutBatch(observations=gathered[0], actions=gathered[1],
                               old_log_probs=gathered[2], advantages=gathered[3],
                               returns=gathered[4], old_values=gathered[5])
