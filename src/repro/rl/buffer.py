"""Rollout storage for on-policy PPO training."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.rl.gae import compute_gae


@dataclass
class RolloutBatch:
    """One minibatch of flattened transitions for a PPO update."""

    observations: np.ndarray
    actions: np.ndarray
    old_log_probs: np.ndarray
    advantages: np.ndarray
    returns: np.ndarray
    old_values: np.ndarray


class RolloutBuffer:
    """Fixed-horizon rollout buffer over a vector of environments."""

    def __init__(self, horizon: int, num_envs: int, observation_size: int):
        self.horizon = horizon
        self.num_envs = num_envs
        self.observation_size = observation_size
        self.reset()

    def reset(self) -> None:
        shape = (self.horizon, self.num_envs)
        self.observations = np.zeros(shape + (self.observation_size,), dtype=np.float64)
        self.actions = np.zeros(shape, dtype=np.int64)
        self.rewards = np.zeros(shape, dtype=np.float64)
        self.dones = np.zeros(shape, dtype=np.float64)
        self.values = np.zeros(shape, dtype=np.float64)
        self.log_probs = np.zeros(shape, dtype=np.float64)
        self.advantages: Optional[np.ndarray] = None
        self.returns: Optional[np.ndarray] = None
        self.position = 0

    @property
    def full(self) -> bool:
        return self.position >= self.horizon

    def add(self, observations: np.ndarray, actions: np.ndarray, rewards: np.ndarray,
            dones: np.ndarray, values: np.ndarray, log_probs: np.ndarray) -> None:
        if self.full:
            raise RuntimeError("rollout buffer is full; call reset() first")
        index = self.position
        self.observations[index] = observations
        self.actions[index] = actions
        self.rewards[index] = rewards
        self.dones[index] = dones
        self.values[index] = values
        self.log_probs[index] = log_probs
        self.position += 1

    def finalize(self, last_values: np.ndarray, gamma: float, lam: float) -> None:
        """Compute GAE advantages and returns after the rollout is collected."""
        if not self.full:
            raise RuntimeError("cannot finalize a partially-filled buffer")
        self.advantages, self.returns = compute_gae(
            self.rewards, self.values, self.dones, last_values, gamma=gamma, lam=lam)

    def iter_minibatches(self, batch_size: int,
                         rng: Optional[np.random.Generator] = None,
                         normalize_advantages: bool = True) -> Iterator[RolloutBatch]:
        """Yield shuffled minibatches of flattened transitions."""
        if self.advantages is None or self.returns is None:
            raise RuntimeError("finalize() must be called before iterating minibatches")
        rng = rng or np.random.default_rng()
        total = self.horizon * self.num_envs
        observations = self.observations.reshape(total, self.observation_size)
        actions = self.actions.reshape(total)
        log_probs = self.log_probs.reshape(total)
        advantages = self.advantages.reshape(total)
        returns = self.returns.reshape(total)
        values = self.values.reshape(total)
        if normalize_advantages:
            advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
        order = rng.permutation(total)
        for start in range(0, total, batch_size):
            index = order[start:start + batch_size]
            yield RolloutBatch(observations=observations[index], actions=actions[index],
                               old_log_probs=log_probs[index], advantages=advantages[index],
                               returns=returns[index], old_values=values[index])
