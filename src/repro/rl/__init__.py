"""Reinforcement-learning engine: PPO, rollouts, replay, and search baselines.

The paper trains its agent with asynchronous PPO (RLMeta) on GPUs.  This
reproduction provides a synchronous PPO implementation with the same
algorithmic ingredients — clipped surrogate objective, GAE(λ) advantages,
entropy bonus, value-function clipping — on the numpy autodiff stack, plus
deterministic replay for extracting attack sequences and the search baselines
discussed in Sec. VI-A.
"""

from repro.rl.policy import ActorCriticPolicy, PolicyOutput
from repro.rl.gae import compute_gae
from repro.rl.buffer import RolloutBuffer, RolloutBatch
from repro.rl.ppo import PPOConfig, PPOUpdater
from repro.rl.vec_env import VecEnv
from repro.rl.trainer import PPOTrainer, TrainingResult
from repro.rl.replay import extract_attack_sequence, evaluate_policy, AttackExtraction
from repro.rl.baselines import RandomSearchBaseline, GreedyOneStepBaseline
from repro.rl.stats import RunningStats

__all__ = [
    "ActorCriticPolicy",
    "PolicyOutput",
    "compute_gae",
    "RolloutBuffer",
    "RolloutBatch",
    "PPOConfig",
    "PPOUpdater",
    "VecEnv",
    "PPOTrainer",
    "TrainingResult",
    "extract_attack_sequence",
    "evaluate_policy",
    "AttackExtraction",
    "RandomSearchBaseline",
    "GreedyOneStepBaseline",
    "RunningStats",
]
