"""Actor-critic policy networks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.autodiff import no_grad
from repro.autodiff.tensor import Tensor
from repro.nn import MLP, Categorical, Linear, Module, SelfAttentionEncoder, Sequential, Tanh


@dataclass
class PolicyOutput:
    """Result of acting on a batch of observations (numpy, no graph attached)."""

    actions: np.ndarray
    log_probs: np.ndarray
    values: np.ndarray


class ActorCriticPolicy(Module):
    """Shared-backbone actor-critic over flat window observations.

    ``backbone`` selects between the default MLP and the attention encoder
    standing in for the paper's Transformer (both operate on the same
    windowed observation; the attention variant reshapes it to
    (window, features)).
    """

    def __init__(self, observation_size: int, num_actions: int,
                 hidden_sizes: Sequence[int] = (128, 128), backbone: str = "mlp",
                 window_shape: Optional[tuple] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.observation_size = observation_size
        self.num_actions = num_actions
        self.backbone_kind = backbone
        self.hidden_sizes = tuple(hidden_sizes)
        self.window_shape = window_shape
        rng = rng or np.random.default_rng(0)
        if backbone == "mlp":
            feature_dim = hidden_sizes[-1]
            self.feature_extractor = Sequential(
                MLP(observation_size, hidden_sizes[:-1], feature_dim, rng=rng), Tanh())
        elif backbone == "attention":
            if window_shape is None:
                raise ValueError("attention backbone requires window_shape=(window, features)")
            feature_dim = hidden_sizes[-1]
            self.feature_extractor = SelfAttentionEncoder(window_shape[1], model_dim=feature_dim,
                                                          rng=rng)
        else:
            raise ValueError(f"unknown backbone {backbone!r}")
        self.policy_head = Linear(feature_dim, num_actions, gain=0.01, rng=rng)
        self.value_head = Linear(feature_dim, 1, gain=1.0, rng=rng)

    # ----------------------------------------------------------------- graph
    def _features(self, observations: Tensor) -> Tensor:
        if self.backbone_kind == "attention":
            batch = observations.shape[0]
            window, features = self.window_shape
            observations = observations.reshape(batch, window, features)
        return self.feature_extractor(observations)

    def forward(self, observations: Tensor) -> tuple:
        """Return (logits, values) with gradients attached."""
        features = self._features(observations)
        logits = self.policy_head(features)
        values = self.value_head(features).reshape(-1)
        return logits, values

    def distribution(self, observations: Tensor) -> tuple:
        logits, values = self.forward(observations)
        return Categorical(logits), values

    # ----------------------------------------------------------------- acting
    def act(self, observations: np.ndarray, rng: Optional[np.random.Generator] = None,
            deterministic: bool = False) -> PolicyOutput:
        """Sample (or argmax) actions for a batch of observations, without a graph."""
        observations = np.atleast_2d(np.asarray(observations, dtype=np.float64))
        with no_grad():
            distribution, values = self.distribution(Tensor(observations))
            if deterministic:
                actions = distribution.mode()
            else:
                actions = distribution.sample(rng=rng)
            log_probs = distribution.log_prob(actions).numpy()
        return PolicyOutput(actions=actions, log_probs=np.asarray(log_probs),
                            values=values.numpy().copy())

    def value(self, observations: np.ndarray) -> np.ndarray:
        observations = np.atleast_2d(np.asarray(observations, dtype=np.float64))
        with no_grad():
            _, values = self.forward(Tensor(observations))
        return values.numpy().copy()

    def action_probabilities(self, observation: np.ndarray) -> np.ndarray:
        """Probability of each action for a single observation (analysis helper)."""
        observation = np.atleast_2d(np.asarray(observation, dtype=np.float64))
        with no_grad():
            distribution, _ = self.distribution(Tensor(observation))
        return distribution.probs[0]
