"""Actor-critic policy networks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.autodiff import default_dtype, no_grad
from repro.autodiff.tensor import Tensor
from repro.nn import MLP, Categorical, Linear, Module, SelfAttentionEncoder, Sequential, Tanh
from repro.nn.compiled import (CompiledForward, UnsupportedArchitecture,
                               compiled_inference_enabled)


@dataclass
class PolicyOutput:
    """Result of acting on a batch of observations (numpy, no graph attached)."""

    actions: np.ndarray
    log_probs: np.ndarray
    values: np.ndarray


class ActorCriticPolicy(Module):
    """Shared-backbone actor-critic over flat window observations.

    ``backbone`` selects between the default MLP and the attention encoder
    standing in for the paper's Transformer (both operate on the same
    windowed observation; the attention variant reshapes it to
    (window, features)).

    ``dtype`` selects the parameter/compute precision.  The default
    ``"float64"`` keeps bit-parity with the reference implementation;
    ``"float32"`` halves memory traffic and roughly doubles BLAS throughput
    (useful for large sweeps, plumbed through ``PPOConfig.dtype``).

    Inference (:meth:`act`, :meth:`value`, :meth:`action_probabilities`)
    routes through a graph-free :class:`~repro.nn.compiled.CompiledForward`
    plan when one exists for the architecture — bit-identical to the graph
    path, several times faster.  Set ``REPRO_DISABLE_COMPILED=1`` to opt out.
    """

    def __init__(self, observation_size: int, num_actions: int,
                 hidden_sizes: Sequence[int] = (128, 128), backbone: str = "mlp",
                 window_shape: Optional[tuple] = None,
                 rng: Optional[np.random.Generator] = None,
                 dtype: str = "float64"):
        super().__init__()
        if dtype not in ("float32", "float64"):
            raise ValueError(f"dtype must be 'float32' or 'float64', got {dtype!r}")
        self.observation_size = observation_size
        self.num_actions = num_actions
        self.backbone_kind = backbone
        self.hidden_sizes = tuple(hidden_sizes)
        self.window_shape = window_shape
        self.dtype = dtype
        self._np_dtype = np.dtype(dtype)
        rng = rng or np.random.default_rng(0)
        with default_dtype(self._np_dtype):
            if backbone == "mlp":
                feature_dim = hidden_sizes[-1]
                self.feature_extractor = Sequential(
                    MLP(observation_size, hidden_sizes[:-1], feature_dim, rng=rng), Tanh())
            elif backbone == "attention":
                if window_shape is None:
                    raise ValueError("attention backbone requires window_shape=(window, features)")
                feature_dim = hidden_sizes[-1]
                self.feature_extractor = SelfAttentionEncoder(window_shape[1],
                                                              model_dim=feature_dim,
                                                              rng=rng)
            else:
                raise ValueError(f"unknown backbone {backbone!r}")
            self.policy_head = Linear(feature_dim, num_actions, gain=0.01, rng=rng)
            self.value_head = Linear(feature_dim, 1, gain=1.0, rng=rng)
        self._compiled: Optional[CompiledForward] = None
        self._compiled_unsupported = False
        self._compiled_calls = 0

    # ------------------------------------------------------------- compiled
    @property
    def compiled(self) -> Optional[CompiledForward]:
        """The graph-free forward plan, or ``None`` when disabled/unsupported."""
        if not compiled_inference_enabled():
            return None
        if self._compiled is None and not self._compiled_unsupported:
            try:
                self._compiled = CompiledForward(self)
            except UnsupportedArchitecture:
                self._compiled_unsupported = True
        return self._compiled

    @property
    def compiled_call_count(self) -> int:
        """How many inference calls took the compiled fast path (guard metric)."""
        return self._compiled_calls

    def __getstate__(self) -> dict:
        # Compiled workspaces are cheap to rebuild; keep pickles lean.
        state = self.__dict__.copy()
        state["_compiled"] = None
        return state

    # ----------------------------------------------------------------- graph
    def _features(self, observations: Tensor) -> Tensor:
        if self.backbone_kind == "attention":
            batch = observations.shape[0]
            window, features = self.window_shape
            observations = observations.reshape(batch, window, features)
        return self.feature_extractor(observations)

    def forward(self, observations: Tensor) -> tuple:
        """Return (logits, values) with gradients attached."""
        features = self._features(observations)
        logits = self.policy_head(features)
        values = self.value_head(features).reshape(-1)
        return logits, values

    def distribution(self, observations: Tensor) -> tuple:
        logits, values = self.forward(observations)
        return Categorical(logits), values

    # ----------------------------------------------------------------- acting
    def _prepare(self, observations: np.ndarray) -> np.ndarray:
        return np.atleast_2d(np.asarray(observations, dtype=self._np_dtype))

    def act(self, observations: np.ndarray, rng: Optional[np.random.Generator] = None,
            deterministic: bool = False) -> PolicyOutput:
        """Sample (or argmax) actions for a batch of observations, without a graph."""
        observations = self._prepare(observations)
        plan = self.compiled
        if plan is not None:
            self._compiled_calls += 1
            actions, log_probs, values = plan.act(observations, rng=rng,
                                                  deterministic=deterministic)
            return PolicyOutput(actions=actions, log_probs=log_probs, values=values)
        return self._act_graph(observations, rng=rng, deterministic=deterministic)

    def _act_graph(self, observations: np.ndarray,
                   rng: Optional[np.random.Generator] = None,
                   deterministic: bool = False) -> PolicyOutput:
        """Reference graph-based acting (parity baseline for the compiled plan)."""
        observations = self._prepare(observations)
        with no_grad():
            distribution, values = self.distribution(Tensor(observations))
            if deterministic:
                actions = distribution.mode()
            else:
                actions = distribution.sample(rng=rng)
            log_probs = distribution.log_prob(actions).numpy()
        return PolicyOutput(actions=actions, log_probs=np.asarray(log_probs),
                            values=values.numpy().copy())

    def value(self, observations: np.ndarray) -> np.ndarray:
        observations = self._prepare(observations)
        plan = self.compiled
        if plan is not None:
            self._compiled_calls += 1
            return plan.value(observations)
        with no_grad():
            _, values = self.forward(Tensor(observations))
        return values.numpy().copy()

    def action_probabilities(self, observation: np.ndarray) -> np.ndarray:
        """Probability of each action for a single observation (analysis helper)."""
        observation = self._prepare(observation)
        plan = self.compiled
        if plan is not None:
            self._compiled_calls += 1
            return plan.action_probabilities(observation)[0]
        with no_grad():
            distribution, _ = self.distribution(Tensor(observation))
        return distribution.probs[0]
