"""Proximal Policy Optimization: clipped-surrogate policy updates."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.autodiff import Adam
from repro.autodiff import functional as F
from repro.autodiff.tensor import Tensor
from repro.nn.compiled import UnsupportedArchitecture, compiled_inference_enabled
from repro.rl.buffer import RolloutBatch, RolloutBuffer
from repro.rl.fused_loss import FusedPPOLoss
from repro.rl.policy import ActorCriticPolicy


@dataclass
class PPOConfig:
    """PPO hyper-parameters (defaults tuned for the small guessing-game envs)."""

    learning_rate: float = 3e-4
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_ratio: float = 0.2
    value_coefficient: float = 0.5
    entropy_coefficient: float = 0.01
    entropy_coefficient_final: Optional[float] = None
    update_epochs: int = 4
    minibatch_size: int = 256
    max_grad_norm: float = 0.5
    horizon: int = 256
    num_envs: int = 8
    value_clip: Optional[float] = 0.2
    normalize_advantages: bool = True
    # Policy/optimizer precision.  "float64" (the default) is bit-identical
    # to the reference implementation; "float32" halves memory traffic and
    # roughly doubles BLAS throughput for large sweeps.
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.dtype not in ("float32", "float64"):
            raise ValueError(f"dtype must be 'float32' or 'float64', got {self.dtype!r}")


class PPOUpdater:
    """Performs PPO updates on an actor-critic policy from a rollout buffer."""

    def __init__(self, policy: ActorCriticPolicy, config: PPOConfig,
                 rng: Optional[np.random.Generator] = None):
        self.policy = policy
        self.config = config
        self.rng = rng or np.random.default_rng(0)
        self.optimizer = Adam(policy.parameters(), lr=config.learning_rate)
        self.entropy_coefficient = config.entropy_coefficient
        self._fused_loss: Optional[FusedPPOLoss] = None
        self._fused_unsupported = False
        # Minibatch updates that went through the fused graph-free kernel
        # (guard tests use this to detect a silent fallback).
        self.fused_minibatches = 0

    def _fused(self) -> Optional[FusedPPOLoss]:
        """The fused graph-free loss kernel, or ``None`` when unavailable.

        Disabled together with the other fast paths by
        ``REPRO_DISABLE_COMPILED=1`` or :func:`repro.autodiff.functional.composed_ops`.
        """
        if not F.FUSED or not compiled_inference_enabled():
            return None
        if self._fused_loss is None and not self._fused_unsupported:
            try:
                self._fused_loss = FusedPPOLoss(self.policy, self.config)
            except UnsupportedArchitecture:
                self._fused_unsupported = True
        return self._fused_loss

    # ------------------------------------------------------------- state I/O
    def state_dict(self) -> Dict:
        """Optimizer moments/step plus the annealed entropy coefficient."""
        return {"optimizer": self.optimizer.state_dict(),
                "entropy_coefficient": self.entropy_coefficient}

    def load_state_dict(self, state: Dict) -> None:
        self.optimizer.load_state_dict(state["optimizer"])
        self.entropy_coefficient = float(state["entropy_coefficient"])

    def set_progress(self, progress: float) -> None:
        """Anneal the entropy bonus linearly with training progress in [0, 1]."""
        final = self.config.entropy_coefficient_final
        if final is None:
            return
        progress = min(max(progress, 0.0), 1.0)
        start = self.config.entropy_coefficient
        self.entropy_coefficient = start + (final - start) * progress

    def _batch_loss(self, batch: RolloutBatch) -> tuple:
        config = self.config
        if self.policy.dtype != "float64":
            # float32 policies compute the whole loss graph in float32; the
            # rollout buffer stays float64 (GAE precision), cast per batch.
            cast = np.dtype(self.policy.dtype)
            batch = RolloutBatch(
                observations=batch.observations.astype(cast),
                actions=batch.actions,
                old_log_probs=batch.old_log_probs.astype(cast),
                advantages=batch.advantages.astype(cast),
                returns=batch.returns.astype(cast),
                old_values=batch.old_values.astype(cast))
        distribution, values = self.policy.distribution(Tensor(batch.observations))
        log_probs = distribution.log_prob(batch.actions)
        entropy = distribution.entropy().mean()

        ratio = (log_probs - batch.old_log_probs).exp()
        advantages = Tensor(batch.advantages)
        unclipped = ratio * advantages
        clipped = ratio.clip(1.0 - config.clip_ratio, 1.0 + config.clip_ratio) * advantages
        policy_loss = -(unclipped.minimum(clipped).mean())

        returns = Tensor(batch.returns)
        if config.value_clip is not None:
            old_values = Tensor(batch.old_values)
            clipped_values = old_values + (values - old_values).clip(
                -config.value_clip, config.value_clip)
            loss_unclipped = (values - returns) ** 2
            loss_clipped = (clipped_values - returns) ** 2
            value_loss = loss_unclipped.maximum(loss_clipped).mean() * 0.5
        else:
            value_loss = ((values - returns) ** 2).mean() * 0.5

        total = (policy_loss + config.value_coefficient * value_loss
                 - self.entropy_coefficient * entropy)

        with_ratio = ratio.numpy()
        clip_fraction = float(np.mean(np.abs(with_ratio - 1.0) > config.clip_ratio))
        approx_kl = float(np.mean(batch.old_log_probs - log_probs.numpy()))
        return total, {
            "policy_loss": policy_loss.item(),
            "value_loss": value_loss.item(),
            "entropy": entropy.item(),
            "clip_fraction": clip_fraction,
            "approx_kl": approx_kl,
        }

    def update(self, buffer: RolloutBuffer) -> Dict[str, float]:
        """Run ``update_epochs`` passes of minibatch SGD over the buffer.

        Each minibatch goes through the fused graph-free kernel when the
        architecture supports it (bit-identical gradients), otherwise
        through the reference autodiff graph.
        """
        config = self.config
        fused = self._fused()
        metrics: Dict[str, list] = {}
        for _ in range(config.update_epochs):
            for batch in buffer.iter_minibatches(config.minibatch_size, rng=self.rng,
                                                 normalize_advantages=config.normalize_advantages):
                if fused is not None:
                    self.optimizer.zero_grad()
                    batch_metrics = fused.compute(batch, self.entropy_coefficient)
                    self.fused_minibatches += 1
                else:
                    loss, batch_metrics = self._batch_loss(batch)
                    self.optimizer.zero_grad()
                    loss.backward()
                self.optimizer.clip_grad_norm(config.max_grad_norm)
                self.optimizer.step()
                for key, value in batch_metrics.items():
                    metrics.setdefault(key, []).append(value)
        return {key: float(np.mean(values)) for key, values in metrics.items()}
