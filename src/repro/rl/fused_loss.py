"""Graph-free fused PPO minibatch kernel.

``PPOUpdater._batch_loss`` normally builds a reverse-mode graph of ~40 Tensor
nodes per minibatch and walks it backwards.  For the flattenable feed-forward
backbones (the default MLP policy) this module computes the same loss and the
same parameter gradients with a hand-written forward + backward pass: a fixed
sequence of numpy kernels with no Tensor objects, no graph, and every large
``(batch, features)`` activation/gradient/distribution intermediate coming
from a preallocated, shape-keyed workspace.  (Small ``(batch,)``-sized
temporaries in the surrogate/value chains are still allocated per call —
they are a negligible fraction of the removed overhead.)

**Bit-parity contract.** Every backward formula below replays the exact
elementwise op order the composed graph would execute, and joins (tensors
consumed by two downstream ops) are plain additions, which are commutative in
IEEE-754 — so the gradients, the optimizer steps, and therefore whole
training runs are bit-identical to the graph path.  This is enforced by
``tests/test_compiled_policy.py`` (fused-vs-graph update and training-history
equality).

Attention backbones and exotic module trees raise
:class:`~repro.nn.compiled.UnsupportedArchitecture`; the updater falls back
to the graph loss (which still benefits from the fused functional kernels).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.autodiff.functional import entropy_grad, log_softmax_grad
from repro.nn.compiled import UnsupportedArchitecture, _flatten_feedforward
from repro.rl.buffer import RolloutBatch


def _store_grad(parameter, compute_into) -> None:
    """Assign a parameter gradient, reusing the retired grad buffer.

    ``compute_into(out_or_none)`` must return the gradient array, writing into
    ``out`` when one is provided.  Mirrors ``Tensor._accumulate`` for the
    single-contribution case.
    """
    buffer = parameter._grad_buffer
    if buffer is not None and buffer.shape == parameter.data.shape:
        parameter.grad = compute_into(buffer)
        parameter._grad_buffer = None
    else:
        parameter.grad = compute_into(None)


class FusedPPOLoss:
    """Fused forward+backward PPO loss for flattened feed-forward policies."""

    def __init__(self, policy, config):
        self.policy = policy
        self.config = config
        self.dtype = policy.policy_head.weight.data.dtype
        steps = _flatten_feedforward(policy.feature_extractor)
        for kind, module in steps:
            if kind not in ("linear", "tanh"):
                # Only the linear/tanh MLP family has fused backward kernels.
                raise UnsupportedArchitecture(f"no fused PPO kernel for {kind!r}")
        if not steps or steps[0][0] != "linear":
            # The backward pass stops at the first linear layer (observations
            # need no gradient); an activation-first stack has no such anchor.
            raise UnsupportedArchitecture("fused PPO kernel expects a linear first layer")
        self._steps = steps
        self._workspaces: Dict[int, dict] = {}
        self._one = np.ones((), dtype=self.dtype)

    # ------------------------------------------------------------- workspace
    def _workspace(self, batch: int) -> dict:
        ws = self._workspaces.get(batch)
        if ws is None:
            dtype = self.dtype
            policy = self.policy
            # activations[p] is step p's output; grads[p] is the gradient
            # w.r.t. step p's *input* (so a step never writes into the buffer
            # it is still reading the downstream gradient from).
            ws = {"activations": [], "grads": []}
            width = policy.observation_size
            for position, (kind, module) in enumerate(self._steps):
                in_width = width
                if kind == "linear":
                    width = module.out_features
                ws["activations"].append(np.empty((batch, width), dtype=dtype))
                # Step 0 never propagates a gradient to the observations,
                # so it needs no input-gradient buffer.
                ws["grads"].append(None if position == 0 else
                                   np.empty((batch, in_width), dtype=dtype))
            actions = policy.num_actions
            for name, shape in (("logits", (batch, actions)),
                                ("logits_grad", (batch, actions)),
                                ("values2d", (batch, 1)),
                                ("maximum", (batch, 1)),
                                ("log_probs", (batch, actions)),
                                ("exp", (batch, actions)),
                                ("total", (batch, 1)),
                                ("log_total", (batch, 1)),
                                ("probs", (batch, actions)),
                                ("prod", (batch, actions)),
                                ("scatter", (batch, actions)),
                                ("features_grad", (batch, width))):
                ws[name] = np.empty(shape, dtype=dtype)
            ws["batch_index"] = np.arange(batch)
            ws["obs"] = None
            # Comparison against the rollout buffer's native float64, not a
            # cast: float64 policies reuse the buffer's arrays as-is.
            if self.dtype != np.dtype(np.float64):  # repro-lint: disable=dtype.literal
                ws["obs"] = np.empty((batch, policy.observation_size), dtype=dtype)
            self._workspaces[batch] = ws
        return ws

    # ---------------------------------------------------------- forward+back
    def compute(self, batch: RolloutBatch, entropy_coefficient: float) -> Dict[str, float]:
        """Fill every parameter's ``.grad`` and return the loss metrics.

        Equivalent to ``loss, metrics = _batch_loss(batch); loss.backward()``
        on the graph path, bit for bit.
        """
        config = self.config
        policy = self.policy
        ws = self._workspace(batch.observations.shape[0])
        count = batch.observations.shape[0]
        dtype = self.dtype

        observations = batch.observations
        old_log_probs = batch.old_log_probs
        advantages = batch.advantages
        returns = batch.returns
        old_values = batch.old_values
        if ws["obs"] is not None:
            # float32 policy: cast the float64 rollout batch once per minibatch.
            np.copyto(ws["obs"], observations)
            observations = ws["obs"]
            old_log_probs = old_log_probs.astype(dtype)
            advantages = advantages.astype(dtype)
            returns = returns.astype(dtype)
            old_values = old_values.astype(dtype)

        # ---------------------------------------------------------- forward
        current = observations
        for (kind, module), out in zip(self._steps, ws["activations"]):
            if kind == "linear":
                np.matmul(current, module.weight.data, out=out)
                out += module.bias.data
            else:  # tanh
                np.tanh(current, out=out)
            current = out
        features = current
        logits = ws["logits"]
        np.matmul(features, policy.policy_head.weight.data, out=logits)
        logits += policy.policy_head.bias.data
        values2d = ws["values2d"]
        np.matmul(features, policy.value_head.weight.data, out=values2d)
        values2d += policy.value_head.bias.data
        values = values2d.reshape(-1)

        # log-softmax (saving exp/total for the backward pass)
        np.amax(logits, axis=-1, keepdims=True, out=ws["maximum"])
        np.subtract(logits, ws["maximum"], out=ws["log_probs"])
        np.exp(ws["log_probs"], out=ws["exp"])
        np.sum(ws["exp"], axis=-1, keepdims=True, out=ws["total"])
        np.log(ws["total"], out=ws["log_total"])
        ws["log_probs"] -= ws["log_total"]
        log_probs_all = ws["log_probs"]
        picked = log_probs_all[(ws["batch_index"][:count], batch.actions)]

        # entropy
        np.exp(log_probs_all, out=ws["probs"])
        np.multiply(ws["probs"], log_probs_all, out=ws["prod"])
        entropy_vector = -np.sum(ws["prod"], axis=-1)
        entropy_mean = entropy_vector.mean()

        # clipped surrogate
        ratio = np.exp(picked - old_log_probs)
        low, high = 1.0 - config.clip_ratio, 1.0 + config.clip_ratio
        clip_mask = ((ratio >= low) & (ratio <= high)).astype(dtype)
        clipped_ratio = np.clip(ratio, low, high)
        unclipped = ratio * advantages
        clipped = clipped_ratio * advantages
        take_unclipped = (unclipped <= clipped).astype(dtype)
        surrogate = np.minimum(unclipped, clipped)
        policy_loss = -(surrogate.mean())

        # value loss
        value_difference = values - returns
        squared_unclipped = value_difference * value_difference
        if config.value_clip is not None:
            delta = values - old_values
            delta_mask = ((delta >= -config.value_clip)
                          & (delta <= config.value_clip)).astype(dtype)
            clipped_values = old_values + np.clip(delta, -config.value_clip,
                                                  config.value_clip)
            clipped_difference = clipped_values - returns
            squared_clipped = clipped_difference * clipped_difference
            take_squared = (squared_unclipped >= squared_clipped).astype(dtype)
            value_loss = np.maximum(squared_unclipped, squared_clipped).mean() * 0.5
        else:
            value_loss = squared_unclipped.mean() * 0.5

        # --------------------------------------------------------- backward
        # total = policy_loss + vc * value_loss - ec * entropy; d_total = 1.
        one = self._one
        coefficient = np.asarray(entropy_coefficient, dtype=dtype)
        grad_entropy = np.negative(one) * coefficient
        grad_entropy_vector = np.broadcast_to(grad_entropy / count,
                                              entropy_vector.shape)
        logits_grad = ws["logits_grad"]
        np.copyto(logits_grad, entropy_grad(grad_entropy_vector, -1,
                                            log_probs_all, ws["probs"],
                                            ws["exp"], ws["total"]))

        # policy-loss branch -> ratio -> picked log-probs -> logits
        grad_surrogate = np.broadcast_to(np.negative(one) / count, surrogate.shape)
        grad_unclipped = grad_surrogate * take_unclipped
        grad_clipped = grad_surrogate * (1.0 - take_unclipped)
        grad_ratio = grad_unclipped * advantages + (grad_clipped * advantages) * clip_mask
        grad_picked = grad_ratio * ratio
        scatter = ws["scatter"]
        scatter[...] = 0.0
        np.add.at(scatter, (ws["batch_index"][:count], batch.actions), grad_picked)
        logits_grad += log_softmax_grad(scatter, -1, ws["exp"], ws["total"])

        # value-loss branch -> values
        value_coefficient = np.asarray(config.value_coefficient, dtype=dtype)
        half = np.asarray(0.5, dtype=dtype)
        grad_value_mean = (one * value_coefficient) * half
        if config.value_clip is not None:
            grad_max = np.broadcast_to(grad_value_mean / count, values.shape)
            grad_squared_unclipped = grad_max * take_squared
            grad_squared_clipped = grad_max * (1.0 - take_squared)
            grad_values = ((grad_squared_unclipped * 2) * value_difference
                           + ((grad_squared_clipped * 2) * clipped_difference)
                           * delta_mask)
        else:
            grad_mean = np.broadcast_to(grad_value_mean / count, values.shape)
            grad_values = (grad_mean * 2) * value_difference

        # heads -> features
        head_w = policy.policy_head.weight
        head_b = policy.policy_head.bias
        value_w = policy.value_head.weight
        value_b = policy.value_head.bias
        grad_values2d = grad_values.reshape(count, 1)
        features_grad = ws["features_grad"]
        np.matmul(logits_grad, head_w.data.T, out=features_grad)
        features_grad += grad_values2d @ value_w.data.T
        _store_grad(head_w, lambda out: np.matmul(features.T, logits_grad, out=out))
        _store_grad(head_b, lambda out: np.sum(logits_grad, axis=0, out=out))
        _store_grad(value_w, lambda out: np.matmul(features.T, grad_values2d, out=out))
        _store_grad(value_b, lambda out: np.sum(grad_values2d, axis=0, out=out))

        # backbone, in reverse
        grad_current = features_grad
        for position in range(len(self._steps) - 1, -1, -1):
            kind, module = self._steps[position]
            below = ws["activations"][position - 1] if position > 0 else observations
            target = ws["grads"][position]
            if kind == "tanh":
                value = ws["activations"][position]
                np.multiply(value, value, out=target)
                np.subtract(1.0, target, out=target)
                target *= grad_current
                grad_current = target
            else:  # linear
                _store_grad(module.weight,
                            lambda out, a=below, g=grad_current:
                            np.matmul(a.T, g, out=out))
                _store_grad(module.bias,
                            lambda out, g=grad_current:
                            np.sum(g, axis=0, out=out))
                if position > 0:
                    np.matmul(grad_current, module.weight.data.T, out=target)
                    grad_current = target

        # ---------------------------------------------------------- metrics
        clip_fraction = float(np.mean(np.abs(ratio - 1.0) > config.clip_ratio))
        approx_kl = float(np.mean(old_log_probs - picked))
        return {
            "policy_loss": float(policy_loss),
            "value_loss": float(value_loss),
            "entropy": float(entropy_mean),
            "clip_fraction": clip_fraction,
            "approx_kl": approx_kl,
        }
