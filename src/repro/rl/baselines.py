"""Non-RL search baselines (Sec. VI-A comparison).

The paper argues RL finds attacks far faster than unguided search.  These
baselines make that comparison concrete: a random-sequence search that samples
whole attack sequences until one distinguishes the secrets, and a greedy
one-step-lookahead search that has no learning capability (standing in for the
A*-with-fixed-heuristic discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.attacks.evaluate import evaluate_action_sequence
from repro.env.config import EnvConfig


def _build_env(config):
    """Build the search env from an EnvConfig, scenario id, or ScenarioSpec."""
    if isinstance(config, EnvConfig):
        from repro.env.guessing_game import CacheGuessingGameEnv

        return CacheGuessingGameEnv(config)
    from repro.scenarios import make

    return make(config)


@dataclass
class SearchResult:
    """Outcome of a search baseline."""

    found: bool
    sequences_tried: int
    env_steps: int
    sequence: Optional[List[int]] = None
    accuracy: float = 0.0


class RandomSearchBaseline:
    """Sample random non-guess action prefixes and test whether they leak the secret.

    A candidate prefix "works" when, after executing it, the pattern of
    observed hits/misses differs across secrets, i.e. an attacker appending
    the right guess would reach the target accuracy.
    """

    def __init__(self, config, seed: int = 0):
        """``config`` may be an EnvConfig, a scenario id, or a ScenarioSpec."""
        self.config = config
        self.rng = np.random.default_rng(seed)

    def search(self, max_sequences: int = 2000, max_length: Optional[int] = None,
               target_accuracy: float = 0.95, trials_per_sequence: int = 4) -> SearchResult:
        env = _build_env(self.config)
        non_guess = [i for i in range(len(env.actions)) if not env.actions.decode(i).is_guess]
        max_length = max_length or env.max_steps - 1
        env_steps = 0
        for attempt in range(1, max_sequences + 1):
            length = int(self.rng.integers(2, max_length + 1))
            candidate = [int(self.rng.choice(non_guess)) for _ in range(length)]
            accuracy, steps = evaluate_action_sequence(env, candidate,
                                                       trials=trials_per_sequence)
            env_steps += steps
            if accuracy >= target_accuracy:
                return SearchResult(found=True, sequences_tried=attempt,
                                    env_steps=env_steps, sequence=candidate,
                                    accuracy=accuracy)
        return SearchResult(found=False, sequences_tried=max_sequences, env_steps=env_steps)


class GreedyOneStepBaseline:
    """Greedy search with a fixed heuristic (no learning): extend the sequence
    one action at a time, keeping the action that maximizes how well the
    resulting observations separate the possible secrets."""

    def __init__(self, config, seed: int = 0):
        """``config`` may be an EnvConfig, a scenario id, or a ScenarioSpec."""
        self.config = config
        self.rng = np.random.default_rng(seed)

    def search(self, max_length: int = 16, target_accuracy: float = 0.95,
               trials_per_sequence: int = 4) -> SearchResult:
        env = _build_env(self.config)
        non_guess = [i for i in range(len(env.actions)) if not env.actions.decode(i).is_guess]
        sequence: List[int] = []
        env_steps = 0
        best_accuracy = 0.0
        for _ in range(max_length):
            best_action = None
            best_candidate_accuracy = -1.0
            for action in non_guess:
                candidate = sequence + [action]
                accuracy, steps = evaluate_action_sequence(env, candidate,
                                                           trials=trials_per_sequence)
                env_steps += steps
                if accuracy > best_candidate_accuracy:
                    best_candidate_accuracy = accuracy
                    best_action = action
            sequence.append(best_action)
            best_accuracy = best_candidate_accuracy
            if best_accuracy >= target_accuracy:
                return SearchResult(found=True, sequences_tried=len(sequence),
                                    env_steps=env_steps, sequence=sequence,
                                    accuracy=best_accuracy)
        return SearchResult(found=False, sequences_tried=max_length, env_steps=env_steps,
                            sequence=sequence, accuracy=best_accuracy)
