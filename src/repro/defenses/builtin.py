"""The built-in defense catalogue.

Registers the five defenses the paper's defended-cache studies (Sec. V-B/V-D,
Table VII) and the follow-on literature motivate:

* ``plcache`` — partition-locked cache (Wang & Lee): the victim's lines are
  pre-installed and locked;
* ``keyed-remap`` — CEASER-style keyed set-index remapping with a periodic
  re-key epoch;
* ``skew`` — ScatterCache-style skewed associativity (per-way-group hashes,
  random fills);
* ``way-partition`` — DAWG/CAT-style static way isolation between victim and
  attacker;
* ``random-fill`` — Liu & Lee random-fill cache (demand misses do not
  allocate).

Importing :mod:`repro.defenses` runs this module, so every scenario and the
``defense_matrix`` experiment see the full catalogue.
"""

from __future__ import annotations

from repro.defenses.registry import register_defense
from repro.defenses.spec import DefenseSpec


def register_builtin_defenses() -> None:
    """Populate the registry (idempotent: skips when already registered)."""
    from repro.defenses.registry import is_defense_registered

    if is_defense_registered("plcache"):
        return
    register_defense(DefenseSpec(
        defense_id="plcache", kind="plcache",
        description=("Partition-locked cache: the victim's lines are "
                     "pre-installed and locked (Table VII setting); "
                     "locked_addresses defaults to the victim range"),
    ))
    register_defense(DefenseSpec(
        defense_id="keyed-remap", kind="keyed_remap",
        description=("CEASER-style keyed set-index remapping, re-keyed (and "
                     "flushed) every rekey_epoch=32 accesses"),
        params={"rekey_epoch": 32},
    ))
    register_defense(DefenseSpec(
        defense_id="skew", kind="skew",
        description=("ScatterCache-style skewed associativity: 2 per-way hash "
                     "groups with independent keyed indices, random fills"),
        params={"groups": 2},
    ))
    register_defense(DefenseSpec(
        defense_id="way-partition", kind="way_partition",
        description=("DAWG/CAT-style static way isolation; victim_ways "
                     "defaults to half the associativity"),
    ))
    register_defense(DefenseSpec(
        defense_id="random-fill", kind="random_fill",
        description=("Random-fill cache: demand misses are served uncached and "
                     "a random neighbor within fill_window=4 fills instead"),
        params={"fill_window": 4},
    ))


register_builtin_defenses()
