"""The defense registry behind ``repro.make(scenario, defense=...)``.

Mirrors the scenario registry one layer down: defenses are registered once
(the built-in catalogue lives in :mod:`repro.defenses.builtin`) and addressed
by id wherever a scenario takes a ``defense``::

    import repro

    repro.list_defenses()                        # every registered defense id
    env = repro.make("guessing/lru-4way", defense="keyed-remap")
    repro.register_defense(base="keyed-remap", defense_id="keyed-remap-fast",
                           rekey_epoch=8)
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Union

from repro.defenses.spec import DefenseSpec

DefenseLike = Union[str, Mapping, DefenseSpec]

_REGISTRY: Dict[str, DefenseSpec] = {}


def register_defense(spec: Optional[DefenseSpec] = None, *,
                     base: Optional[DefenseLike] = None,
                     defense_id: Optional[str] = None, overwrite: bool = False,
                     **fields: Any) -> DefenseSpec:
    """Register a defense and return its spec.

    Three calling styles, mirroring :func:`repro.scenarios.register`:

    * ``register_defense(spec)`` — register a ready-made :class:`DefenseSpec`;
    * ``register_defense(defense_id="x", kind=..., params=...)`` — build the
      spec from keyword fields;
    * ``register_defense(base="keyed-remap", defense_id="x", rekey_epoch=8)``
      — derive from a registered (or given) base, merging parameter overrides.
    """
    if spec is not None and (base is not None or fields):
        raise TypeError("pass either a DefenseSpec or base/fields, not both")
    if spec is None:
        if base is not None:
            if defense_id is None:
                raise TypeError("deriving from a base requires defense_id")
            spec = resolve_defense(base).derive(defense_id, **fields)
        else:
            if defense_id is None:
                raise TypeError("register_defense() requires a spec or a defense_id")
            spec = DefenseSpec(defense_id=defense_id, **fields)
    if spec.defense_id in _REGISTRY and not overwrite:
        raise ValueError(f"defense {spec.defense_id!r} is already registered "
                         "(pass overwrite=True to replace it)")
    _REGISTRY[spec.defense_id] = spec
    return spec


def unregister_defense(defense_id: str) -> None:
    """Remove a defense (mainly for tests)."""
    _REGISTRY.pop(defense_id, None)


def is_defense_registered(defense_id: str) -> bool:
    return defense_id in _REGISTRY


def list_defenses(prefix: str = "") -> List[str]:
    """Sorted ids of all registered defenses (optionally filtered by prefix)."""
    return sorted(did for did in _REGISTRY if did.startswith(prefix))


def get_defense(defense: DefenseLike) -> DefenseSpec:
    """Look up a defense id (specs and inline mappings pass through)."""
    return resolve_defense(defense)


def resolve_defense(defense: DefenseLike) -> DefenseSpec:
    if isinstance(defense, DefenseSpec):
        return defense
    if isinstance(defense, str):
        if defense not in _REGISTRY:
            raise KeyError(f"unknown defense {defense!r}; known: {list_defenses()}")
        return _REGISTRY[defense]
    if isinstance(defense, Mapping):
        return DefenseSpec.from_dict(defense)
    raise TypeError(f"expected a defense id, mapping, or DefenseSpec, "
                    f"got {type(defense)!r}")
