"""Declarative, serializable secure-cache defense descriptions.

A :class:`DefenseSpec` is the defense-layer sibling of
:class:`repro.scenarios.ScenarioSpec`: a frozen value object naming one
defense *mechanism* (``kind``) plus its parameters.  Specs round-trip
losslessly through ``to_dict``/``from_dict`` and JSON, so defenses can be
stored inside scenario specs, campaign manifests, and run artifacts.

A defense does not build anything by itself — it **compiles into fragments**
(:class:`CompiledDefense`) that the scenario layer folds into the environment
it is defending:

* ``cache_overrides`` are merged into the scenario's cache config.  Mechanisms
  that change cache behavior (keyed-remap, skew, way-partition, random-fill)
  place a plain-data ``defense`` fragment in ``CacheConfig.extra``, which
  :func:`repro.cache.defended.make_cache` and the SoA engine interpret;
* ``env_overrides`` are merged into the scenario's env kwargs;
* ``wrappers`` are appended to the scenario's wrapper pipeline;
* ``locked_addresses`` pre-installs and locks victim lines (the PL cache).

``supports_soa()`` is the capability hook the vectorized trainer consults:
keyed-remap and way-partition have SoA batched kernels, the others warn and
fall back to the (bit-identical) object path.
"""

from __future__ import annotations

import copy
import dataclasses
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.cache.config import CacheConfig

#: Defense mechanisms the cache substrate implements.
DEFENSE_KINDS = ("plcache", "keyed_remap", "skew", "way_partition", "random_fill")

#: Mechanisms with vectorized SoA kernels, mapped to the replacement policies
#: the kernel supports (None = every SoA-capable policy).
_SOA_KERNELS: Dict[str, Optional[Tuple[str, ...]]] = {
    "keyed_remap": None,
    "way_partition": ("lru", "mru"),
}


@dataclass(frozen=True)
class CompiledDefense:
    """The fragments a defense contributes to the scenario that applies it."""

    cache_overrides: Dict = field(default_factory=dict)
    env_overrides: Dict = field(default_factory=dict)
    wrappers: Tuple[Dict, ...] = ()
    locked_addresses: Tuple[int, ...] = ()


@dataclass(frozen=True)
class DefenseSpec:
    """Frozen description of one secure-cache defense.

    Fields
    ------
    defense_id:
        Registry key (``"plcache"``, ``"keyed-remap"``, ...).
    kind:
        The mechanism, one of :data:`DEFENSE_KINDS`.  Several registered
        defenses may share a kind with different parameters.
    description:
        One-line summary for listings.
    params:
        Mechanism parameters: ``locked_addresses`` (plcache, defaults to the
        scenario's victim range), ``rekey_epoch`` (keyed_remap), ``groups``
        (skew), ``victim_ways`` (way_partition, defaults to half the ways),
        ``fill_window`` (random_fill).
    """

    defense_id: str
    kind: str
    description: str = ""
    params: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.defense_id:
            raise ValueError("defense_id must be non-empty")
        if self.kind not in DEFENSE_KINDS:
            raise ValueError(f"unknown defense kind {self.kind!r}; "
                             f"choose from {DEFENSE_KINDS}")
        object.__setattr__(self, "params", dict(self.params))

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data dict (JSON-safe) that losslessly round-trips via from_dict."""
        data = dataclasses.asdict(self)
        data["params"] = copy.deepcopy(dict(self.params))
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DefenseSpec":
        payload = dict(data)
        # Inline fragments may omit the id; the kind doubles as one.
        if "defense_id" not in payload and "kind" in payload:
            payload["defense_id"] = payload["kind"]
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown DefenseSpec fields: {sorted(unknown)}")
        return cls(**payload)

    def to_json(self, **json_kwargs: Any) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, **json_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "DefenseSpec":
        return cls.from_dict(json.loads(text))

    # -------------------------------------------------------------- derivation
    def derive(self, defense_id: str, **params: Any) -> "DefenseSpec":
        """A renamed copy with parameter overrides merged in."""
        merged = {**self.params, **params}
        return dataclasses.replace(self, defense_id=defense_id, params=merged)

    # ------------------------------------------------------------- compilation
    def compile(self, scenario: Any = None) -> CompiledDefense:
        """Compile into the fragments the scenario layer applies.

        ``scenario`` (a :class:`~repro.scenarios.ScenarioSpec`, duck-typed) is
        the scenario being defended; it supplies context-dependent defaults
        (the victim address range for plcache, the associativity for
        way-partition).  ``None`` falls back to :class:`CacheConfig` /
        :class:`~repro.env.config.EnvConfig` defaults.
        """
        cache_kwargs = dict(getattr(scenario, "cache", None) or {})
        env_kwargs = dict(getattr(scenario, "env_kwargs", None) or {})
        if self.kind == "plcache":
            locked = self.params.get("locked_addresses")
            if locked is None:
                victim_s = int(env_kwargs.get("victim_addr_s", 0))
                victim_e = int(env_kwargs.get("victim_addr_e", 0))
                locked = range(victim_s, victim_e + 1)
            return CompiledDefense(cache_overrides={"lockable": True},
                                   locked_addresses=tuple(int(a) for a in locked))
        if self.kind == "keyed_remap":
            fragment = {"kind": "keyed_remap",
                        "rekey_epoch": int(self.params.get("rekey_epoch", 32))}
        elif self.kind == "skew":
            fragment = {"kind": "skew", "groups": int(self.params.get("groups", 2))}
        elif self.kind == "way_partition":
            num_ways = int(cache_kwargs.get("num_ways", CacheConfig.num_ways))
            victim_ways = self.params.get("victim_ways")
            victim_ways = (max(1, num_ways // 2) if victim_ways is None
                           else int(victim_ways))
            fragment = {"kind": "way_partition", "victim_ways": victim_ways}
        else:  # random_fill
            fragment = {"kind": "random_fill",
                        "fill_window": int(self.params.get("fill_window", 4))}
        return CompiledDefense(cache_overrides={"extra": {"defense": fragment}})

    # -------------------------------------------------------------- capability
    def supports_soa(self, cache: Optional[CacheConfig] = None) -> bool:
        """Whether this defense has a vectorized kernel in the SoA engine.

        ``cache`` narrows the answer to one cache config (the way-partition
        kernel only covers lru/mru replacement); ``None`` answers for the
        mechanism in general.
        """
        if self.kind not in _SOA_KERNELS:
            return False
        policies = _SOA_KERNELS[self.kind]
        if cache is None or policies is None:
            return True
        return cache.rep_policy.lower() in policies


def fragment_supports_soa(fragment: Mapping, cache: CacheConfig) -> bool:
    """Capability check for a compiled ``defense`` fragment in ``CacheConfig.extra``.

    Used by :func:`repro.env.batched_env.config_supports_batching`, which sees
    only the compiled config (the spec-level hook is
    :meth:`repro.scenarios.ScenarioSpec.supports_soa`).
    """
    kind = fragment.get("kind")
    if kind not in _SOA_KERNELS:
        return False
    policies = _SOA_KERNELS[kind]
    return policies is None or cache.rep_policy.lower() in policies
