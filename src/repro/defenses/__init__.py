"""Pluggable secure-cache defenses.

The defense layer mirrors :mod:`repro.scenarios` one level down: a frozen
JSON-serializable :class:`DefenseSpec` describes one defense mechanism plus
parameters, a registry resolves defense ids, and every scenario accepts a
``defense`` (id, inline mapping, or spec) that compiles into cache-config /
wrapper fragments at build time::

    import repro

    repro.list_defenses()           # ['keyed-remap', 'plcache', 'random-fill', ...]
    env = repro.make("guessing/lru-4way", defense="keyed-remap")
    env = repro.make("guessing/lru-4way",
                     defense={"kind": "way_partition",
                              "params": {"victim_ways": 1}})

The attacker-vs-defense evaluation matrix lives in the experiment registry as
``repro.run("defense_matrix", ...)``; the ``defended/*`` scenario family
enumerates curated base-scenario x defense combinations.
"""

from repro.defenses.spec import (
    DEFENSE_KINDS,
    CompiledDefense,
    DefenseSpec,
    fragment_supports_soa,
)
from repro.defenses.registry import (
    DefenseLike,
    get_defense,
    is_defense_registered,
    list_defenses,
    register_defense,
    resolve_defense,
    unregister_defense,
)
from repro.defenses import builtin as _builtin  # noqa: F401  (registers catalogue)

__all__ = [
    "DEFENSE_KINDS",
    "CompiledDefense",
    "DefenseLike",
    "DefenseSpec",
    "fragment_supports_soa",
    "get_defense",
    "is_defense_registered",
    "list_defenses",
    "register_defense",
    "resolve_defense",
    "unregister_defense",
]
