"""Section VI-A: RL versus brute-force / unguided search.

Reproduces the analytical search-space estimate (M ~ e^(2N) candidate
sequences for an N-way prime+probe attack) and runs the empirical random
search baseline on a small configuration to show how quickly unguided search
degrades compared to the RL agent's step budget.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.search_space import brute_force_steps_estimate, prime_probe_search_space
from repro.cache.config import CacheConfig
from repro.env.config import EnvConfig
from repro.experiments.common import ScaleLike, format_table, resolve_scale
from repro.rl.baselines import RandomSearchBaseline

# The paper quotes ~1 million RL steps to converge for the 8-way case.
RL_STEPS_REFERENCE = 1_000_000

ANALYTICAL_WAYS = (2, 4, 6, 8, 12, 16)


def run_cell(params: Dict, scale: ScaleLike, seed: int = 0, ctx=None) -> Dict:
    """One Section VI-A row: an analytical estimate or the empirical search."""
    scale = resolve_scale(scale)
    num_ways = params.get("num_ways", 2)
    if params["kind"] == "analytical":
        return {
            "num_ways": num_ways,
            "brute_force_sequences": prime_probe_search_space(num_ways),
            "brute_force_steps": brute_force_steps_estimate(num_ways),
            "rl_steps_reference": RL_STEPS_REFERENCE,
            "speedup_vs_rl": brute_force_steps_estimate(num_ways) / RL_STEPS_REFERENCE,
            "kind": "analytical",
        }
    config = EnvConfig(cache=CacheConfig.fully_associative(num_ways),
                       attacker_addr_s=num_ways, attacker_addr_e=2 * num_ways - 1,
                       victim_addr_s=0, victim_addr_e=0, victim_no_access_enable=True,
                       window_size=4 * num_ways, warmup_accesses=0, seed=seed)
    search = RandomSearchBaseline(config, seed=seed)
    max_sequences = 200 if scale.name == "smoke" else 2000
    result = search.search(max_sequences=max_sequences)
    return {
        "num_ways": num_ways,
        "brute_force_sequences": result.sequences_tried,
        "brute_force_steps": result.env_steps,
        "rl_steps_reference": RL_STEPS_REFERENCE,
        "speedup_vs_rl": float("nan"),
        "kind": "empirical random search" + ("" if result.found else " (not found)"),
    }


def run(scale: ScaleLike = "bench", ways: Optional[List[int]] = None,
        empirical_ways: int = 2, seed: int = 0) -> List[Dict]:
    """Analytical estimates for several associativities plus one empirical search."""
    scale = resolve_scale(scale)
    ways = ways or list(ANALYTICAL_WAYS)
    cells = ([{"kind": "analytical", "num_ways": n} for n in ways]
             + [{"kind": "empirical", "num_ways": empirical_ways}])
    return [run_cell(params, scale, seed=seed) for params in cells]


def format_results(rows: List[Dict]) -> str:
    return format_table(rows, ["num_ways", "kind", "brute_force_sequences",
                               "brute_force_steps", "rl_steps_reference"],
                        title="Section VI-A: brute-force search vs RL")
