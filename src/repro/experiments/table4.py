"""Table IV: attacks across diverse cache and attack/victim configurations.

The paper exercises 17 environment configurations (direct-mapped, fully- and
set-associative caches, prefetchers, flush on/off, shared or disjoint address
ranges, and a two-level hierarchy) and shows the RL agent finds a working
attack in every one, usually of the category the configuration permits.

Each configuration is expressed as an :class:`EnvConfig` builder plus the
expected attack categories.  The driver (a) verifies a feasible textbook
sequence for every configuration — a fast, deterministic check — and (b) runs
RL training on a configurable subset (all 17 at paper scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.classifier import classify_sequence
from repro.attacks.evaluate import evaluate_action_sequence
from repro.attacks.sequences import AttackSequence
from repro.attacks.textbook import textbook_attack_for_config
from repro.cache.config import CacheConfig
from repro.env.config import EnvConfig
from repro.env.guessing_game import CacheGuessingGameEnv
from repro.experiments.common import ExperimentScale, format_table, get_scale, train_agent


@dataclass(frozen=True)
class TableIVConfig:
    """One row of Table IV: the environment plus the expected attack categories."""

    number: int
    description: str
    expected_attacks: str
    build: Callable[[], EnvConfig]


def _env(cache: CacheConfig, victim: tuple, attacker: tuple, flush: bool,
         no_access: bool, hierarchy: bool = False, l2: Optional[CacheConfig] = None,
         window: Optional[int] = None) -> EnvConfig:
    return EnvConfig(cache=cache, attacker_addr_s=attacker[0], attacker_addr_e=attacker[1],
                     victim_addr_s=victim[0], victim_addr_e=victim[1],
                     flush_enable=flush, victim_no_access_enable=no_access,
                     hierarchy=hierarchy, l2_cache=l2,
                     window_size=window, max_steps=window)


def table4_configs() -> List[TableIVConfig]:
    """The 17 configurations of Table IV."""
    configs = [
        TableIVConfig(1, "DM 4-set, victim 0-3, attacker 4-7", "PP",
                      lambda: _env(CacheConfig.direct_mapped(4), (0, 3), (4, 7), False, False, window=20)),
        TableIVConfig(2, "DM 4-set + next-line prefetcher", "PP",
                      lambda: _env(CacheConfig.direct_mapped(4, prefetcher="nextline"),
                                   (0, 3), (4, 7), False, False, window=20)),
        TableIVConfig(3, "DM 4-set, shared 0-3, flush", "FR",
                      lambda: _env(CacheConfig.direct_mapped(4), (0, 3), (0, 3), True, False, window=20)),
        TableIVConfig(4, "DM 4-set, attacker 0-7, no flush", "ER, PP",
                      lambda: _env(CacheConfig.direct_mapped(4), (0, 3), (0, 7), False, False, window=24)),
        TableIVConfig(5, "FA 4-way, victim 0/E, attacker 4-7", "PP, LRU",
                      lambda: _env(CacheConfig.fully_associative(4), (0, 0), (4, 7), False, True, window=14)),
        TableIVConfig(6, "FA 4-way, victim 0/E, shared 0-3, flush", "FR, LRU",
                      lambda: _env(CacheConfig.fully_associative(4), (0, 0), (0, 3), True, True, window=14)),
        TableIVConfig(7, "FA 4-way, victim 0/E, attacker 0-7", "ER, PP, LRU",
                      lambda: _env(CacheConfig.fully_associative(4), (0, 0), (0, 7), False, True, window=16)),
        TableIVConfig(8, "FA 4-way, victim 0-3, shared 0-3, flush", "FR, LRU",
                      lambda: _env(CacheConfig.fully_associative(4), (0, 3), (0, 3), True, False, window=16)),
        TableIVConfig(9, "FA 4-way, victim 0-3, attacker 0-7, flush", "FR, LRU",
                      lambda: _env(CacheConfig.fully_associative(4), (0, 3), (0, 7), True, False, window=20)),
        TableIVConfig(10, "DM 8-set, shared 0-7, flush", "FR",
                      lambda: _env(CacheConfig.direct_mapped(8), (0, 7), (0, 7), True, False, window=36)),
        TableIVConfig(11, "FA 8-way, victim 0/E, shared 0-7, flush", "FR, LRU",
                      lambda: _env(CacheConfig.fully_associative(8), (0, 0), (0, 7), True, True, window=24)),
        TableIVConfig(12, "FA 8-way, victim 0/E, attacker 0-15", "ER, PP, LRU",
                      lambda: _env(CacheConfig.fully_associative(8), (0, 0), (0, 15), False, True, window=28)),
        TableIVConfig(13, "FA 8-way + next-line prefetcher, attacker 0-15", "ER, PP, LRU",
                      lambda: _env(CacheConfig.fully_associative(8, prefetcher="nextline"),
                                   (0, 0), (0, 15), False, True, window=28)),
        TableIVConfig(14, "FA 8-way + stream prefetcher, attacker 0-15", "ER",
                      lambda: _env(CacheConfig.fully_associative(8, prefetcher="stream"),
                                   (0, 0), (0, 15), False, True, window=28)),
        TableIVConfig(15, "SA 2-way 4-set, victim 0-3, attacker 4-11", "PP",
                      lambda: _env(CacheConfig.set_associative(4, 2), (0, 3), (4, 11), False, False, window=28)),
        TableIVConfig(16, "2-level: private DM L1s, shared 2-way 4-set L2", "PP",
                      lambda: _env(CacheConfig.direct_mapped(4), (0, 3), (4, 11), False, False,
                                   hierarchy=True, l2=CacheConfig.set_associative(4, 2), window=28)),
        TableIVConfig(17, "2-level: private DM L1s, shared 2-way 8-set L2", "PP",
                      lambda: _env(CacheConfig.direct_mapped(8), (0, 7), (8, 23), False, False,
                                   hierarchy=True, l2=CacheConfig.set_associative(8, 2), window=48)),
    ]
    return configs


DEFAULT_RL_SUBSET = (1, 3, 5, 6)


def run(scale: ExperimentScale = "bench", rl_configs: Optional[Sequence[int]] = None,
        seed: int = 0) -> List[Dict]:
    """Verify textbook feasibility for all configs; run RL on the selected subset."""
    scale = get_scale(scale)
    if rl_configs is None:
        if scale.name == "paper":
            rl_configs = tuple(config.number for config in table4_configs())
        elif scale.name == "smoke":
            rl_configs = ()
        else:
            rl_configs = DEFAULT_RL_SUBSET
    rl_set = set(rl_configs)

    rows: List[Dict] = []
    for entry in table4_configs():
        env_config = entry.build()
        env = CacheGuessingGameEnv(env_config)
        textbook = textbook_attack_for_config(env_config)
        textbook_accuracy, _ = evaluate_action_sequence(env, textbook.to_indices(env.actions),
                                                        trials=2)
        row = {
            "config": entry.number,
            "description": entry.description,
            "expected_attacks": entry.expected_attacks,
            "textbook_category": textbook.category.value,
            "textbook_accuracy": textbook_accuracy,
            "rl_trained": entry.number in rl_set,
            "rl_accuracy": None,
            "rl_sequence": "",
            "rl_category": "",
        }
        if entry.number in rl_set:
            factory = _make_factory(entry)
            result = train_agent(factory, scale, seed=seed + entry.number)
            row["rl_accuracy"] = result.final_accuracy
            if result.extraction is not None:
                representative = result.extraction.representative
                row["rl_sequence"] = " -> ".join(representative)
                sequence = AttackSequence.from_labels(representative)
                row["rl_category"] = classify_sequence(sequence, env_config).value
        rows.append(row)
    return rows


def _make_factory(entry: TableIVConfig):
    def factory(seed: int) -> CacheGuessingGameEnv:
        config = entry.build()
        config.seed = seed
        return CacheGuessingGameEnv(config)

    return factory


def format_results(rows: List[Dict]) -> str:
    return format_table(rows, ["config", "description", "expected_attacks",
                               "textbook_category", "textbook_accuracy",
                               "rl_trained", "rl_accuracy", "rl_category"],
                        title="Table IV: attacks across cache/attack configurations")
