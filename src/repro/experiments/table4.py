"""Table IV: attacks across diverse cache and attack/victim configurations.

The paper exercises 17 environment configurations (direct-mapped, fully- and
set-associative caches, prefetchers, flush on/off, shared or disjoint address
ranges, and a two-level hierarchy) and shows the RL agent finds a working
attack in every one, usually of the category the configuration permits.

The 17 environment configurations live in the scenario registry as
``table4/cfg01`` .. ``table4/cfg17`` (see :mod:`repro.scenarios.builtin`);
this driver pairs them with the expected attack categories.  It (a) verifies a
feasible textbook sequence for every configuration — a fast, deterministic
check — and (b) runs RL training on a configurable subset (all 17 at paper
scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.classifier import classify_sequence
from repro.attacks.evaluate import evaluate_action_sequence
from repro.attacks.sequences import AttackSequence
from repro.attacks.textbook import textbook_attack_for_config
from repro.env.config import EnvConfig
from repro.experiments.common import ScaleLike, format_table, resolve_scale, train_agent
from repro.scenarios import get_spec, make, make_factory


@dataclass(frozen=True)
class TableIVConfig:
    """One row of Table IV: the scenario plus the expected attack categories."""

    number: int
    description: str
    expected_attacks: str
    scenario: str

    def build(self) -> EnvConfig:
        """The row's :class:`EnvConfig` (resolved through the registry)."""
        return get_spec(self.scenario).build_config()


# Expected attack categories per configuration number (the env configurations
# themselves are registered scenarios).
EXPECTED_ATTACKS = {
    1: "PP", 2: "PP", 3: "FR", 4: "ER, PP", 5: "PP, LRU", 6: "FR, LRU",
    7: "ER, PP, LRU", 8: "FR, LRU", 9: "FR, LRU", 10: "FR", 11: "FR, LRU",
    12: "ER, PP, LRU", 13: "ER, PP, LRU", 14: "ER", 15: "PP", 16: "PP", 17: "PP",
}


def table4_configs() -> List[TableIVConfig]:
    """The 17 configurations of Table IV, resolved from the scenario registry."""
    configs: List[TableIVConfig] = []
    for number, expected in sorted(EXPECTED_ATTACKS.items()):
        scenario_id = f"table4/cfg{number:02d}"
        description = get_spec(scenario_id).description.split(": ", 1)[1]
        configs.append(TableIVConfig(number=number, description=description,
                                     expected_attacks=expected,
                                     scenario=scenario_id))
    return configs


DEFAULT_RL_SUBSET = (1, 3, 5, 6)


def default_rl_configs(scale: ScaleLike) -> tuple:
    """Configuration numbers that get RL training at the given scale."""
    scale = resolve_scale(scale)
    if scale.name == "paper":
        return tuple(config.number for config in table4_configs())
    if scale.name == "smoke":
        return ()
    return DEFAULT_RL_SUBSET


def run_cell(params: Dict, scale: ScaleLike, seed: int = 0, ctx=None) -> Dict:
    """One Table IV row: textbook feasibility (always) plus optional RL training."""
    scale = resolve_scale(scale)
    number = params["config"]
    rl_trained = params.get("rl")
    if rl_trained is None:
        rl_trained = number in default_rl_configs(scale)
    entry = next(e for e in table4_configs() if e.number == number)
    env_config = entry.build()
    env = make(entry.scenario)
    textbook = textbook_attack_for_config(env_config)
    textbook_accuracy, _ = evaluate_action_sequence(env, textbook.to_indices(env.actions),
                                                    trials=2)
    row = {
        "config": entry.number,
        "description": entry.description,
        "expected_attacks": entry.expected_attacks,
        "textbook_category": textbook.category.value,
        "textbook_accuracy": textbook_accuracy,
        "rl_trained": bool(rl_trained),
        "rl_accuracy": None,
        "rl_sequence": "",
        "rl_category": "",
    }
    if rl_trained:
        factory = _make_factory(entry)
        result = train_agent(factory, scale, seed=seed + entry.number, ctx=ctx)
        row["rl_accuracy"] = result.final_accuracy
        if result.extraction is not None:
            representative = result.extraction.representative
            row["rl_sequence"] = " -> ".join(representative)
            sequence = AttackSequence.from_labels(representative)
            row["rl_category"] = classify_sequence(sequence, env_config).value
    return row


def run(scale: ScaleLike = "bench", rl_configs: Optional[Sequence[int]] = None,
        seed: int = 0) -> List[Dict]:
    """Verify textbook feasibility for all configs; run RL on the selected subset."""
    scale = resolve_scale(scale)
    rl_set = set(default_rl_configs(scale) if rl_configs is None else rl_configs)
    return [run_cell({"config": entry.number, "rl": entry.number in rl_set},
                     scale, seed=seed)
            for entry in table4_configs()]


def _make_factory(entry: TableIVConfig):
    return make_factory(entry.scenario)


def format_results(rows: List[Dict]) -> str:
    return format_table(rows, ["config", "description", "expected_attacks",
                               "textbook_category", "textbook_accuracy",
                               "rl_trained", "rl_accuracy", "rl_category"],
                        title="Table IV: attacks across cache/attack configurations")
