"""Shared experiment infrastructure: scales, training helpers, table formatting.

The paper trains on a GPU cluster; this reproduction runs on one CPU, so every
experiment accepts an :class:`ExperimentScale` that shrinks the training
budget (and, for the most expensive studies, the cache size) while preserving
the comparisons the paper makes.  ``PAPER`` approximates the original budgets;
``BENCH`` is what the benchmark harness runs; ``SMOKE`` is for tests.

Scale resolution is normalized in one place: every ``run()`` /
``run_cell()`` entry point accepts a :data:`ScaleLike` — either an
:class:`ExperimentScale` instance or a preset name string — and calls
:func:`resolve_scale` exactly once at the boundary.

The training helpers optionally take a ``ctx`` (a
:class:`repro.runs.CellContext`) that makes them *resumable*: checkpoints are
saved every few updates, an interrupted training resumes from its checkpoint,
and a finished training is memoized to disk (result JSON + history JSONL +
extraction JSON + policy pickle) so a resumed campaign cell never retrains
completed work.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.rl.policy import ActorCriticPolicy
from repro.rl.ppo import PPOConfig
from repro.rl.trainer import PPOTrainer, TrainingResult
from repro.scenarios import ScenarioSpec

# Anything the trainer can turn into environments: a ``factory(seed) -> env``
# callable, a registered scenario id, or a ScenarioSpec.
EnvSource = Union[Callable[[int], object], str, ScenarioSpec]


@dataclass(frozen=True)
class ExperimentScale:
    """Budget knobs for one experiment run."""

    name: str
    max_updates: int
    horizon: int
    num_envs: int
    eval_episodes: int
    runs: int
    hidden_sizes: tuple = (128, 128)
    learning_rate: float = 1e-3
    entropy_coefficient: float = 0.1
    entropy_coefficient_final: float = 0.003
    minibatch_size: int = 512
    update_epochs: int = 6

    def ppo_config(self, **overrides) -> PPOConfig:
        config = PPOConfig(
            learning_rate=self.learning_rate,
            entropy_coefficient=self.entropy_coefficient,
            entropy_coefficient_final=self.entropy_coefficient_final,
            update_epochs=self.update_epochs,
            minibatch_size=self.minibatch_size,
            horizon=self.horizon,
            num_envs=self.num_envs,
        )
        for key, value in overrides.items():
            setattr(config, key, value)
        return config

    def with_overrides(self, **overrides) -> "ExperimentScale":
        return replace(self, **overrides)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict for campaign manifests; round-trips via from_dict."""
        data = asdict(self)
        data["hidden_sizes"] = list(self.hidden_sizes)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentScale":
        data = dict(data)
        data["hidden_sizes"] = tuple(data.get("hidden_sizes", (128, 128)))
        return cls(**data)


SMOKE = ExperimentScale(name="smoke", max_updates=6, horizon=64, num_envs=4,
                        eval_episodes=10, runs=1, hidden_sizes=(32, 32))
BENCH = ExperimentScale(name="bench", max_updates=200, horizon=256, num_envs=8,
                        eval_episodes=40, runs=1)
PAPER = ExperimentScale(name="paper", max_updates=800, horizon=512, num_envs=8,
                        eval_episodes=100, runs=3)

SCALES: Dict[str, ExperimentScale] = {"smoke": SMOKE, "bench": BENCH, "paper": PAPER}

# A scale argument as the experiment entry points accept it: a preset name
# string or a ready ExperimentScale.
ScaleLike = Union[ExperimentScale, str]


def resolve_scale(scale: Optional[ScaleLike]) -> ExperimentScale:
    """Normalize a :data:`ScaleLike` (or None, meaning ``bench``) to a scale."""
    if scale is None:
        return BENCH
    if isinstance(scale, ExperimentScale):
        return scale
    if scale in SCALES:
        return SCALES[scale]
    raise KeyError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")


# Backwards-compatible alias (pre-campaign-API name).
get_scale = resolve_scale


@dataclass
class TrainedPolicyHandle:
    """What a memoized training leaves behind for further evaluation.

    :func:`train_agent_with_trainer` returns either a live
    :class:`~repro.rl.trainer.PPOTrainer` or — when a campaign cell resumes
    past an already-finished training — this handle wrapping the persisted
    policy.  Both expose ``.policy``, which is all the covert-channel
    evaluators need.
    """

    policy: ActorCriticPolicy


def _train(env_source: EnvSource, scale: ExperimentScale, seed: int,
           target_accuracy: float, ppo_overrides: Optional[dict],
           ctx=None, name: str = "train") -> tuple:
    """Train one agent, with optional checkpoint/resume/memoization via ``ctx``.

    Returns ``(result, trainer_or_handle)``.  Without a ctx this is exactly
    the legacy in-memory path.  With a ctx:

    * a finished training is memoized under ``<name>.result.json`` (plus
      history JSONL, extraction JSON, and the policy pickle) and returned
      without retraining;
    * an in-flight training resumes from ``<name>.checkpoint.pkl``;
    * a checkpoint is saved every ``ctx.checkpoint_every`` updates.
    """
    if ctx is not None:
        # Refuse to reuse artifacts produced under different parameters (the
        # campaign runner's manifest guards whole campaigns; this guards
        # standalone CellContext use).
        ctx.ensure_training_meta(name, {
            "scale": scale.to_dict(), "seed": seed,
            "target_accuracy": target_accuracy,
            "ppo_overrides": ppo_overrides or {},
        })
        # load_training verifies checksums: a corrupt/truncated memo (result
        # JSON or policy pickle) is quarantined and we fall through to the
        # checkpoint — the cell transparently re-runs from its last good state.
        memo = ctx.load_training(name)
        if memo is not None:
            return memo, TrainedPolicyHandle(ctx.load_policy(name))
    checkpoint_path = None
    if ctx is not None:
        checkpoint_path = ctx.checkpoint_path(name)
        # None when absent *or* corrupt (then quarantined): restart from scratch.
        trainer = ctx.load_trainer_checkpoint(name)
        if trainer is None:
            trainer = PPOTrainer(env_source, scale.ppo_config(**(ppo_overrides or {})),
                                 hidden_sizes=scale.hidden_sizes, seed=seed)
        trainer.add_update_callback(ctx.checkpoint_callback(checkpoint_path))
    else:
        trainer = PPOTrainer(env_source, scale.ppo_config(**(ppo_overrides or {})),
                             hidden_sizes=scale.hidden_sizes, seed=seed)
    result = trainer.train(max_updates=scale.max_updates, target_accuracy=target_accuracy,
                           eval_every=10, eval_episodes=scale.eval_episodes)
    if ctx is not None:
        ctx.save_training(name, result, trainer.policy)
    return result, trainer


def train_agent(env_source: EnvSource,
                scale: ScaleLike, seed: int = 0,
                target_accuracy: float = 0.95,
                ppo_overrides: Optional[dict] = None,
                ctx=None, name: str = "train") -> TrainingResult:
    """Train one PPO agent with the scale's budget and return its result.

    ``env_source`` is anything :class:`~repro.rl.trainer.PPOTrainer` accepts:
    an env factory, a scenario id, or a :class:`~repro.scenarios.ScenarioSpec`.
    ``ctx`` (a :class:`repro.runs.CellContext`) enables checkpoint/resume and
    memoization when the training runs inside a campaign cell.
    """
    scale = resolve_scale(scale)
    result, _ = _train(env_source, scale, seed, target_accuracy, ppo_overrides,
                       ctx=ctx, name=name)
    return result


def train_agent_with_trainer(env_source: EnvSource,
                             scale: ScaleLike, seed: int = 0,
                             target_accuracy: float = 0.95,
                             ppo_overrides: Optional[dict] = None,
                             ctx=None, name: str = "train") -> tuple:
    """Like :func:`train_agent` but also return the trainer (for further
    evaluation).  Under a resumed campaign cell the second element may be a
    :class:`TrainedPolicyHandle`; both expose ``.policy``."""
    scale = resolve_scale(scale)
    return _train(env_source, scale, seed, target_accuracy, ppo_overrides,
                  ctx=ctx, name=name)


def average_over_runs(values: Sequence[float]) -> float:
    """Mean of per-run statistics (Tables V and VII average over three runs)."""
    cleaned = [value for value in values if value is not None]
    if not cleaned:
        return float("nan")
    return float(np.mean(cleaned))


def format_table(rows: List[Dict], columns: Sequence[str],
                 title: str = "") -> str:
    """Render rows as a fixed-width text table in the paper's column order."""
    header = [str(column) for column in columns]
    rendered_rows = [[_render_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [max(len(header[i]), *(len(r[i]) for r in rendered_rows)) if rendered_rows
              else len(header[i]) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in rendered_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)


def _render_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
