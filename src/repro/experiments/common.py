"""Shared experiment infrastructure: scales, training helpers, table formatting.

The paper trains on a GPU cluster; this reproduction runs on one CPU, so every
experiment accepts an :class:`ExperimentScale` that shrinks the training
budget (and, for the most expensive studies, the cache size) while preserving
the comparisons the paper makes.  ``PAPER`` approximates the original budgets;
``BENCH`` is what the benchmark harness runs; ``SMOKE`` is for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.rl.ppo import PPOConfig
from repro.rl.trainer import PPOTrainer, TrainingResult
from repro.scenarios import ScenarioSpec

# Anything the trainer can turn into environments: a ``factory(seed) -> env``
# callable, a registered scenario id, or a ScenarioSpec.
EnvSource = Union[Callable[[int], object], str, ScenarioSpec]


@dataclass(frozen=True)
class ExperimentScale:
    """Budget knobs for one experiment run."""

    name: str
    max_updates: int
    horizon: int
    num_envs: int
    eval_episodes: int
    runs: int
    hidden_sizes: tuple = (128, 128)
    learning_rate: float = 1e-3
    entropy_coefficient: float = 0.1
    entropy_coefficient_final: float = 0.003
    minibatch_size: int = 512
    update_epochs: int = 6

    def ppo_config(self, **overrides) -> PPOConfig:
        config = PPOConfig(
            learning_rate=self.learning_rate,
            entropy_coefficient=self.entropy_coefficient,
            entropy_coefficient_final=self.entropy_coefficient_final,
            update_epochs=self.update_epochs,
            minibatch_size=self.minibatch_size,
            horizon=self.horizon,
            num_envs=self.num_envs,
        )
        for key, value in overrides.items():
            setattr(config, key, value)
        return config

    def with_overrides(self, **overrides) -> "ExperimentScale":
        return replace(self, **overrides)


SMOKE = ExperimentScale(name="smoke", max_updates=6, horizon=64, num_envs=4,
                        eval_episodes=10, runs=1, hidden_sizes=(32, 32))
BENCH = ExperimentScale(name="bench", max_updates=200, horizon=256, num_envs=8,
                        eval_episodes=40, runs=1)
PAPER = ExperimentScale(name="paper", max_updates=800, horizon=512, num_envs=8,
                        eval_episodes=100, runs=3)

SCALES: Dict[str, ExperimentScale] = {"smoke": SMOKE, "bench": BENCH, "paper": PAPER}


def get_scale(name_or_scale) -> ExperimentScale:
    """Accept either an :class:`ExperimentScale` or a preset name."""
    if isinstance(name_or_scale, ExperimentScale):
        return name_or_scale
    if name_or_scale in SCALES:
        return SCALES[name_or_scale]
    raise KeyError(f"unknown scale {name_or_scale!r}; choose from {sorted(SCALES)}")


def train_agent(env_source: EnvSource,
                scale: ExperimentScale, seed: int = 0,
                target_accuracy: float = 0.95,
                ppo_overrides: Optional[dict] = None) -> TrainingResult:
    """Train one PPO agent with the scale's budget and return its result.

    ``env_source`` is anything :class:`~repro.rl.trainer.PPOTrainer` accepts:
    an env factory, a scenario id, or a :class:`~repro.scenarios.ScenarioSpec`.
    """
    trainer = PPOTrainer(env_source, scale.ppo_config(**(ppo_overrides or {})),
                         hidden_sizes=scale.hidden_sizes, seed=seed)
    return trainer.train(max_updates=scale.max_updates, target_accuracy=target_accuracy,
                         eval_every=10, eval_episodes=scale.eval_episodes)


def train_agent_with_trainer(env_source: EnvSource,
                             scale: ExperimentScale, seed: int = 0,
                             target_accuracy: float = 0.95,
                             ppo_overrides: Optional[dict] = None) -> tuple:
    """Like :func:`train_agent` but also return the trainer (for further evaluation)."""
    trainer = PPOTrainer(env_source, scale.ppo_config(**(ppo_overrides or {})),
                         hidden_sizes=scale.hidden_sizes, seed=seed)
    result = trainer.train(max_updates=scale.max_updates, target_accuracy=target_accuracy,
                           eval_every=10, eval_episodes=scale.eval_episodes)
    return result, trainer


def average_over_runs(values: Sequence[float]) -> float:
    """Mean of per-run statistics (Tables V and VII average over three runs)."""
    cleaned = [value for value in values if value is not None]
    if not cleaned:
        return float("nan")
    return float(np.mean(cleaned))


def format_table(rows: List[Dict], columns: Sequence[str],
                 title: str = "") -> str:
    """Render rows as a fixed-width text table in the paper's column order."""
    header = [str(column) for column in columns]
    rendered_rows = [[_render_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [max(len(header[i]), *(len(r[i]) for r in rendered_rows)) if rendered_rows
              else len(header[i]) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in rendered_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)


def _render_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
