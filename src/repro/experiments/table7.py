"""Table VII: attacking the partition-locked (PL) cache.

The victim's line (address 0) is pre-installed and locked, so the attacker can
never evict it and the victim's accesses never evict attacker lines — the
setting a prior formal analysis deemed secure.  AutoCAT still finds an attack
through the replacement state; it just takes longer to converge and produces a
slightly longer sequence than the unprotected baseline.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import (
    ScaleLike,
    average_over_runs,
    format_table,
    resolve_scale,
    train_agent,
)
from repro.scenarios import make_factory


def make_env_factory(pl_cache: bool, num_ways: int = 4, rep_policy: str = "plru"):
    """Environment factory: PLRU cache, victim line 0 locked when ``pl_cache``.

    Thin shim over the scenario registry: the Table VII baseline scenario
    hardened through the generic defense registry (``defense="plcache"``
    pre-installs and locks the victim range), with associativity/policy
    overrides.
    """
    overrides = {}
    if pl_cache:
        overrides["defense"] = "plcache"
    if rep_policy != "plru":
        overrides["cache.rep_policy"] = rep_policy
    if num_ways != 4:
        overrides.update({"cache.num_ways": num_ways,
                          "attacker_addr_e": num_ways + 1,
                          "window_size": 3 * num_ways, "max_steps": 3 * num_ways})
    return make_factory("guessing/plcache-baseline-4way", **overrides)


def run_cell(params: Dict, scale: ScaleLike, seed: int = 0, ctx=None) -> Dict:
    """One Table VII row: PL-locked or baseline cache, ``scale.runs`` agents."""
    scale = resolve_scale(scale)
    pl_cache = params["pl_cache"]
    num_ways = params.get("num_ways", 4)
    if scale.name == "smoke":
        num_ways = 2
    epochs: List[float] = []
    lengths: List[float] = []
    accuracies: List[float] = []
    example = ""
    for run_index in range(scale.runs):
        result = train_agent(make_env_factory(pl_cache, num_ways=num_ways),
                             scale, seed=seed + 31 * run_index,
                             ctx=ctx, name=f"run{run_index}")
        epochs.append(result.epochs_to_converge if result.converged
                      else result.epochs_trained)
        lengths.append(result.final_episode_length)
        accuracies.append(result.final_accuracy)
        if result.extraction is not None and not example:
            example = result.extraction.render()
    return {
        "cache": params["cache"],
        "epochs_to_converge": average_over_runs(epochs),
        "final_episode_length": average_over_runs(lengths),
        "accuracy": average_over_runs(accuracies),
        "example_sequence": example,
    }


def run(scale: ScaleLike = "bench", num_ways: int = 4, seed: int = 0) -> List[Dict]:
    """Train agents against the PL cache and the unprotected baseline."""
    scale = resolve_scale(scale)
    return [run_cell({"cache": label, "pl_cache": pl_cache, "num_ways": num_ways},
                     scale, seed=seed)
            for label, pl_cache in (("PL Cache", True), ("Baseline", False))]


def format_results(rows: List[Dict]) -> str:
    return format_table(rows, ["cache", "epochs_to_converge", "final_episode_length", "accuracy"],
                        title="Table VII: PLRU cache with and without PL-cache locking")
