"""Table VIII and Figure 3: bypassing CC-Hunter's autocorrelation detection.

Three agents transmit secrets over a direct-mapped cache in fixed-length
multi-guess episodes:

* the *textbook* prime+probe attacker (scripted full-loop attack);
* an *RL baseline* agent trained only for bit rate and accuracy;
* an *RL autocor* agent whose reward is penalized by the L2 norm of the
  conflict-train autocorrelogram.

The paper's findings: the RL agents achieve a higher bit rate than the
textbook attack, and the autocorrelation-penalized agent drives its maximum
autocorrelation far below the detection threshold at a small bit-rate cost.
Figure 3 shows the conflict-event trains and autocorrelograms.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.analysis.autocorrelogram import event_train_autocorrelogram
from repro.attacks.scripted import TextbookPrimeProbeAttacker, run_scripted_attacker
from repro.detection.autocorrelation import AutocorrelationDetector
from repro.env.config import EnvConfig
from repro.experiments.common import (
    ScaleLike,
    format_table,
    resolve_scale,
    train_agent_with_trainer,
)
from repro.rl.policy import ActorCriticPolicy
from repro.scenarios import get_spec, make_factory


def covert_scenario_overrides(num_sets: int, episode_length: int) -> dict:
    """Overrides sizing the ``covert/prime-probe`` scenario family."""
    return {
        "cache.num_sets": num_sets,
        "attacker_addr_s": num_sets, "attacker_addr_e": 2 * num_sets - 1,
        "victim_addr_s": 0, "victim_addr_e": num_sets - 1,
        "window_size": 4 * num_sets, "max_steps": episode_length,
        "episode_length": episode_length,
    }


def covert_env_config(num_sets: int = 4, episode_length: int = 160, seed: int = 0) -> EnvConfig:
    """Direct-mapped cache with disjoint victim/attacker ranges (prime+probe setting)."""
    spec = get_spec("covert/prime-probe").with_overrides(
        **covert_scenario_overrides(num_sets, episode_length))
    return spec.build_config(seed=seed)


def make_covert_env_factory(num_sets: int, episode_length: int,
                            autocorrelation_penalty: Optional[float] = None):
    """Factory for the multi-guess covert env, optionally with the CC-Hunter penalty.

    Thin shim over the scenario registry: ``covert/prime-probe`` (or its
    ``-cchunter`` wrapper variant) with size overrides applied.
    """
    overrides = covert_scenario_overrides(num_sets, episode_length)
    if autocorrelation_penalty is None:
        return make_factory("covert/prime-probe", **overrides)
    overrides["wrappers"] = ({"type": "autocorrelation_penalty",
                              "penalty_scale": autocorrelation_penalty},)
    return make_factory("covert/prime-probe-cchunter", **overrides)


def evaluate_covert_policy(env_factory, policy: ActorCriticPolicy, episodes: int = 5,
                           detector: Optional[AutocorrelationDetector] = None,
                           seed: int = 0) -> Dict:
    """Run a trained policy for whole episodes; aggregate channel + detection stats."""
    detector = detector or AutocorrelationDetector()
    rng = np.random.default_rng(seed)
    bit_rates: List[float] = []
    accuracies: List[float] = []
    autocorrelations: List[float] = []
    traces = []
    trains = []
    for episode in range(episodes):
        env = env_factory(seed + 1000 + episode)
        observation = env.reset()
        done = False
        while not done:
            output = policy.act(observation, rng=rng, deterministic=False)
            observation, _reward, done, _info = env.step(int(output.actions[0]))
        statistics = env.episode_statistics()
        bit_rates.append(statistics["bit_rate"])
        accuracies.append(statistics["guess_accuracy"])
        events = env.backend.events
        train = events.conflict_train() if events is not None else []
        trains.append(train)
        autocorrelations.append(detector.max_autocorrelation(train))
        traces.append([(entry.actor, entry.address) for entry in env.trace
                       if entry.kind == "access" and entry.address is not None])
    return {
        "bit_rate": float(np.mean(bit_rates)),
        "guess_accuracy": float(np.mean(accuracies)),
        "max_autocorrelation": float(np.mean(autocorrelations)),
        "traces": traces,
        "trains": trains,
    }


def covert_sizes(scale: ScaleLike) -> tuple:
    """(num_sets, episode_length) used by the covert-channel studies at a scale."""
    scale = resolve_scale(scale)
    if scale.name == "paper":
        return 4, 160
    if scale.name == "smoke":
        return 2, 24
    return 2, 64


def run_cell(params: Dict, scale: ScaleLike, seed: int = 0, ctx=None) -> Dict:
    """One Table VIII row: textbook, RL baseline, or RL autocor."""
    scale = resolve_scale(scale)
    attack = params["attack"]
    eval_episodes = params.get("eval_episodes", 5)
    num_sets, episode_length = covert_sizes(scale)
    detector = AutocorrelationDetector()

    if attack == "textbook":
        textbook_env = make_covert_env_factory(num_sets, episode_length)(seed)
        stats = run_scripted_attacker(textbook_env, TextbookPrimeProbeAttacker(textbook_env),
                                      episodes=eval_episodes,
                                      autocorrelation_detector=detector)
        trains = []
    elif attack == "RL baseline":
        baseline_factory = make_covert_env_factory(num_sets, episode_length)
        _result, trained = train_agent_with_trainer(baseline_factory, scale, seed=seed,
                                                    target_accuracy=0.97, ctx=ctx)
        stats = evaluate_covert_policy(baseline_factory, trained.policy,
                                       episodes=eval_episodes, detector=detector,
                                       seed=seed)
        trains = stats["trains"]
    elif attack == "RL autocor":
        autocor_factory = make_covert_env_factory(num_sets, episode_length,
                                                  autocorrelation_penalty=-2.0)
        _result, trained = train_agent_with_trainer(autocor_factory, scale, seed=seed + 1,
                                                    target_accuracy=0.97, ctx=ctx)
        plain_factory = make_covert_env_factory(num_sets, episode_length)
        stats = evaluate_covert_policy(plain_factory, trained.policy,
                                       episodes=eval_episodes, detector=detector,
                                       seed=seed + 1)
        trains = stats["trains"]
    else:
        raise KeyError(f"unknown Table VIII attack {attack!r}")
    return {"attack": attack, "bit_rate": stats["bit_rate"],
            "guess_accuracy": stats["guess_accuracy"],
            "max_autocorrelation": stats["max_autocorrelation"],
            "trains": trains}


def run(scale: ScaleLike = "bench", seed: int = 0,
        eval_episodes: int = 5) -> List[Dict]:
    """Produce the three Table VIII rows (textbook, RL baseline, RL autocor)."""
    scale = resolve_scale(scale)
    return [run_cell({"attack": attack, "eval_episodes": eval_episodes}, scale, seed=seed)
            for attack in ("textbook", "RL baseline", "RL autocor")]


def figure3_data(rows: List[Dict], max_lag: int = 30) -> Dict[str, Dict]:
    """Event trains and autocorrelograms for one episode of each agent (Figure 3)."""
    figure: Dict[str, Dict] = {}
    for row in rows:
        trains = row.get("trains") or [[]]
        figure[row["attack"]] = event_train_autocorrelogram(trains[0], max_lag=max_lag)
    return figure


def format_results(rows: List[Dict]) -> str:
    return format_table(rows, ["attack", "bit_rate", "guess_accuracy", "max_autocorrelation"],
                        title="Table VIII: bit rate, accuracy, and autocorrelation")
