"""Table I / Section II: the known cache-timing attack catalogue.

For each known attack category we build a matching environment configuration,
generate the textbook attack sequence, and verify on the simulator that its
observations fully distinguish the possible secrets (accuracy 1.0 on a
deterministic cache).
"""

from __future__ import annotations

from typing import Dict, List

from repro.attacks.evaluate import evaluate_action_sequence
from repro.attacks.lru_attacks import lru_address_based_sequence
from repro.attacks.textbook import (
    evict_reload_sequence,
    flush_reload_sequence,
    prime_probe_sequence,
)
from repro.cache.config import CacheConfig
from repro.env.config import EnvConfig
from repro.env.guessing_game import CacheGuessingGameEnv
from repro.experiments.common import format_table


def _case_prime_probe() -> tuple:
    config = EnvConfig(cache=CacheConfig.direct_mapped(4), attacker_addr_s=4, attacker_addr_e=7,
                       victim_addr_s=0, victim_addr_e=3, victim_no_access_enable=False,
                       window_size=24, warmup_accesses=0)
    return "prime+probe", config, prime_probe_sequence(config)


def _case_flush_reload() -> tuple:
    config = EnvConfig(cache=CacheConfig.direct_mapped(4), attacker_addr_s=0, attacker_addr_e=3,
                       victim_addr_s=0, victim_addr_e=3, victim_no_access_enable=False,
                       flush_enable=True, window_size=24, warmup_accesses=0)
    return "flush+reload", config, flush_reload_sequence(config)


def _case_evict_reload() -> tuple:
    config = EnvConfig(cache=CacheConfig.direct_mapped(4), attacker_addr_s=0, attacker_addr_e=7,
                       victim_addr_s=0, victim_addr_e=3, victim_no_access_enable=False,
                       window_size=32, warmup_accesses=0)
    return "evict+reload", config, evict_reload_sequence(config)


def _case_lru_state() -> tuple:
    config = EnvConfig(cache=CacheConfig.fully_associative(4), attacker_addr_s=0, attacker_addr_e=4,
                       victim_addr_s=0, victim_addr_e=0, victim_no_access_enable=True,
                       window_size=16, warmup_accesses=0)
    return "lru state (addr-based)", config, lru_address_based_sequence(config)


def run(scale=None) -> List[Dict]:
    """Evaluate every known attack category on its matching configuration."""
    rows: List[Dict] = []
    for name, config, sequence in (_case_prime_probe(), _case_flush_reload(),
                                   _case_evict_reload(), _case_lru_state()):
        env = CacheGuessingGameEnv(config)
        indices = sequence.to_indices(env.actions)
        accuracy, _steps = evaluate_action_sequence(env, indices, trials=2)
        rows.append({
            "attack_category": name,
            "attacker_actions": "flush addrs" if sequence.uses_flush else "access addrs",
            "victim_actions": "access an addr",
            "observation": "attacker latency",
            "sequence": sequence.render(),
            "accuracy": accuracy,
        })
    return rows


def format_results(rows: List[Dict]) -> str:
    return format_table(rows, ["attack_category", "attacker_actions", "victim_actions",
                               "observation", "accuracy"],
                        title="Table I: known cache timing attacks (verified on the simulator)")
