"""Table I / Section II: the known cache-timing attack catalogue.

Each known attack category has a matching registered scenario (``known/*``);
we generate the textbook attack sequence for its configuration and verify on
the simulator that its observations fully distinguish the possible secrets
(accuracy 1.0 on a deterministic cache).
"""

from __future__ import annotations

from typing import Dict, List

from repro.attacks.evaluate import evaluate_action_sequence
from repro.attacks.lru_attacks import lru_address_based_sequence
from repro.attacks.textbook import (
    evict_reload_sequence,
    flush_reload_sequence,
    prime_probe_sequence,
)
from repro.experiments.common import ScaleLike, format_table
from repro.scenarios import get_spec, make

# (row name, registered scenario, textbook sequence generator)
KNOWN_ATTACK_CASES = (
    ("prime+probe", "known/prime-probe", prime_probe_sequence),
    ("flush+reload", "known/flush-reload", flush_reload_sequence),
    ("evict+reload", "known/evict-reload", evict_reload_sequence),
    ("lru state (addr-based)", "known/lru-state", lru_address_based_sequence),
)


def run_cell(params: Dict, scale: ScaleLike = None, seed: int = 0, ctx=None) -> Dict:
    """One Table I row: verify one known attack category on its scenario."""
    by_name = {name: (scenario_id, builder)
               for name, scenario_id, builder in KNOWN_ATTACK_CASES}
    name = params["attack_category"]
    scenario_id, sequence_builder = by_name[name]
    env = make(scenario_id)
    sequence = sequence_builder(get_spec(scenario_id).build_config())
    indices = sequence.to_indices(env.actions)
    accuracy, _steps = evaluate_action_sequence(env, indices, trials=2)
    return {
        "attack_category": name,
        "attacker_actions": "flush addrs" if sequence.uses_flush else "access addrs",
        "victim_actions": "access an addr",
        "observation": "attacker latency",
        "sequence": sequence.render(),
        "accuracy": accuracy,
    }


def run(scale=None) -> List[Dict]:
    """Evaluate every known attack category on its matching scenario."""
    return [run_cell({"attack_category": name}, scale)
            for name, _scenario, _builder in KNOWN_ATTACK_CASES]


def format_results(rows: List[Dict]) -> str:
    return format_table(rows, ["attack_category", "attacker_actions", "victim_actions",
                               "observation", "accuracy"],
                        title="Table I: known cache timing attacks (verified on the simulator)")
