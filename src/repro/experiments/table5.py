"""Table V: RL training statistics across deterministic replacement policies.

A 4-way cache set with LRU, PLRU, and RRIP replacement; the attacker's address
range (0-4) is large enough to fill the set, and the victim either accesses
address 0 or makes no access.  The paper reports epochs-to-converge (one epoch
is 3000 training steps) and final episode length, averaged over three runs,
with RRIP requiring noticeably more training and a longer attack than
LRU/PLRU.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Sequence

from repro.experiments.common import (
    ScaleLike,
    average_over_runs,
    format_table,
    resolve_scale,
    train_agent,
)
from repro.scenarios import make_factory

POLICIES = ("lru", "plru", "rrip")


def _offset_factory(factory, seed_offset: int, seed: int):
    return factory(seed + seed_offset)


def make_env_factory(policy: str, num_ways: int = 4, seed_offset: int = 0):
    """Environment factory for one replacement policy (Table V setting).

    Thin shim over the scenario registry: resolves ``guessing/<policy>-4way``
    and applies associativity overrides when ``num_ways != 4``.
    """
    overrides = {"window_size": 3 * num_ways, "max_steps": 3 * num_ways}
    if num_ways != 4:
        overrides.update({"cache.num_ways": num_ways, "attacker_addr_e": num_ways})
    factory = make_factory(f"guessing/{policy}-4way", **overrides)
    if seed_offset:
        return functools.partial(_offset_factory, factory, seed_offset)
    return factory


def run_cell(params: Dict, scale: ScaleLike, seed: int = 0, ctx=None) -> Dict:
    """One Table V row: train ``scale.runs`` agents against one policy."""
    scale = resolve_scale(scale)
    policy = params["policy"]
    num_ways = params.get("num_ways", 4)
    if scale.name == "smoke":
        num_ways = 2
    epochs: List[float] = []
    lengths: List[float] = []
    accuracies: List[float] = []
    example_sequence = ""
    for run_index in range(scale.runs):
        result = train_agent(make_env_factory(policy, num_ways=num_ways),
                             scale, seed=seed + 17 * run_index,
                             ctx=ctx, name=f"run{run_index}")
        epochs.append(result.epochs_to_converge if result.converged
                      else result.epochs_trained)
        lengths.append(result.final_episode_length)
        accuracies.append(result.final_accuracy)
        if result.extraction is not None and not example_sequence:
            example_sequence = result.extraction.render()
    return {
        "replacement_policy": policy,
        "epochs_to_converge": average_over_runs(epochs),
        "episode_length": average_over_runs(lengths),
        "accuracy": average_over_runs(accuracies),
        "converged_runs": sum(1 for a in accuracies if a >= 0.95),
        "runs": scale.runs,
        "example_sequence": example_sequence,
    }


def run(scale: ScaleLike = "bench", policies: Sequence[str] = POLICIES,
        num_ways: int = 4, seed: int = 0) -> List[Dict]:
    """Train one agent per policy (times ``scale.runs``) and aggregate statistics."""
    scale = resolve_scale(scale)
    return [run_cell({"policy": policy, "num_ways": num_ways}, scale, seed=seed)
            for policy in policies]


def format_results(rows: List[Dict]) -> str:
    return format_table(rows, ["replacement_policy", "epochs_to_converge", "episode_length",
                               "accuracy", "converged_runs", "runs"],
                        title="Table V: RL training statistics per replacement policy")
