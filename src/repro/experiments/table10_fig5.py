"""Table X and Figure 5: covert-channel bit rates on (simulated) real machines.

Table X reports, for four Intel machines, the bit rate of the LRU
address-based channel and of StealthyStreamline at error rates below 5%, plus
the relative improvement (up to 24% on 8-way L1Ds and up to 71% on the 12-way
RocketLake L1Ds).  Figure 5 plots bit rate versus error rate for both channels
on each machine.  Real hardware is replaced by the per-machine timing model in
:mod:`repro.hardware.timing`; the structural driver of the result — the
fraction of accesses that must be timed per transmitted symbol — is preserved.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import format_table
from repro.hardware.machines import TABLE10_MACHINES, get_table10_machine
from repro.hardware.timing import CovertChannelTimingModel, TimingParameters

ERROR_TARGET = 0.05


def run_cell(params: Dict, scale=None, seed: int = 0, ctx=None) -> Dict:
    """One Table X row: both covert channels on one machine's timing model."""
    machine = get_table10_machine(params["machine"])
    message_bits = params.get("message_bits", 2048)
    model = CovertChannelTimingModel(machine, seed=seed)
    lru = TimingParameters.lru_address_based(machine.num_ways)
    stealthy = TimingParameters.stealthy_streamline(machine.num_ways)
    lru_run = model.simulate_transmission(lru, message_bits=message_bits)
    stealthy_run = model.simulate_transmission(stealthy, message_bits=message_bits)
    improvement = (stealthy_run["bit_rate_mbps"] - lru_run["bit_rate_mbps"]) / lru_run["bit_rate_mbps"]
    return {
        "cpu": machine.name,
        "microarchitecture": machine.microarchitecture,
        "l1d_config": f"{machine.l1d_size_kb}KB({machine.num_ways}way)",
        "os": machine.operating_system,
        "lru_bit_rate_mbps": lru_run["bit_rate_mbps"],
        "ss_bit_rate_mbps": stealthy_run["bit_rate_mbps"],
        "improvement": improvement,
        "lru_error_rate": lru_run["error_rate"],
        "ss_error_rate": stealthy_run["error_rate"],
        "meets_error_target": (lru_run["error_rate"] < ERROR_TARGET
                               and stealthy_run["error_rate"] < ERROR_TARGET),
    }


def run(scale=None, message_bits: int = 2048, seed: int = 0) -> List[Dict]:
    """Table X rows: per machine, the two channels' bit rates at <5% error."""
    return [run_cell({"machine": machine.name, "message_bits": message_bits},
                     scale, seed=seed)
            for machine in TABLE10_MACHINES]


def figure5_curves(message_bits: int = 2048, seed: int = 0, trials: int = 5) -> Dict[str, Dict]:
    """Figure 5: bit-rate vs error-rate curves for both channels on every machine."""
    curves: Dict[str, Dict] = {}
    for machine in TABLE10_MACHINES:
        model = CovertChannelTimingModel(machine, seed=seed)
        lru = TimingParameters.lru_address_based(machine.num_ways)
        stealthy = TimingParameters.stealthy_streamline(machine.num_ways)
        curves[machine.name] = {
            "lru_address_based": model.bit_rate_error_curve(lru, message_bits=message_bits,
                                                            trials=trials),
            "stealthy_streamline": model.bit_rate_error_curve(stealthy, message_bits=message_bits,
                                                              trials=trials),
        }
    return curves


def format_results(rows: List[Dict]) -> str:
    return format_table(rows, ["cpu", "microarchitecture", "l1d_config", "os",
                               "lru_bit_rate_mbps", "ss_bit_rate_mbps", "improvement"],
                        title="Table X: covert channels on (simulated) real machines")
