"""Attacker-vs-defense evaluation matrix (``repro.run("defense_matrix")``).

Evaluates every {base scenario} x {defense} cell along two axes:

* **probe accuracy** — the best guess accuracy achievable from the
  observation signature of a scripted replacement-state probe (prime
  capacity-1 lines, trigger, evict with a fresh line, re-probe; warm-up
  disabled so the probe measures the channel, not episode noise), the same
  :func:`~repro.attacks.evaluate.evaluate_action_sequence` criterion the
  Table I/IV verifications use.  This is the "does a known attack still
  work?" column: the PLRU PL cache stays fully attackable through its
  replacement state (1.0 — the paper's Table VII finding) while an *LRU* PL
  cache is secure (victim hits on a locked line preserve the relative order
  of the attacker's ways), a fully way-partitioned cache sits exactly at
  chance, and keyed remapping protects the multi-set partial-footprint row
  while doing nothing for a fully-associative set (nothing to remap);
* **RL attacker accuracy / leaked bits** — a PPO attacker trained against
  the defended cell at the campaign's budget, reporting final guess accuracy
  and a Fano-bound bits-per-episode estimate.  Undefended baselines converge
  at the bench budget; rediscovering the PL-cache attack needs paper-scale
  compute (the paper trained for hours on a GPU cluster), so at smoke/bench
  scale the probe column carries the defense comparison and the RL column
  shows the attacker's progress at the configured budget.

PPO needs the bench training geometry (horizon 256, 8 envs, 128-wide net) to
rediscover attacks at all, so ``smoke`` keeps that geometry and only trims
the update budget.  Cells whose defense has an SoA kernel (keyed-remap,
way-partition on lru/mru) train on the batched engine automatically.
"""

from __future__ import annotations

import zlib
from typing import Dict, List

from repro.analysis.defenses import guess_channel_bits, pivot_matrix
from repro.attacks.evaluate import evaluate_action_sequence
from repro.experiments.common import (
    ExperimentScale,
    ScaleLike,
    format_table,
    resolve_scale,
    train_agent,
)
from repro.scenarios import make_factory

#: The default matrix: disjoint-range base scenarios x defense columns
#: ("none" is the undefended baseline).
SCENARIOS = ("guessing/lru-4way-disjoint", "guessing/plcache-baseline-4way",
             "guessing/sa-4set-2way")
DEFENSES = ("none", "plcache", "keyed-remap", "way-partition", "random-fill")

COLUMNS = ("scenario", "defense", "probe_accuracy", "accuracy",
           "bits_per_episode", "episode_length", "epochs_to_converge",
           "converged")

#: Training-update budgets per scale name (None = keep the scale's own).
_UPDATE_BUDGETS = {"smoke": 160}

#: Probe evaluation trials per secret (the probe is deterministic up to the
#: episode warm-up, so a few dozen trials pin the signature -> secret map).
PROBE_TRIALS = 60


def matrix_cells() -> List[Dict]:
    """The default cell grid (also registered statically in repro.runs)."""
    return [{"scenario": scenario, "defense": defense}
            for scenario in SCENARIOS for defense in DEFENSES]


def replacement_probe_sequence(env) -> List[int]:
    """The scripted probe: prime capacity-1 lines, trigger, evict, re-probe.

    Covers eviction-based channels (prime+probe / evict+reload) and
    replacement-state channels (the PL-cache leak): the post-trigger eviction
    lands on a victim-dependent way, which the re-probe observes.
    """
    from repro.env.actions import ActionKind

    access = [index for index, action in enumerate(env.actions)
              if action.kind is ActionKind.ACCESS]
    capacity = env.config.cache.num_blocks
    prime = access[:max(1, min(len(access) - 1, capacity - 1))]
    evict = access[len(prime):len(prime) + 1] or prime[:1]
    return prime + [env.actions.trigger_index] + evict + prime


def _cell_scale(scale: ExperimentScale) -> ExperimentScale:
    """The training scale for one cell (bench geometry, per-scale budget)."""
    overrides = {"eval_episodes": max(scale.eval_episodes, 50)}
    if scale.name == "smoke":
        # PPO cannot rediscover attacks with the 4-env/64-step smoke
        # geometry; keep bench geometry and trim only the budget.
        overrides.update(horizon=256, num_envs=8, hidden_sizes=(128, 128),
                         minibatch_size=512)
    budget = _UPDATE_BUDGETS.get(scale.name)
    if budget is not None:
        overrides["max_updates"] = budget
    return scale.with_overrides(**overrides)


def _cell_seed(seed: int, scenario: str, defense: str) -> int:
    """Deterministic per-cell seed derived from the campaign seed."""
    return seed + zlib.crc32(f"{scenario}|{defense}".encode()) % 9973


def run_cell(params: Dict, scale: ScaleLike, seed: int = 0, ctx=None) -> Dict:
    """One matrix cell: scripted probe + PPO attacker against one defended env."""
    scale = resolve_scale(scale)
    scenario = params["scenario"]
    defense = params.get("defense") or "none"
    overrides = {} if defense == "none" else {"defense": defense}
    factory = make_factory(scenario, **overrides)
    num_secrets = factory.spec.build_config().num_secrets

    # The probe measures the channel itself, so it runs without the random
    # episode warm-up (whose noise would otherwise smear the signatures).
    probe_env = make_factory(scenario, warmup_accesses=0, **overrides)(seed)
    probe_accuracy, _ = evaluate_action_sequence(
        probe_env, replacement_probe_sequence(probe_env), trials=PROBE_TRIALS)

    result = train_agent(factory, _cell_scale(scale),
                         seed=_cell_seed(seed, scenario, defense), ctx=ctx)
    example = ""
    if result.extraction is not None:
        example = " -> ".join(result.extraction.representative)
    return {
        "scenario": scenario,
        "defense": defense,
        "probe_accuracy": probe_accuracy,
        "accuracy": result.final_accuracy,
        "bits_per_episode": guess_channel_bits(result.final_accuracy, num_secrets),
        "episode_length": result.final_episode_length,
        "epochs_to_converge": (result.epochs_to_converge if result.converged
                               else None),
        "converged": result.converged,
        "example_sequence": example,
    }


def run(scale: ScaleLike = "bench", seed: int = 0) -> List[Dict]:
    """Run the full matrix in-process (campaigns prefer ``repro.run``)."""
    scale = resolve_scale(scale)
    return [run_cell(params, scale, seed=seed) for params in matrix_cells()]


def format_results(rows: List[Dict]) -> str:
    parts = ["Defense matrix: scripted-probe accuracy per scenario x defense",
             pivot_matrix(rows, "probe_accuracy"),
             "",
             "RL attacker guess accuracy (at the campaign's training budget)",
             pivot_matrix(rows, "accuracy"),
             "",
             "Leaked bits per episode (Fano bound from RL guess accuracy)",
             pivot_matrix(rows, "bits_per_episode"),
             "",
             format_table(rows, list(COLUMNS),
                          title="Per-cell detail")]
    return "\n".join(parts)
