"""Figure 4: the StealthyStreamline attack and µarch-statistics detection.

The figure's message has three parts, all reproduced on the simulator:

1. attacks that evict the victim's line (Streamline-style / flush-based) make
   the victim miss, so a performance-counter detector sees them;
2. the LRU-state attacks and StealthyStreamline never make the victim miss;
3. StealthyStreamline transmits more bits per access than the LRU
   address-based attack while staying stealthy.
"""

from __future__ import annotations

from typing import Dict, List

from repro.attacks.lru_attacks import LRUAddressBasedChannel
from repro.attacks.stealthy_streamline import StealthyStreamlineChannel
from repro.attacks.streamline import StreamlineChannel
from repro.experiments.common import format_table

CHANNEL_BUILDERS = {
    "lru_address_based": LRUAddressBasedChannel,
    "streamline": StreamlineChannel,
    "stealthy_streamline": StealthyStreamlineChannel,
}


def run_cell(params: Dict, scale=None, seed: int = 0, ctx=None) -> Dict:
    """One Figure 4 row: transmit a message through one covert channel."""
    builder = CHANNEL_BUILDERS[params["channel"]]
    channel = builder(num_ways=params.get("num_ways", 8), seed=seed)
    message = channel.random_message(params.get("message_bits", 512))
    result = channel.transmit(message)
    return {
        "channel": channel.name,
        "bits_per_symbol": channel.bits_per_symbol,
        "bits_per_access": result.bits_per_access,
        "measured_fraction": result.measured_fraction,
        "error_rate": result.error_rate,
        "victim_misses": result.sender_misses,
        "stealthy": result.stealthy,
        "bypasses_miss_detection": result.stealthy,
    }


def run(scale=None, num_ways: int = 8, message_bits: int = 512, seed: int = 0) -> List[Dict]:
    """Transmit the same message through each channel; compare rate and stealth."""
    return [run_cell({"channel": name, "num_ways": num_ways, "message_bits": message_bits},
                     scale, seed=seed)
            for name in CHANNEL_BUILDERS]


def cache_state_walkthrough(num_ways: int = 8, seed: int = 0) -> List[Dict]:
    """Figure 4(d): per-symbol decode trace of the StealthyStreamline channel."""
    channel = StealthyStreamlineChannel(num_ways=num_ways, seed=seed)
    channel.cache.reset()
    channel._reset_counters()
    channel.prepare()
    rows: List[Dict] = []
    for symbol in range(4):
        decoded = channel.send_and_receive_symbol(symbol)
        rows.append({
            "victim_access": symbol,
            "decoded": decoded,
            "correct": decoded == symbol,
            "cache_contents": channel.cache.contents(),
            "replacement_state": channel.cache.replacement_state(0),
        })
    return rows


def format_results(rows: List[Dict]) -> str:
    return format_table(rows, ["channel", "bits_per_symbol", "bits_per_access",
                               "measured_fraction", "error_rate", "victim_misses",
                               "bypasses_miss_detection"],
                        title="Figure 4: StealthyStreamline vs prior attacks (simulator)")
