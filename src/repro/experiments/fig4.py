"""Figure 4: the StealthyStreamline attack and µarch-statistics detection.

The figure's message has three parts, all reproduced on the simulator:

1. attacks that evict the victim's line (Streamline-style / flush-based) make
   the victim miss, so a performance-counter detector sees them;
2. the LRU-state attacks and StealthyStreamline never make the victim miss;
3. StealthyStreamline transmits more bits per access than the LRU
   address-based attack while staying stealthy.
"""

from __future__ import annotations

from typing import Dict, List

from repro.attacks.lru_attacks import LRUAddressBasedChannel
from repro.attacks.stealthy_streamline import StealthyStreamlineChannel
from repro.attacks.streamline import StreamlineChannel
from repro.experiments.common import format_table


def run(scale=None, num_ways: int = 8, message_bits: int = 512, seed: int = 0) -> List[Dict]:
    """Transmit the same message through each channel; compare rate and stealth."""
    channels = [
        LRUAddressBasedChannel(num_ways=num_ways, seed=seed),
        StreamlineChannel(num_ways=num_ways, seed=seed),
        StealthyStreamlineChannel(num_ways=num_ways, seed=seed),
    ]
    rows: List[Dict] = []
    for channel in channels:
        message = channel.random_message(message_bits)
        result = channel.transmit(message)
        rows.append({
            "channel": channel.name,
            "bits_per_symbol": channel.bits_per_symbol,
            "bits_per_access": result.bits_per_access,
            "measured_fraction": result.measured_fraction,
            "error_rate": result.error_rate,
            "victim_misses": result.sender_misses,
            "stealthy": result.stealthy,
            "bypasses_miss_detection": result.stealthy,
        })
    return rows


def cache_state_walkthrough(num_ways: int = 8, seed: int = 0) -> List[Dict]:
    """Figure 4(d): per-symbol decode trace of the StealthyStreamline channel."""
    channel = StealthyStreamlineChannel(num_ways=num_ways, seed=seed)
    channel.cache.reset()
    channel._reset_counters()
    channel.prepare()
    rows: List[Dict] = []
    for symbol in range(4):
        decoded = channel.send_and_receive_symbol(symbol)
        rows.append({
            "victim_access": symbol,
            "decoded": decoded,
            "correct": decoded == symbol,
            "cache_contents": channel.cache.contents(),
            "replacement_state": channel.cache.replacement_state(0),
        })
    return rows


def format_results(rows: List[Dict]) -> str:
    return format_table(rows, ["channel", "bits_per_symbol", "bits_per_access",
                               "measured_fraction", "error_rate", "victim_misses",
                               "bypasses_miss_detection"],
                        title="Figure 4: StealthyStreamline vs prior attacks (simulator)")
