"""Table III: attack sequences found on (simulated) real hardware.

The paper runs AutoCAT against multiple cache levels of three Intel
processors through CacheQuery, without knowing the replacement policies.  Real
hardware is replaced by the blackbox machine models in :mod:`repro.hardware`
(hidden policy + measurement noise); the agent-side procedure is identical.
The driver trains one agent per machine and reports the attack accuracy, the
extracted sequence, and its category.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.classifier import classify_sequence
from repro.attacks.sequences import AttackSequence
from repro.experiments.common import ExperimentScale, format_table, get_scale, train_agent
from repro.hardware.machines import TABLE3_MACHINES, MachineSpec, get_machine
from repro.scenarios import machine_scenario_id, make, make_factory

# The 4-way L2/L3 partitions are the tractable ones on a single-CPU budget.
DEFAULT_BENCH_MACHINES = ("Core i7-6700:L2",)


def make_env_factory(machine: MachineSpec, attacker_addresses: Optional[int] = None):
    """Environment factory for one blackbox machine.

    Thin shim over the scenario registry (``blackbox/<machine>`` scenarios).
    """
    overrides = {}
    if attacker_addresses is not None:
        overrides["attacker_addresses"] = attacker_addresses
    return make_factory(machine_scenario_id(machine.key), **overrides)


def run(scale: ExperimentScale = "bench", machines: Optional[Sequence[str]] = None,
        seed: int = 0) -> List[Dict]:
    """Train an agent per machine and report accuracy, sequence, and category."""
    scale = get_scale(scale)
    if machines is None:
        if scale.name == "paper":
            machines = [spec.key for spec in TABLE3_MACHINES]
        else:
            machines = DEFAULT_BENCH_MACHINES
    rows: List[Dict] = []
    for key in machines:
        spec = get_machine(key)
        attacker_addresses = spec.num_ways + 1 if scale.name != "paper" else 2 * spec.num_ways
        result = train_agent(make_env_factory(spec, attacker_addresses=attacker_addresses),
                             scale, seed=seed, target_accuracy=0.9)
        sequence_labels: List[str] = []
        category = ""
        if result.extraction is not None:
            sequence_labels = result.extraction.representative
            env = make(machine_scenario_id(spec.key), seed=seed,
                       attacker_addresses=attacker_addresses)
            category = classify_sequence(AttackSequence.from_labels(sequence_labels),
                                         env.config).value
        rows.append({
            "cpu": spec.name,
            "cache_level": spec.cache_level,
            "ways": spec.num_ways,
            "documented_policy": spec.documented_policy or "N.O.D.",
            "victim_addr": "0/E",
            "attack_addr": f"0-{attacker_addresses - 1}",
            "accuracy": result.final_accuracy,
            "converged": result.converged,
            "sequence": " -> ".join(sequence_labels),
            "attack_category": category,
            "env_steps": result.env_steps,
        })
    return rows


def format_results(rows: List[Dict]) -> str:
    return format_table(rows, ["cpu", "cache_level", "ways", "documented_policy",
                               "victim_addr", "attack_addr", "accuracy", "attack_category"],
                        title="Table III: attacks found on simulated real hardware")
