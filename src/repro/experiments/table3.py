"""Table III: attack sequences found on (simulated) real hardware.

The paper runs AutoCAT against multiple cache levels of three Intel
processors through CacheQuery, without knowing the replacement policies.  Real
hardware is replaced by the blackbox machine models in :mod:`repro.hardware`
(hidden policy + measurement noise); the agent-side procedure is identical.
The driver trains one agent per machine and reports the attack accuracy, the
extracted sequence, and its category.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.classifier import classify_sequence
from repro.attacks.sequences import AttackSequence
from repro.experiments.common import ScaleLike, format_table, resolve_scale, train_agent
from repro.hardware.machines import TABLE3_MACHINES, MachineSpec, get_machine
from repro.scenarios import machine_scenario_id, make, make_factory

# The 4-way L2/L3 partitions are the tractable ones on a single-CPU budget.
DEFAULT_BENCH_MACHINES = ("Core i7-6700:L2",)


def make_env_factory(machine: MachineSpec, attacker_addresses: Optional[int] = None):
    """Environment factory for one blackbox machine.

    Thin shim over the scenario registry (``blackbox/<machine>`` scenarios).
    """
    overrides = {}
    if attacker_addresses is not None:
        overrides["attacker_addresses"] = attacker_addresses
    return make_factory(machine_scenario_id(machine.key), **overrides)


def cells(scale: ScaleLike) -> List[Dict]:
    """One campaign cell per machine; paper scale covers all Table III machines."""
    scale = resolve_scale(scale)
    if scale.name == "paper":
        machines = [spec.key for spec in TABLE3_MACHINES]
    else:
        machines = list(DEFAULT_BENCH_MACHINES)
    return [{"machine": key} for key in machines]


def run_cell(params: Dict, scale: ScaleLike, seed: int = 0, ctx=None) -> Dict:
    """One Table III row: train an agent against one blackbox machine."""
    scale = resolve_scale(scale)
    spec = get_machine(params["machine"])
    attacker_addresses = spec.num_ways + 1 if scale.name != "paper" else 2 * spec.num_ways
    result = train_agent(make_env_factory(spec, attacker_addresses=attacker_addresses),
                         scale, seed=seed, target_accuracy=0.9, ctx=ctx)
    sequence_labels: List[str] = []
    category = ""
    if result.extraction is not None:
        sequence_labels = result.extraction.representative
        env = make(machine_scenario_id(spec.key), seed=seed,
                   attacker_addresses=attacker_addresses)
        category = classify_sequence(AttackSequence.from_labels(sequence_labels),
                                     env.config).value
    return {
        "cpu": spec.name,
        "cache_level": spec.cache_level,
        "ways": spec.num_ways,
        "documented_policy": spec.documented_policy or "N.O.D.",
        "victim_addr": "0/E",
        "attack_addr": f"0-{attacker_addresses - 1}",
        "accuracy": result.final_accuracy,
        "converged": result.converged,
        "sequence": " -> ".join(sequence_labels),
        "attack_category": category,
        "env_steps": result.env_steps,
    }


def run(scale: ScaleLike = "bench", machines: Optional[Sequence[str]] = None,
        seed: int = 0) -> List[Dict]:
    """Train an agent per machine and report accuracy, sequence, and category."""
    scale = resolve_scale(scale)
    cell_params = (cells(scale) if machines is None
                   else [{"machine": key} for key in machines])
    return [run_cell(params, scale, seed=seed) for params in cell_params]


def format_results(rows: List[Dict]) -> str:
    return format_table(rows, ["cpu", "cache_level", "ways", "documented_policy",
                               "victim_addr", "attack_addr", "accuracy", "attack_category"],
                        title="Table III: attacks found on simulated real hardware")
