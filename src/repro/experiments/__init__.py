"""Experiment drivers regenerating every table and figure of the paper.

Each module exposes a ``run(scale=...)`` function returning structured rows
plus a ``format_table(rows)`` helper printing them in the paper's layout.  The
:class:`repro.experiments.common.ExperimentScale` controls the training budget
so the same driver powers quick tests, the benchmark harness, and full
paper-scale runs.
"""

from repro.experiments.common import ExperimentScale, SMOKE, BENCH, PAPER

__all__ = ["ExperimentScale", "SMOKE", "BENCH", "PAPER"]
