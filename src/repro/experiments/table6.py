"""Table VI: attacks against the random replacement policy.

With a (pseudo-)random replacement policy there is no single deterministic
attack sequence; the trained agent trades attack length against accuracy, and
the step reward controls that tradeoff: a larger per-step penalty pushes the
agent towards shorter, less reliable attacks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.common import ScaleLike, format_table, resolve_scale, train_agent
from repro.scenarios import make_factory

STEP_REWARDS = (-0.02, -0.01, -0.005)


def make_env_factory(step_reward: float, num_ways: int = 4, max_steps: int = 24):
    """Environment factory for the random-replacement study.

    Thin shim over the scenario registry: ``guessing/random-4way`` with the
    study's step-reward and episode-length overrides applied.
    """
    overrides = {"step_reward": step_reward,
                 "window_size": max_steps, "max_steps": max_steps}
    if num_ways != 4:
        overrides.update({"cache.num_ways": num_ways, "attacker_addr_e": num_ways})
    return make_factory("guessing/random-4way", **overrides)


def run_cell(params: Dict, scale: ScaleLike, seed: int = 0, ctx=None) -> Dict:
    """One Table VI row: train one agent at one step-reward setting."""
    scale = resolve_scale(scale)
    step_reward = params["step_reward"]
    num_ways = params.get("num_ways", 4)
    if scale.name == "smoke":
        num_ways = 2
    result = train_agent(make_env_factory(step_reward, num_ways=num_ways),
                         scale, seed=seed, target_accuracy=0.93, ctx=ctx)
    return {
        "step_reward": step_reward,
        "end_accuracy": result.final_accuracy,
        "episode_length": result.final_episode_length,
        "converged": result.converged,
        "env_steps": result.env_steps,
    }


def run(scale: ScaleLike = "bench", step_rewards: Sequence[float] = STEP_REWARDS,
        num_ways: int = 4, seed: int = 0) -> List[Dict]:
    """Train one agent per step-reward value; report accuracy and episode length."""
    scale = resolve_scale(scale)
    return [run_cell({"step_reward": step_reward, "num_ways": num_ways}, scale, seed=seed)
            for step_reward in step_rewards]


def format_results(rows: List[Dict]) -> str:
    return format_table(rows, ["step_reward", "end_accuracy", "episode_length", "converged"],
                        title="Table VI: RL-generated attacks on the random replacement policy")
