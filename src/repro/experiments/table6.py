"""Table VI: attacks against the random replacement policy.

With a (pseudo-)random replacement policy there is no single deterministic
attack sequence; the trained agent trades attack length against accuracy, and
the step reward controls that tradeoff: a larger per-step penalty pushes the
agent towards shorter, less reliable attacks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cache.config import CacheConfig
from repro.env.config import EnvConfig, RewardConfig
from repro.env.guessing_game import CacheGuessingGameEnv
from repro.experiments.common import ExperimentScale, format_table, get_scale, train_agent

STEP_REWARDS = (-0.02, -0.01, -0.005)


def make_env_factory(step_reward: float, num_ways: int = 4, max_steps: int = 24):
    """Environment factory for the random-replacement study."""

    def factory(seed: int) -> CacheGuessingGameEnv:
        config = EnvConfig(
            cache=CacheConfig.fully_associative(num_ways, rep_policy="random"),
            attacker_addr_s=0, attacker_addr_e=num_ways,
            victim_addr_s=0, victim_addr_e=0, victim_no_access_enable=True,
            rewards=RewardConfig(step_reward=step_reward),
            window_size=max_steps, max_steps=max_steps, seed=seed,
        )
        return CacheGuessingGameEnv(config)

    return factory


def run(scale: ExperimentScale = "bench", step_rewards: Sequence[float] = STEP_REWARDS,
        num_ways: int = 4, seed: int = 0) -> List[Dict]:
    """Train one agent per step-reward value; report accuracy and episode length."""
    scale = get_scale(scale)
    if scale.name == "smoke":
        num_ways = 2
    rows: List[Dict] = []
    for step_reward in step_rewards:
        result = train_agent(make_env_factory(step_reward, num_ways=num_ways),
                             scale, seed=seed, target_accuracy=0.93)
        rows.append({
            "step_reward": step_reward,
            "end_accuracy": result.final_accuracy,
            "episode_length": result.final_episode_length,
            "converged": result.converged,
            "env_steps": result.env_steps,
        })
    return rows


def format_results(rows: List[Dict]) -> str:
    return format_table(rows, ["step_reward", "end_accuracy", "episode_length", "converged"],
                        title="Table VI: RL-generated attacks on the random replacement policy")
