"""Table IX: bypassing the Cyclone-style SVM detector.

An SVM over per-interval cyclic-interference counts is trained on synthetic
benign workloads (standing in for SPEC2017) and on textbook prime+probe
traces, then used (a) to score the textbook and RL-baseline attackers — both
are detected — and (b) as a reward penalty while training the *RL SVM* agent,
which learns sequences that evade the detector at some bit-rate cost.
"""

from __future__ import annotations

import functools
from typing import Dict, List

import numpy as np

from repro.attacks.scripted import TextbookPrimeProbeAttacker, run_scripted_attacker
from repro.detection.cyclone import CycloneDetector
from repro.experiments.common import (
    ScaleLike,
    format_table,
    resolve_scale,
    train_agent_with_trainer,
)
from repro.experiments.table8_fig3 import (
    covert_env_config,
    covert_scenario_overrides,
    covert_sizes,
    evaluate_covert_policy,
    make_covert_env_factory,
)
from repro.scenarios import make_factory


def _detection_rate(detector: CycloneDetector, traces: List) -> float:
    if not traces:
        return 0.0
    return float(np.mean([detector.detection_rate(trace) for trace in traces]))


@functools.lru_cache(maxsize=8)
def train_detector(num_sets: int, episode_length: int, seed: int = 0,
                   benign_traces: int = 30) -> tuple:
    """Train the Cyclone SVM on benign workloads plus textbook attack traces.

    Deterministically seeded, so the result is cached per argument tuple:
    the serial ``run()`` shim trains the detector once for its three rows,
    while campaign workers (separate processes) each train their own
    identical copy.  Callers must treat the returned objects as read-only.
    """
    env = make_covert_env_factory(num_sets, episode_length)(seed)
    textbook_stats = run_scripted_attacker(env, TextbookPrimeProbeAttacker(env), episodes=4)
    detector = CycloneDetector.trained_on_synthetic_benign(
        covert_env_config(num_sets, episode_length, seed).cache,
        attack_traces=textbook_stats["traces"],
        num_benign=benign_traces, trace_length=4 * episode_length,
        interval=max(10, episode_length // 4), seed=seed)
    return detector, textbook_stats


def run_cell(params: Dict, scale: ScaleLike, seed: int = 0, ctx=None) -> Dict:
    """One Table IX row: textbook, RL baseline, or RL SVM.

    Every cell retrains the (deterministically seeded) Cyclone SVM, so cells
    stay independent and can run on separate workers while scoring against an
    identical detector.
    """
    scale = resolve_scale(scale)
    attack = params["attack"]
    eval_episodes = params.get("eval_episodes", 5)
    num_sets, episode_length = covert_sizes(scale)
    detector, textbook_stats = train_detector(num_sets, episode_length, seed=seed)

    if attack == "textbook":
        stats = textbook_stats
    elif attack == "RL baseline":
        baseline_factory = make_covert_env_factory(num_sets, episode_length)
        _result, trained = train_agent_with_trainer(baseline_factory, scale, seed=seed,
                                                    target_accuracy=0.97, ctx=ctx)
        stats = evaluate_covert_policy(baseline_factory, trained.policy,
                                       episodes=eval_episodes, seed=seed)
    elif attack == "RL SVM":
        svm_factory = make_factory("covert/prime-probe-svm", detector=detector,
                                   **covert_scenario_overrides(num_sets, episode_length))
        _result, trained = train_agent_with_trainer(svm_factory, scale, seed=seed + 1,
                                                    target_accuracy=0.97, ctx=ctx)
        plain_factory = make_covert_env_factory(num_sets, episode_length)
        stats = evaluate_covert_policy(plain_factory, trained.policy,
                                       episodes=eval_episodes, seed=seed + 1)
    else:
        raise KeyError(f"unknown Table IX attack {attack!r}")
    return {
        "attack": attack,
        "bit_rate": stats["bit_rate"],
        "guess_accuracy": stats["guess_accuracy"],
        "detection_rate": _detection_rate(detector, stats["traces"]),
        "svm_validation_accuracy": detector.validation_accuracy,
    }


def run(scale: ScaleLike = "bench", seed: int = 0, eval_episodes: int = 5) -> List[Dict]:
    """Produce the three Table IX rows (textbook, RL baseline, RL SVM)."""
    scale = resolve_scale(scale)
    return [run_cell({"attack": attack, "eval_episodes": eval_episodes}, scale, seed=seed)
            for attack in ("textbook", "RL baseline", "RL SVM")]


def format_results(rows: List[Dict]) -> str:
    return format_table(rows, ["attack", "bit_rate", "guess_accuracy", "detection_rate",
                               "svm_validation_accuracy"],
                        title="Table IX: bit rate, accuracy, and SVM detection rate")
