"""Table IX: bypassing the Cyclone-style SVM detector.

An SVM over per-interval cyclic-interference counts is trained on synthetic
benign workloads (standing in for SPEC2017) and on textbook prime+probe
traces, then used (a) to score the textbook and RL-baseline attackers — both
are detected — and (b) as a reward penalty while training the *RL SVM* agent,
which learns sequences that evade the detector at some bit-rate cost.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.attacks.scripted import TextbookPrimeProbeAttacker, run_scripted_attacker
from repro.detection.cyclone import CycloneDetector
from repro.experiments.common import (
    ExperimentScale,
    format_table,
    get_scale,
    train_agent_with_trainer,
)
from repro.experiments.table8_fig3 import (
    covert_env_config,
    covert_scenario_overrides,
    evaluate_covert_policy,
    make_covert_env_factory,
)
from repro.scenarios import make_factory


def _detection_rate(detector: CycloneDetector, traces: List) -> float:
    if not traces:
        return 0.0
    return float(np.mean([detector.detection_rate(trace) for trace in traces]))


def train_detector(num_sets: int, episode_length: int, seed: int = 0,
                   benign_traces: int = 30) -> tuple:
    """Train the Cyclone SVM on benign workloads plus textbook attack traces."""
    env = make_covert_env_factory(num_sets, episode_length)(seed)
    textbook_stats = run_scripted_attacker(env, TextbookPrimeProbeAttacker(env), episodes=4)
    detector = CycloneDetector.trained_on_synthetic_benign(
        covert_env_config(num_sets, episode_length, seed).cache,
        attack_traces=textbook_stats["traces"],
        num_benign=benign_traces, trace_length=4 * episode_length,
        interval=max(10, episode_length // 4), seed=seed)
    return detector, textbook_stats


def run(scale: ExperimentScale = "bench", seed: int = 0, eval_episodes: int = 5) -> List[Dict]:
    """Produce the three Table IX rows (textbook, RL baseline, RL SVM)."""
    scale = get_scale(scale)
    if scale.name == "paper":
        num_sets, episode_length = 4, 160
    elif scale.name == "smoke":
        num_sets, episode_length = 2, 24
    else:
        num_sets, episode_length = 2, 64

    detector, textbook_stats = train_detector(num_sets, episode_length, seed=seed)
    rows: List[Dict] = [{
        "attack": "textbook",
        "bit_rate": textbook_stats["bit_rate"],
        "guess_accuracy": textbook_stats["guess_accuracy"],
        "detection_rate": _detection_rate(detector, textbook_stats["traces"]),
        "svm_validation_accuracy": detector.validation_accuracy,
    }]

    # RL baseline: trained without any detection penalty.
    baseline_factory = make_covert_env_factory(num_sets, episode_length)
    _result, baseline_trainer = train_agent_with_trainer(baseline_factory, scale, seed=seed,
                                                         target_accuracy=0.97)
    baseline_stats = evaluate_covert_policy(baseline_factory, baseline_trainer.policy,
                                            episodes=eval_episodes, seed=seed)
    rows.append({
        "attack": "RL baseline",
        "bit_rate": baseline_stats["bit_rate"],
        "guess_accuracy": baseline_stats["guess_accuracy"],
        "detection_rate": _detection_rate(detector, baseline_stats["traces"]),
        "svm_validation_accuracy": detector.validation_accuracy,
    })

    # RL SVM: trained with the detector in the loop as a reward penalty.
    svm_factory = make_factory("covert/prime-probe-svm", detector=detector,
                               **covert_scenario_overrides(num_sets, episode_length))

    _result, svm_trainer = train_agent_with_trainer(svm_factory, scale, seed=seed + 1,
                                                    target_accuracy=0.97)
    plain_factory = make_covert_env_factory(num_sets, episode_length)
    svm_stats = evaluate_covert_policy(plain_factory, svm_trainer.policy,
                                       episodes=eval_episodes, seed=seed + 1)
    rows.append({
        "attack": "RL SVM",
        "bit_rate": svm_stats["bit_rate"],
        "guess_accuracy": svm_stats["guess_accuracy"],
        "detection_rate": _detection_rate(detector, svm_stats["traces"]),
        "svm_validation_accuracy": detector.validation_accuracy,
    })
    return rows


def format_results(rows: List[Dict]) -> str:
    return format_table(rows, ["attack", "bit_rate", "guess_accuracy", "detection_rate",
                               "svm_validation_accuracy"],
                        title="Table IX: bit rate, accuracy, and SVM detection rate")
