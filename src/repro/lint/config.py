"""Per-path lint configuration.

The config answers three questions the rules cannot answer from a single
file's AST alone:

* **Which functions are hot paths?**  Any function named ``*_into`` is one by
  convention; :data:`LintConfig.hot_path_registry` adds the named SoA /
  compiled-forward / fused-loss kernels that do not follow the naming
  convention but carry the same allocation-free contract.
* **Where is dtype discipline strict?**  The fused numeric kernels
  (:mod:`repro.rl.fused_loss`, :mod:`repro.nn.compiled`) must take their
  float width from the policy/config, never from a hard-coded
  ``np.float32`` / ``np.float64`` literal.
* **What is in scope?**  ``python -m repro.lint`` with no arguments lints
  ``src/repro`` (benchmarks, tests, and examples are free to allocate and
  format strings; they still must not defeat determinism, but their
  randomness is seeded at their own entry points).

Timing exception, encoded here as doctrine rather than a knob: wall-clock
reads for durations use ``time.perf_counter()`` (monotonic, immune to NTP
clock steps) **everywhere**, including benchmarks; ``time.time()`` is banned
in ``src/repro`` outright.  There is deliberately no per-path escape hatch
for it — a justified exception goes through an inline suppression plus a
baseline entry, so it stays visible and counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Tuple


def repo_root() -> Path:
    """The repository root (``src/repro/lint/config.py`` -> three parents up)."""
    return Path(__file__).resolve().parents[3]


#: Non-``*_into`` functions that carry the hot-path allocation contract,
#: keyed by module path suffix.  Qualified names are ``Class.method`` or bare
#: function names, matched against the AST's enclosing-class chain.
DEFAULT_HOT_PATH_REGISTRY: Dict[str, FrozenSet[str]] = {
    "repro/cache/soa.py": frozenset({
        "SoACacheEngine.access",
        "SoACacheEngine.flush",
        "SoACacheEngine.warm_up",
        "SoACacheEngine._choose_victims",
        "SoACacheEngine._policy_victim",
        "SoACacheEngine._on_touch",
        "SoACacheEngine._touch_ages",
        "SoACacheEngine._touch_plru",
    }),
    "repro/nn/compiled.py": frozenset({
        "CompiledForward._features",
        "CompiledForward._attention_features",
        "CompiledForward._heads",
        "CompiledForward._log_probs",
    }),
    "repro/rl/fused_loss.py": frozenset({
        "FusedPPOLoss.compute",
    }),
}

#: Module path suffixes where the dtype-discipline rule applies: fused
#: numeric kernels whose float width must come from the policy/config.
DEFAULT_DTYPE_STRICT: Tuple[str, ...] = (
    "repro/rl/fused_loss.py",
    "repro/nn/compiled.py",
)

#: Campaign-artifact code: every persistent file written here must go through
#: the atomic+checksum helpers in :mod:`repro.runs.artifacts` — a bare
#: ``write_text``/``write_bytes``/``pickle.dump`` can be torn by a crash and
#: poison resume.  Entries ending in ``/`` are directory prefixes; others are
#: file suffixes.
DEFAULT_ARTIFACT_STRICT: Tuple[str, ...] = (
    "repro/runs/",
    "repro/store/",
    "repro/rl/trainer.py",
)

#: The sanctioned implementation modules of the atomic write path itself.
DEFAULT_ARTIFACT_EXEMPT: Tuple[str, ...] = (
    "repro/runs/artifacts.py",
)

#: Campaign-service storage code: every SQL statement here must be a literal
#: string executed through the shared parameterized connection helper.
DEFAULT_STORE_STRICT: Tuple[str, ...] = (
    "repro/store/",
)

#: The sanctioned home of ``sqlite3.connect`` (pragmas applied exactly once).
DEFAULT_STORE_EXEMPT: Tuple[str, ...] = (
    "repro/store/connection.py",
)

#: The telemetry package: metric record paths (functions named ``record``,
#: ``inc``, ``set``, ``observe``, ``add``) carry the same zero-allocation
#: contract as the hot-path kernels, because instrumentation runs inside the
#: code it measures.
DEFAULT_TELEMETRY_STRICT: Tuple[str, ...] = (
    "repro/telemetry/",
)

#: The sanctioned homes of raw HTTP/socket request construction:
#: ``repro/store/client.py`` is where the deadline/retry/idempotency
#: contract lives (every worker request must inherit it), and
#: ``repro/store/chaos.py`` is the TCP chaos proxy, which needs raw sockets
#: by design.  Everywhere else under ``src/repro``, building requests with
#: ``urllib``/``http.client``/``socket`` directly is banned
#: (``artifacts.store-client``).
DEFAULT_NET_EXEMPT: Tuple[str, ...] = (
    "repro/store/client.py",
    "repro/store/chaos.py",
)


@dataclass(frozen=True)
class LintConfig:
    """Everything the engine and rules need beyond a single file's AST."""

    #: Directories (repo-relative) linted when no explicit paths are given.
    roots: Tuple[str, ...] = ("src/repro",)
    #: Hot-path naming convention: functions ending in this suffix.
    hot_path_suffix: str = "_into"
    #: Extra hot-path functions per module path suffix (see module docs).
    hot_path_registry: Dict[str, FrozenSet[str]] = field(
        default_factory=lambda: dict(DEFAULT_HOT_PATH_REGISTRY))
    #: Module path suffixes under strict dtype discipline.
    dtype_strict: Tuple[str, ...] = DEFAULT_DTYPE_STRICT
    #: Campaign-artifact code under the atomic-write contract.
    artifact_strict: Tuple[str, ...] = DEFAULT_ARTIFACT_STRICT
    #: Modules exempt from it (the atomic helpers themselves).
    artifact_exempt: Tuple[str, ...] = DEFAULT_ARTIFACT_EXEMPT
    #: Catalogue code under the literal-SQL / shared-connection contract.
    store_strict: Tuple[str, ...] = DEFAULT_STORE_STRICT
    #: Modules allowed to call ``sqlite3.connect`` (the helper itself).
    store_exempt: Tuple[str, ...] = DEFAULT_STORE_EXEMPT
    #: Modules allowed to build raw HTTP requests / sockets (the store
    #: client and the chaos proxy).
    net_exempt: Tuple[str, ...] = DEFAULT_NET_EXEMPT
    #: Telemetry code whose record paths must stay allocation-free.
    telemetry_strict: Tuple[str, ...] = DEFAULT_TELEMETRY_STRICT
    #: Checked-in suppressions baseline (repo-relative).
    baseline: str = "src/repro/lint/baseline.json"

    def hot_path_names(self, rel_path: str) -> FrozenSet[str]:
        """Registered hot-path qualified names for one module path."""
        for suffix, names in self.hot_path_registry.items():
            if rel_path.endswith(suffix):
                return names
        return frozenset()

    def dtype_strict_for(self, rel_path: str) -> bool:
        """Whether the dtype-discipline rule applies to this module."""
        return any(rel_path.endswith(suffix) for suffix in self.dtype_strict)

    def artifact_strict_for(self, rel_path: str) -> bool:
        """Whether the atomic-write contract applies to this module."""
        if any(rel_path.endswith(suffix) for suffix in self.artifact_exempt):
            return False
        return _path_matches(rel_path, self.artifact_strict)

    def store_strict_for(self, rel_path: str) -> bool:
        """Whether the literal-SQL store contract applies to this module."""
        if any(rel_path.endswith(suffix) for suffix in self.store_exempt):
            return False
        return _path_matches(rel_path, self.store_strict)

    def store_exempt_for(self, rel_path: str) -> bool:
        """Whether this module is the sanctioned sqlite3.connect site."""
        return any(rel_path.endswith(suffix) for suffix in self.store_exempt)

    def net_exempt_for(self, rel_path: str) -> bool:
        """Whether this module may build raw HTTP requests / sockets."""
        return any(rel_path.endswith(suffix) for suffix in self.net_exempt)

    def telemetry_strict_for(self, rel_path: str) -> bool:
        """Whether the alloc-free record-path contract applies here."""
        return _path_matches(rel_path, self.telemetry_strict)


def _path_matches(rel_path: str, entries: Tuple[str, ...]) -> bool:
    """Match a repo-relative path against ``dir/`` prefixes or file suffixes."""
    for entry in entries:
        if entry.endswith("/"):
            if entry in rel_path:
                return True
        elif rel_path.endswith(entry):
            return True
    return False


DEFAULT_CONFIG = LintConfig()
