"""The lint engine: file discovery, rule dispatch, suppression accounting.

One :func:`run_lint` call walks the configured roots (or explicit paths),
parses each Python file once, runs every AST rule over the shared
:class:`~repro.lint.rules.base.FileContext`, applies inline suppressions,
reconciles them against the checked-in baseline, and (on full runs) appends
the registry-honesty findings.  The result is a :class:`LintReport` the CLI
renders as text or JSON.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint.config import DEFAULT_CONFIG, LintConfig, repo_root
from repro.lint.findings import Finding
from repro.lint.rules import check_registries, instantiate_rules
from repro.lint.rules.base import FileContext
from repro.lint.suppressions import (SuppressedFinding, apply_suppressions,
                                     check_baseline, load_baseline,
                                     parse_suppressions)


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[SuppressedFinding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)
        self.findings.sort()


def discover_files(root: Path, config: LintConfig,
                   paths: Optional[Sequence[Path]] = None) -> List[Path]:
    """The Python files to lint: explicit paths, or the configured roots."""
    if paths:
        out: List[Path] = []
        for path in paths:
            if path.is_dir():
                out.extend(sorted(path.rglob("*.py")))
            else:
                out.append(path)
        return out
    files: List[Path] = []
    for rel in config.roots:
        files.extend(sorted((root / rel).rglob("*.py")))
    return files


def lint_file(path: Path, root: Path,
              config: LintConfig) -> tuple[List[Finding], List[SuppressedFinding]]:
    """Run every AST rule over one file; returns (active, suppressed)."""
    try:
        rel = str(path.resolve().relative_to(root))
    except ValueError:
        rel = str(path)
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        finding = Finding(path=rel, line=exc.lineno or 1, rule="lint.parse-error",
                          message=f"file does not parse: {exc.msg}")
        return [finding], []
    lines = source.splitlines()
    ctx = FileContext(path=path, rel=rel, tree=tree, lines=lines, config=config)
    raw: List[Finding] = []
    for rule in instantiate_rules():
        raw.extend(rule.check(ctx))
    return apply_suppressions(sorted(set(raw)), parse_suppressions(lines))


def run_lint(paths: Optional[Sequence[Path]] = None, *,
             config: LintConfig = DEFAULT_CONFIG,
             root: Optional[Path] = None,
             registry_pass: Optional[bool] = None,
             baseline_path: Optional[Path] = None) -> LintReport:
    """Lint the repo (or explicit ``paths``) and return the report.

    A *full* run (no explicit paths) additionally runs the registry-honesty
    pass and flags stale baseline entries; a partial run checks only the
    given files (``registry_pass=True`` forces the honesty pass anyway).
    """
    root = (root or repo_root()).resolve()
    full_run = not paths
    report = LintReport()
    for path in discover_files(root, config, paths):
        active, suppressed = lint_file(path, root, config)
        report.findings.extend(active)
        report.suppressed.extend(suppressed)
        report.files_checked += 1

    baseline = load_baseline(
        baseline_path if baseline_path is not None else root / config.baseline)
    report.extend(check_baseline(report.suppressed, baseline, full_run=full_run))

    if registry_pass if registry_pass is not None else full_run:
        report.extend(check_registries())

    report.findings.sort()
    return report
