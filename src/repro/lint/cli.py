"""``python -m repro.lint`` — the CI gate.

Usage::

    python -m repro.lint                 # full run: roots + registries + baseline
    python -m repro.lint src/repro/cache # just these paths (AST rules only)
    python -m repro.lint --format json   # machine-readable findings
    python -m repro.lint --list-rules    # the rule catalogue with rationales

Exit status 0 means clean; 1 means findings (printed as
``path:line: rule: message  [hint: ...]``); 2 means usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.engine import LintReport, run_lint
from repro.lint.rules import rule_catalogue
from repro.lint.suppressions import META_RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant checker for the repro codebase")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint (default: the "
                             "configured roots, plus the registry pass)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="override the suppressions baseline file")
    parser.add_argument("--no-registry", action="store_true",
                        help="skip the registry-honesty pass")
    parser.add_argument("--registry", action="store_true",
                        help="force the registry-honesty pass even with "
                             "explicit paths")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def list_rules() -> str:
    catalogue = dict(rule_catalogue())
    catalogue.update(META_RULES)
    width = max(len(rule) for rule in catalogue)
    lines = [f"{rule:<{width}}  {why}" for rule, why in sorted(catalogue.items())]
    return "\n".join(lines)


def render(report: LintReport, fmt: str) -> str:
    if fmt == "json":
        payload = {
            "ok": report.ok,
            "files_checked": report.files_checked,
            "findings": [f.to_dict() for f in report.findings],
            "suppressed": len(report.suppressed),
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    if report.ok:
        return (f"repro.lint: clean ({report.files_checked} files, "
                f"{len(report.suppressed)} sanctioned suppressions)")
    lines = [f.format() for f in report.findings]
    lines.append(f"repro.lint: {len(report.findings)} finding(s) in "
                 f"{report.files_checked} files")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    if args.no_registry and args.registry:
        print("--registry and --no-registry are mutually exclusive",
              file=sys.stderr)
        return 2
    registry_pass: Optional[bool] = None
    if args.no_registry:
        registry_pass = False
    elif args.registry:
        registry_pass = True
    paths: Optional[List[Path]] = list(args.paths) or None
    report = run_lint(paths, registry_pass=registry_pass,
                      baseline_path=args.baseline)
    print(render(report, args.format))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
