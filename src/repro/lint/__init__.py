"""``repro.lint`` — AST-based invariant checker for the repro codebase.

The reproduction's correctness contracts — seeded-Generator determinism,
allocation-free ``*_into`` hot paths, frozen JSON-round-trippable specs,
honest registry capability claims, config-driven dtypes — are enforced here
at lint time rather than discovered as flaky parity failures.  See the rule
catalogue (``python -m repro.lint --list-rules``) and the README's
"Invariants & static analysis" section.

Programmatic entry point::

    from repro.lint import run_lint

    report = run_lint()          # full repo + registry pass + baseline
    assert report.ok, [f.format() for f in report.findings]
"""

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import LintReport, lint_file, run_lint
from repro.lint.findings import Finding
from repro.lint.rules import ALL_RULES, check_registries, rule_catalogue

__all__ = [
    "ALL_RULES",
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintReport",
    "check_registries",
    "lint_file",
    "rule_catalogue",
    "run_lint",
]
