"""Inline suppressions and the checked-in baseline that keeps them honest.

A finding can be suppressed at its line with::

    some_call()  # repro-lint: disable=hotpath.numpy-alloc

Disabling a whole family (``disable=hotpath``) or several rules
(``disable=a,b``) also works.  But a suppression alone is not enough: every
suppression must be *sanctioned* by an entry in the checked-in baseline
(``src/repro/lint/baseline.json``), which records the file, the rule, how
many suppressions of that rule the file is allowed, and a one-line
justification.  Two meta-rules enforce the pairing:

* ``lint.unsanctioned-suppression`` — an inline suppression with no (or an
  exhausted) baseline entry.  Adding a suppression forces a reviewed baseline
  edit with a written reason.
* ``lint.stale-baseline`` — a baseline entry whose suppressions no longer
  exist in the code.  Fixing a violation forces the baseline to shrink, so
  the debt ledger never overstates.

The net effect: the suppression count is pinned in both directions and every
entry carries its justification in version control.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.lint.findings import Finding

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([\w.\-, ]+)")

RULE_UNSANCTIONED = "lint.unsanctioned-suppression"
RULE_STALE = "lint.stale-baseline"

#: Meta-rule catalogue entries (merged into ``--list-rules``).
META_RULES: Dict[str, str] = {
    RULE_UNSANCTIONED: ("every inline suppression is backed by a baseline "
                        "entry with a written justification"),
    RULE_STALE: ("baseline entries shrink when their suppressions are fixed, "
                 "so the debt ledger never overstates"),
}


def parse_suppressions(lines: List[str]) -> Dict[int, Tuple[str, ...]]:
    """``line_number -> (rule-or-family, ...)`` for every inline suppression."""
    found: Dict[int, Tuple[str, ...]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            rules = tuple(part.strip() for part in match.group(1).split(",")
                          if part.strip())
            if rules:
                found[lineno] = rules
    return found


def matches(pattern: str, rule_id: str) -> bool:
    """Whether a suppression pattern covers a rule (exact id or family prefix)."""
    return rule_id == pattern or rule_id.startswith(pattern + ".")


@dataclass(frozen=True)
class SuppressedFinding:
    """A finding silenced by an inline suppression — kept for accounting."""

    finding: Finding
    pattern: str


def apply_suppressions(
    findings: Iterable[Finding],
    suppressions: Dict[int, Tuple[str, ...]],
) -> Tuple[List[Finding], List[SuppressedFinding]]:
    """Split findings into (still-active, suppressed-with-pattern)."""
    active: List[Finding] = []
    suppressed: List[SuppressedFinding] = []
    for finding in findings:
        pattern = next(
            (p for p in suppressions.get(finding.line, ())
             if matches(p, finding.rule)), None)
        if pattern is None:
            active.append(finding)
        else:
            suppressed.append(SuppressedFinding(finding, pattern))
    return active, suppressed


# ------------------------------------------------------------------ baseline
@dataclass(frozen=True)
class BaselineEntry:
    """One sanctioned suppression bucket: path x rule, with a count + reason."""

    path: str
    rule: str
    count: int
    reason: str


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Read the baseline file; a missing file means an empty baseline."""
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    entries = []
    for raw in data.get("suppressions", []):
        entries.append(BaselineEntry(
            path=str(raw["path"]), rule=str(raw["rule"]),
            count=int(raw.get("count", 1)), reason=str(raw.get("reason", ""))))
    return entries


def check_baseline(
    suppressed: Iterable[SuppressedFinding],
    baseline: List[BaselineEntry],
    *,
    full_run: bool,
) -> List[Finding]:
    """Reconcile actual suppressions against the sanctioned baseline.

    Over-budget (or unknown) suppressions are always errors.  Under-budget
    entries — debt that has been paid down without shrinking the ledger — are
    only errors on a *full* run, because a partial run (explicit file
    arguments) cannot see every suppression.
    """
    actual: Dict[Tuple[str, str], List[SuppressedFinding]] = {}
    for item in suppressed:
        actual.setdefault((item.finding.path, item.finding.rule), []).append(item)

    allowed: Dict[Tuple[str, str], BaselineEntry] = {
        (entry.path, entry.rule): entry for entry in baseline}

    findings: List[Finding] = []
    for key, items in sorted(actual.items()):
        path, rule = key
        entry = allowed.get(key)
        budget = entry.count if entry else 0
        if len(items) > budget:
            for item in items[budget:]:
                findings.append(Finding(
                    path=path, line=item.finding.line, rule=RULE_UNSANCTIONED,
                    message=(f"suppression of {rule} is not sanctioned by the "
                             f"baseline (allowed {budget}, found {len(items)})"),
                    hint=("add a baseline entry with a one-line reason, or fix "
                          "the violation")))
    if full_run:
        for key, entry in sorted(allowed.items()):
            used = len(actual.get(key, []))
            if used < entry.count:
                findings.append(Finding(
                    path=entry.path, line=1, rule=RULE_STALE,
                    message=(f"baseline allows {entry.count} suppressions of "
                             f"{entry.rule} but only {used} exist"),
                    hint="shrink or remove the baseline entry"))
    return findings
