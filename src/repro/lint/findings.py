"""The unit of lint output: one :class:`Finding` per contract violation.

A finding pins a rule violation to a file and line and carries a *fix hint* —
the one-line answer to "so what do I do about it?".  Findings are plain
frozen dataclasses so the engine can sort, deduplicate, serialize
(``--format json``), and compare them in tests without ceremony.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation (or meta-finding) at a specific location."""

    path: str
    line: int
    rule: str
    message: str
    hint: str = ""

    def format(self) -> str:
        """``path:line: rule: message`` with the hint appended when present."""
        text = f"{self.path}:{self.line}: {self.rule}: {self.message}"
        if self.hint:
            text += f"  [hint: {self.hint}]"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)
