"""Telemetry rules: metric record paths stay alloc-free, clocks stay monotonic.

The observability layer's contract is that instrumentation is safe to leave
on in the measured path: ``REPRO_TELEMETRY=1`` must cost nanoseconds per
event, not allocations.  Histograms preallocate their bucket arrays in
``__init__`` and ``record()`` only does a scalar ``searchsorted`` plus an
in-place increment — so inside the telemetry package, any function named
like a record-path entry point (``record``, ``inc``, ``set``, ``observe``,
``add``) is held to the same zero-allocation discipline as the hot-path
kernels: no container displays or comprehensions, no allocating numpy
constructors, no string formatting.  Error paths (inside ``raise``) are
exempt, as everywhere else.

The clock rule extends :class:`~repro.lint.rules.determinism.WallClockRule`'s
``time.time()`` ban to the ``datetime`` API: ``datetime.now()`` /
``utcnow()`` / ``today()`` are the same stepping wall clock with a different
spelling.  Durations use ``time.perf_counter()``; persisted timestamps use
the catalogue's SQL clock (``StoreConnection.now()``), so they are stamped
by one authority instead of every reporting process's skewed clock.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.rules.base import (FileContext, Rule, call_attribute_chain,
                                   iter_functions, raise_protected_nodes)
from repro.lint.rules.hotpath import ALLOC_FNS

#: Bare function names treated as metric record-path entry points inside
#: telemetry-strict modules.
RECORD_PATH_NAMES = frozenset({"record", "inc", "set", "observe", "add"})

#: ``datetime.datetime`` / ``datetime.date`` class methods that read the
#: stepping wall clock.
_DATETIME_CLOCK_FNS = frozenset({"now", "utcnow", "today"})


class TelemetryRecordAllocRule(Rule):
    """Record paths in the telemetry package must not allocate."""

    rule_id = "telemetry.record-alloc"
    description = ("container display, comprehension, numpy allocation, or "
                   "string formatting inside a metric record path")
    why = ("instrumentation rides inside the training loop and the request "
           "handlers; a dict per inc() or a fresh array per record() turns "
           "the <2% telemetry overhead budget into allocator pressure in "
           "exactly the code the metrics are measuring")
    hint = ("preallocate state (bucket arrays, label tuples) at metric "
            "creation time; record paths do scalar math and in-place "
            "increments only")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.config.telemetry_strict_for(ctx.rel):
            return []
        findings: List[Finding] = []
        numpy_names = ctx.aliases_of("numpy")
        container_types = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                           ast.DictComp, ast.SetComp, ast.GeneratorExp)
        for qualname, func in iter_functions(ctx.tree):
            if qualname.rsplit(".", 1)[-1] not in RECORD_PATH_NAMES:
                continue
            protected = raise_protected_nodes(func)
            for node in ast.walk(func):
                if id(node) in protected:
                    continue
                if isinstance(node, container_types):
                    kind = type(node).__name__
                    findings.append(self.finding(
                        ctx, node,
                        f"{kind} allocated inside record path {qualname}()"))
                elif isinstance(node, ast.JoinedStr):
                    findings.append(self.finding(
                        ctx, node,
                        f"f-string inside record path {qualname}()"))
                elif isinstance(node, ast.Call):
                    chain = call_attribute_chain(node.func)
                    hit = ""
                    if len(chain) == 2 and chain[0] in numpy_names \
                            and chain[1] in ALLOC_FNS:
                        hit = f"np.{chain[1]}"
                    elif len(chain) == 1 \
                            and ctx.from_import(chain[0])[0] == "numpy" \
                            and ctx.from_import(chain[0])[1] in ALLOC_FNS:
                        hit = chain[0]
                    if hit:
                        findings.append(self.finding(
                            ctx, node,
                            f"{hit}() allocates inside record path "
                            f"{qualname}()"))
        return findings


class DatetimeWallClockRule(Rule):
    """``datetime.now()`` and friends are ``time.time()`` in disguise."""

    rule_id = "telemetry.datetime-wall-clock"
    description = ("datetime.now()/utcnow()/today() or date.today() reads "
                   "the stepping wall clock")
    why = ("the determinism.wall-clock ban on time.time() is pointless if "
           "the same clock leaks in through the datetime API; timestamps "
           "that feed results or the catalogue come from perf_counter "
           "deltas or the catalogue's single SQL clock")
    hint = ("use time.perf_counter() for durations; persist timestamps via "
            "StoreConnection.now() so one clock stamps every row")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        datetime_modules = ctx.aliases_of("datetime")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_attribute_chain(node.func)
            if len(chain) == 3 and chain[0] in datetime_modules \
                    and chain[1] in ("datetime", "date") \
                    and chain[2] in _DATETIME_CLOCK_FNS:
                findings.append(self.finding(
                    ctx, node,
                    f"datetime.{chain[1]}.{chain[2]}() reads the stepping "
                    "wall clock"))
            elif len(chain) == 2 \
                    and ctx.from_import(chain[0])[0] == "datetime" \
                    and ctx.from_import(chain[0])[1] in ("datetime", "date") \
                    and chain[1] in _DATETIME_CLOCK_FNS:
                findings.append(self.finding(
                    ctx, node,
                    f"{chain[0]}.{chain[1]}() reads the stepping wall "
                    "clock"))
        return findings


RULES = (TelemetryRecordAllocRule, DatetimeWallClockRule)
