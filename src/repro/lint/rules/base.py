"""Shared rule machinery: the rule protocol and AST bookkeeping helpers.

Every per-file rule subclasses :class:`Rule` and implements
``check(ctx) -> Iterable[Finding]`` over a parsed :class:`FileContext`.
The helpers here answer the questions several rules share: what is ``np``
bound to in this file, which names refer to the stdlib ``random``/``time``
modules, which nodes live inside a ``raise`` statement (error paths are
exempt from hot-path restrictions), and what is a function's qualified name.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.findings import Finding


@dataclass
class FileContext:
    """One parsed source file plus the config, shared by all rules."""

    path: Path
    rel: str
    tree: ast.Module
    lines: List[str]
    config: LintConfig
    _module_aliases: Dict[str, Set[str]] = field(default_factory=dict)
    _from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    self._module_aliases.setdefault(alias.name, set()).add(bound)
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self._from_imports[bound] = (node.module, alias.name)

    def aliases_of(self, module: str) -> Set[str]:
        """Local names bound to ``import <module>`` (e.g. ``np`` for numpy)."""
        return self._module_aliases.get(module, set())

    def from_import(self, name: str) -> Tuple[str, str]:
        """``(module, original_name)`` for a from-imported local name."""
        return self._from_imports.get(name, ("", ""))


class Rule:
    """One lint rule: an id, a rationale, and a ``check`` over a file."""

    rule_id: str = ""
    description: str = ""
    #: The contract the rule protects — shown by ``--list-rules`` and in docs.
    why: str = ""
    hint: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                hint: str = "") -> Finding:
        return Finding(path=ctx.rel, line=getattr(node, "lineno", 1),
                       rule=self.rule_id, message=message,
                       hint=hint or self.hint)


def iter_functions(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(qualified_name, def_node)`` for every function in the module.

    Qualified names are ``Class.method`` (one level of nesting, matching the
    hot-path registry convention) or bare function names.
    """

    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{child.name}" if prefix else child.name
                yield name, child
                yield from walk(child, f"{name}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{child.name}.")

    yield from walk(tree, "")


def raise_protected_nodes(root: ast.AST) -> Set[int]:
    """ids of every node inside a ``raise`` statement under ``root``.

    Error paths never run in the steady state, so hot-path rules exempt the
    expressions that build an exception (f-string messages and the like).
    """
    protected: Set[int] = set()
    for node in ast.walk(root):
        if isinstance(node, ast.Raise):
            for sub in ast.walk(node):
                protected.add(id(sub))
    return protected


def call_attribute_chain(func: ast.AST) -> List[str]:
    """``["np", "random", "default_rng"]`` for ``np.random.default_rng``.

    Returns an empty list when the callable is not a plain dotted name.
    """
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def dedupe(findings: Iterable[Finding]) -> List[Finding]:
    """Sorted, deduplicated findings (rules may visit a node twice)."""
    return sorted(set(findings))
