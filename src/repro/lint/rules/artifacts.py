"""Artifact durability: campaign state goes through the atomic write path.

Campaign artifacts (manifests, cell results, checkpoints, training memos) are
what crash recovery resumes from.  A bare ``path.write_text(...)`` /
``path.write_bytes(...)`` / ``pickle.dump(obj, fh)`` can be torn mid-write by
a crash or kill, leaving a file that parses half-way or not at all — and a
torn manifest poisons every later resume of that campaign.  The helpers in
:mod:`repro.runs.artifacts` write to a hidden temp file, fsync, and
``os.replace`` into place, then record a SHA-256 sidecar that loads verify.

In the artifact-strict modules (``artifact_strict`` in the lint config —
``repro/runs/`` and the trainer's checkpoint I/O) this rule flags the
non-atomic spellings.  The implementation module itself
(``repro/runs/artifacts.py``) is exempt: it is the sanctioned home of the
raw writes.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule, call_attribute_chain

#: Path-object write methods with a one-call atomic replacement.
_WRITE_METHODS = {
    "write_text": "atomic_write_text",
    "write_bytes": "atomic_write_bytes",
}

#: ``module.dump(obj, fh)`` serializers with an atomic replacement.
_DUMP_MODULES = {
    "pickle": "atomic_write_pickle",
    "json": "atomic_write_json",
}


class NonAtomicWriteRule(Rule):
    """Campaign-artifact modules must not write files non-atomically."""

    rule_id = "artifacts.non-atomic-write"
    description = ("bare write_text/write_bytes/pickle.dump/json.dump in an "
                   "artifact-strict module")
    why = ("a crash mid-write leaves a torn file that poisons campaign "
           "resume; the repro.runs.artifacts helpers write tmp+fsync+"
           "os.replace with a checksum sidecar")
    hint = "use repro.runs.artifacts.atomic_write_* instead"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.config.artifact_strict_for(ctx.rel):
            return []
        findings: List[Finding] = []
        dump_aliases = {alias: module
                        for module in _DUMP_MODULES
                        for alias in ctx.aliases_of(module)}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_attribute_chain(node.func)
            if not chain:
                continue
            if chain[-1] in _WRITE_METHODS and len(chain) >= 2:
                findings.append(self.finding(
                    ctx, node,
                    f"non-atomic .{chain[-1]}() in an artifact-strict module",
                    hint=f"use repro.runs.artifacts."
                         f"{_WRITE_METHODS[chain[-1]]} instead"))
            elif len(chain) == 2 and chain[1] == "dump" \
                    and chain[0] in dump_aliases:
                module = dump_aliases[chain[0]]
                findings.append(self.finding(
                    ctx, node,
                    f"non-atomic {chain[0]}.dump() in an artifact-strict "
                    f"module",
                    hint=f"use repro.runs.artifacts."
                         f"{_DUMP_MODULES[module]} instead"))
        return findings


RULES = (NonAtomicWriteRule,)
