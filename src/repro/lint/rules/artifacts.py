"""Artifact durability: campaign state goes through the atomic write path.

Campaign artifacts (manifests, cell results, checkpoints, training memos) are
what crash recovery resumes from.  A bare ``path.write_text(...)`` /
``path.write_bytes(...)`` / ``pickle.dump(obj, fh)`` can be torn mid-write by
a crash or kill, leaving a file that parses half-way or not at all — and a
torn manifest poisons every later resume of that campaign.  The helpers in
:mod:`repro.runs.artifacts` write to a hidden temp file, fsync, and
``os.replace`` into place, then record a SHA-256 sidecar that loads verify.

In the artifact-strict modules (``artifact_strict`` in the lint config —
``repro/runs/`` and the trainer's checkpoint I/O) this rule flags the
non-atomic spellings.  The implementation module itself
(``repro/runs/artifacts.py``) is exempt: it is the sanctioned home of the
raw writes.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule, call_attribute_chain

#: Path-object write methods with a one-call atomic replacement.
_WRITE_METHODS = {
    "write_text": "atomic_write_text",
    "write_bytes": "atomic_write_bytes",
}

#: ``module.dump(obj, fh)`` serializers with an atomic replacement.
_DUMP_MODULES = {
    "pickle": "atomic_write_pickle",
    "json": "atomic_write_json",
}


class NonAtomicWriteRule(Rule):
    """Campaign-artifact modules must not write files non-atomically."""

    rule_id = "artifacts.non-atomic-write"
    description = ("bare write_text/write_bytes/pickle.dump/json.dump in an "
                   "artifact-strict module")
    why = ("a crash mid-write leaves a torn file that poisons campaign "
           "resume; the repro.runs.artifacts helpers write tmp+fsync+"
           "os.replace with a checksum sidecar")
    hint = "use repro.runs.artifacts.atomic_write_* instead"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.config.artifact_strict_for(ctx.rel):
            return []
        findings: List[Finding] = []
        dump_aliases = {alias: module
                        for module in _DUMP_MODULES
                        for alias in ctx.aliases_of(module)}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_attribute_chain(node.func)
            if not chain:
                continue
            if chain[-1] in _WRITE_METHODS and len(chain) >= 2:
                findings.append(self.finding(
                    ctx, node,
                    f"non-atomic .{chain[-1]}() in an artifact-strict module",
                    hint=f"use repro.runs.artifacts."
                         f"{_WRITE_METHODS[chain[-1]]} instead"))
            elif len(chain) == 2 and chain[1] == "dump" \
                    and chain[0] in dump_aliases:
                module = dump_aliases[chain[0]]
                findings.append(self.finding(
                    ctx, node,
                    f"non-atomic {chain[0]}.dump() in an artifact-strict "
                    f"module",
                    hint=f"use repro.runs.artifacts."
                         f"{_DUMP_MODULES[module]} instead"))
        return findings


#: SQL-executing methods whose statement argument must be a literal.
_SQL_METHODS = ("execute", "executemany", "executescript", "fetchall",
                "fetchone", "scalar")


class StoreConnectionRule(Rule):
    """Catalogue SQL goes through the shared parameterized connection helper.

    Two contracts, both anchored on :mod:`repro.store.connection`:

    * ``sqlite3.connect`` may only appear in the connection module — it is
      where the multi-process pragmas (WAL, busy_timeout, foreign keys) are
      applied exactly once;
    * inside ``repro/store/``, every ``execute``/``executemany``/... call
      takes a **literal SQL string** (or a module-level string constant like
      the schema DDL) — values travel as bound parameters, never spliced
      into the SQL text, so a metric name or worker id can't become SQL.
    """

    rule_id = "artifacts.store-connection"
    description = ("sqlite3.connect outside repro/store/connection.py, or "
                   "non-literal SQL in a store module")
    why = ("a rogue connection skips the WAL/busy-timeout pragmas that make "
           "one catalogue safe for many processes, and string-built SQL "
           "turns experiment ids and metric names into injection surface")
    hint = ("open catalogues via repro.store.connection.connect() and pass "
            "SQL as a literal with bound parameters")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        exempt = ctx.config.store_exempt_for(ctx.rel)
        sqlite_aliases = ctx.aliases_of("sqlite3")
        connect_names = {name for name in ("connect",)
                         if ctx.from_import(name)[0] == "sqlite3"}
        store_strict = ctx.config.store_strict_for(ctx.rel)
        literal_names = _module_string_constants(ctx.tree) if store_strict \
            else frozenset()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_attribute_chain(node.func)
            if not chain:
                continue
            if not exempt and (
                    (len(chain) == 2 and chain[0] in sqlite_aliases
                     and chain[1] == "connect")
                    or (len(chain) == 1 and chain[0] in connect_names)):
                findings.append(self.finding(
                    ctx, node,
                    "bare sqlite3.connect outside the store connection "
                    "helper",
                    hint="use repro.store.connection.connect(path) (WAL + "
                         "busy_timeout + foreign_keys applied there)"))
            if store_strict and chain[-1] in _SQL_METHODS and len(chain) >= 2 \
                    and node.args and not _is_literal_sql(node.args[0],
                                                          literal_names):
                findings.append(self.finding(
                    ctx, node,
                    f".{chain[-1]}() with a non-literal SQL statement in a "
                    "store module",
                    hint="SQL must be a literal string (values go in bound "
                         "parameters); f-strings, %, +, and .format() on "
                         "SQL are banned"))
        return findings


#: Modules whose request-construction entry points are banned outside the
#: sanctioned client/proxy modules.
_NET_MODULES = ("urllib.request", "http.client", "socket")

#: Raw request-construction calls, fully dotted.
_NET_BANNED = frozenset({
    "urllib.request.urlopen",
    "urllib.request.Request",
    "urllib.request.build_opener",
    "http.client.HTTPConnection",
    "http.client.HTTPSConnection",
    "socket.socket",
    "socket.create_connection",
})


class StoreClientRule(Rule):
    """HTTP requests go through ``repro.store.client.StoreClient``.

    The store client is where the worker transport's reliability contract
    lives: per-request deadlines, the bounded deterministic retry budget,
    the retryable-vs-fatal error taxonomy, and per-mutation idempotency
    keys.  A raw ``urllib.request.urlopen`` / ``http.client.HTTPConnection``
    / ``socket.create_connection`` anywhere else silently opts out of all
    four — no deadline, no retries, and (worst) mutations that can
    double-apply under retry.  Only the client itself and the chaos proxy
    (which needs raw sockets by design) are exempt (``net_exempt`` in the
    lint config).
    """

    rule_id = "artifacts.store-client"
    description = ("raw urllib/http.client/socket request construction "
                   "outside repro/store/client.py")
    why = ("a raw request bypasses the store client's deadline, retry "
           "budget, error taxonomy, and idempotency keys — an un-keyed "
           "retried mutation can double-apply")
    hint = ("use repro.store.client.StoreClient (or add the module to "
            "net_exempt if it is transport implementation)")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.config.net_exempt_for(ctx.rel):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_attribute_chain(node.func)
            if not chain:
                continue
            dotted = self._resolve(ctx, chain)
            if dotted in _NET_BANNED:
                findings.append(self.finding(
                    ctx, node,
                    f"raw {dotted}() outside the sanctioned store client"))
        return findings

    @staticmethod
    def _resolve(ctx: FileContext, chain: List[str]) -> str:
        """The call's fully dotted name with import aliases resolved."""
        head = chain[0]
        module, original = ctx.from_import(head)
        if module:
            return ".".join([module, original, *chain[1:]])
        for module_name in _NET_MODULES:
            if head in ctx.aliases_of(module_name) \
                    and head != module_name.split(".")[0]:
                return ".".join([module_name, *chain[1:]])
        return ".".join(chain)


def _module_string_constants(tree: ast.Module) -> frozenset:
    """Module-level names assigned a string literal (e.g. the schema DDL)."""
    names = set()
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            names.update(t.id for t in node.targets if isinstance(t, ast.Name))
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            names.add(node.target.id)
    return frozenset(names)


def _is_literal_sql(arg: ast.AST, literal_names: frozenset) -> bool:
    """Whether a SQL argument is a literal (or references a literal constant).

    Accepted: a plain string constant, implicit concatenation of constants
    (one ``ast.Constant`` after parsing), a conditional between two literal
    arms, or a bare name bound to a module-level string constant.
    """
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return True
    if isinstance(arg, ast.Name) and arg.id in literal_names:
        return True
    if isinstance(arg, ast.IfExp):
        return (_is_literal_sql(arg.body, literal_names)
                and _is_literal_sql(arg.orelse, literal_names))
    return False


RULES = (NonAtomicWriteRule, StoreConnectionRule, StoreClientRule)
