"""Hot-path allocation rules: steady-state kernels must not allocate.

The throughput story of this reproduction (PR 2's SoA engine, PR 4's
compiled forward and fused PPO losses) rests on one convention: once buffers
are warm, the per-step path performs zero heap allocation.  Functions ending
in ``_into`` (``encode_into``, ``step_into``, ``reset_into``) advertise that
contract in their name; the named SoA / compiled-forward / fused-loss kernels
in :data:`repro.lint.config.DEFAULT_HOT_PATH_REGISTRY` carry it without the
suffix.  Inside any such function we flag:

* allocating numpy constructors (``np.zeros``, ``np.empty``,
  ``np.concatenate``, ...) — each one is a malloc per step;
* list/dict/set displays and comprehensions **inside loops** — hidden
  per-iteration allocation;
* string formatting (f-strings, ``str.format``, ``%``) — allocation plus
  formatting cost that has no business in a kernel.

Error paths are exempt: everything inside a ``raise`` statement runs at most
once, so its f-string message is fine.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.rules.base import (FileContext, Rule, call_attribute_chain,
                                   iter_functions, raise_protected_nodes)

#: numpy callables that allocate a fresh array.
ALLOC_FNS = frozenset({
    "zeros", "ones", "empty", "full", "array", "arange", "eye", "identity",
    "zeros_like", "ones_like", "empty_like", "full_like", "concatenate",
    "stack", "vstack", "hstack", "column_stack", "dstack", "tile", "repeat",
    "linspace", "logspace", "meshgrid", "copy", "fromiter", "frombuffer",
})


def _hot_functions(ctx: FileContext) -> Iterator[Tuple[str, ast.AST]]:
    """Yield the functions in this file that carry the hot-path contract."""
    registered = ctx.config.hot_path_names(ctx.rel)
    for qualname, node in iter_functions(ctx.tree):
        name = qualname.rsplit(".", 1)[-1]
        if name.endswith(ctx.config.hot_path_suffix) or qualname in registered:
            yield qualname, node


def _loop_nodes(func: ast.AST) -> Set[int]:
    """ids of nodes that sit inside a for/while loop within ``func``."""
    inside: Set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.For, ast.While, ast.AsyncFor)):
            for sub in ast.walk(node):
                if sub is not node:
                    inside.add(id(sub))
    return inside


class HotPathNumpyAllocRule(Rule):
    """No allocating numpy constructors inside hot-path functions."""

    rule_id = "hotpath.numpy-alloc"
    description = ("allocating numpy constructor called inside a *_into or "
                   "registered hot-path function")
    why = ("the per-step contract is zero heap allocation once buffers are "
           "warm; one np.zeros per step costs a malloc + memset and defeats "
           "the preallocated-buffer design")
    hint = ("preallocate the array in __init__ / _ensure_buffers and write "
            "with out=/[:] assignment")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        numpy_names = ctx.aliases_of("numpy")
        for qualname, func in _hot_functions(ctx):
            protected = raise_protected_nodes(func)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call) or id(node) in protected:
                    continue
                chain = call_attribute_chain(node.func)
                hit = ""
                if len(chain) == 2 and chain[0] in numpy_names \
                        and chain[1] in ALLOC_FNS:
                    hit = f"np.{chain[1]}"
                elif len(chain) == 1 \
                        and ctx.from_import(chain[0])[0] == "numpy" \
                        and ctx.from_import(chain[0])[1] in ALLOC_FNS:
                    hit = chain[0]
                if hit:
                    findings.append(self.finding(
                        ctx, node,
                        f"{hit}() allocates inside hot path {qualname}()"))
        return findings


class HotPathContainerInLoopRule(Rule):
    """No list/dict/set construction inside loops in hot-path functions."""

    rule_id = "hotpath.container-in-loop"
    description = ("list/dict/set literal or comprehension built inside a "
                   "loop in a hot-path function")
    why = ("a container display in a loop allocates per iteration — per env, "
           "per way, per step — which is exactly the scaling the SoA layout "
           "exists to avoid")
    hint = "hoist the container out of the loop or vectorize with numpy"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        container_types = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                           ast.DictComp, ast.SetComp, ast.GeneratorExp)
        for qualname, func in _hot_functions(ctx):
            protected = raise_protected_nodes(func)
            in_loop = _loop_nodes(func)
            for node in ast.walk(func):
                if isinstance(node, container_types) and id(node) in in_loop \
                        and id(node) not in protected:
                    kind = type(node).__name__
                    findings.append(self.finding(
                        ctx, node,
                        f"{kind} built inside a loop in hot path {qualname}()"))
        return findings


class HotPathStrFormatRule(Rule):
    """No string formatting in hot-path functions (outside raise)."""

    rule_id = "hotpath.str-format"
    description = ("f-string / str.format / % formatting inside a hot-path "
                   "function")
    why = ("string formatting allocates and formats on every step; hot "
           "kernels must not produce text except when raising")
    hint = "move formatting to the error path or the caller"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for qualname, func in _hot_functions(ctx):
            protected = raise_protected_nodes(func)
            for node in ast.walk(func):
                if id(node) in protected:
                    continue
                if isinstance(node, ast.JoinedStr):
                    findings.append(self.finding(
                        ctx, node, f"f-string inside hot path {qualname}()"))
                elif isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and node.func.attr == "format" \
                        and isinstance(node.func.value, ast.Constant) \
                        and isinstance(node.func.value.value, str):
                    findings.append(self.finding(
                        ctx, node, f"str.format() inside hot path {qualname}()"))
                elif isinstance(node, ast.BinOp) \
                        and isinstance(node.op, ast.Mod) \
                        and isinstance(node.left, ast.Constant) \
                        and isinstance(node.left.value, str):
                    findings.append(self.finding(
                        ctx, node,
                        f"%-formatting inside hot path {qualname}()"))
        return findings


RULES = (HotPathNumpyAllocRule, HotPathContainerInLoopRule, HotPathStrFormatRule)
