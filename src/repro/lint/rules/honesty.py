"""Registry honesty: the whole-program cross-check pass.

Unlike the per-file AST rules, this pass imports the live registries and
verifies that what they *claim* is true:

* every registered scenario's ``defense`` id resolves in the defense
  registry (a typo here otherwise surfaces as a KeyError deep inside a
  training run);
* every registered experiment's driver module imports, and every scenario /
  defense id mentioned in its cell grid resolves (``"none"`` is the
  defense-matrix sentinel for "undefended");
* every ``supports_soa() = True`` claim is backed by an actual kernel: the
  scenario's compiled cache config must construct a
  :class:`~repro.cache.soa.SoACacheEngine`, and every mechanism listed in the
  defense layer's ``_SOA_KERNELS`` table must compile into a fragment the SoA
  engine accepts for each replacement policy it claims.

Findings point at the registering module rather than a line (registration is
dynamic), so the line number is 1 with the id in the message.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lint.findings import Finding

_RULE_DEFENSE = "registry.defense-id"
_RULE_SCENARIO = "registry.scenario-id"
_RULE_SOA = "registry.soa-claim"
_RULE_DRIVER = "registry.driver"

#: Rule ids this pass can emit, with the contract each protects (consumed by
#: ``--list-rules`` alongside the AST rule catalogue).
REGISTRY_RULES: Dict[str, str] = {
    _RULE_DEFENSE: ("every defense id referenced by a scenario or experiment "
                    "cell resolves in the defense registry"),
    _RULE_SCENARIO: ("every scenario id referenced by an experiment cell "
                     "resolves in the scenario registry"),
    _RULE_SOA: ("every supports_soa()=True claim maps to a cache config the "
                "SoA engine actually accepts"),
    _RULE_DRIVER: "every registered experiment's driver module imports",
}

#: Cell-grid keys that name a scenario / a defense.
_SCENARIO_KEYS = ("scenario", "scenario_id")
_DEFENSE_KEYS = ("defense", "defense_id")
#: Grid sentinel meaning "no defense" (the defense-matrix baseline column).
_NO_DEFENSE = "none"


def check_registries() -> List[Finding]:
    """Run the whole-program honesty pass; returns findings (empty = honest)."""
    # Importing repro registers the built-in scenario/defense/experiment
    # catalogues as a side effect — that is the program under test.
    import repro  # noqa: F401
    from repro.defenses import registry as defenses
    from repro.runs import registry as runs
    from repro.scenarios import registry as scenarios

    findings: List[Finding] = []
    findings.extend(_check_scenarios(scenarios, defenses))
    findings.extend(_check_experiments(runs, scenarios, defenses))
    findings.extend(_check_soa_kernel_table())
    return sorted(set(findings))


def _finding(rule: str, message: str, hint: str = "",
             path: str = "src/repro") -> Finding:
    return Finding(path=path, line=1, rule=rule, message=message, hint=hint)


def _check_scenarios(scenarios, defenses) -> List[Finding]:
    findings: List[Finding] = []
    for sid in scenarios.list_scenarios():
        spec = scenarios.resolve(sid)
        if isinstance(spec.defense, str):
            try:
                defenses.resolve_defense(spec.defense)
            except KeyError:
                findings.append(_finding(
                    _RULE_DEFENSE,
                    f"scenario {sid!r} names defense {spec.defense!r}, which "
                    "is not in the defense registry",
                    hint="register the defense or fix the id",
                    path="src/repro/scenarios"))
                continue
        findings.extend(_check_soa_claim(sid, spec))
    return findings


def _check_soa_claim(sid: str, spec) -> List[Finding]:
    """If the spec claims SoA support, its cache config must build an engine."""
    from repro.cache.soa import SoACacheEngine

    try:
        if not spec.supports_soa():
            return []
        config = spec.build_config()
        SoACacheEngine(config.cache, num_envs=2)
    except Exception as exc:  # any failure falsifies the claim
        return [_finding(
            _RULE_SOA,
            f"scenario {sid!r} claims supports_soa() but the SoA engine "
            f"rejects its cache config: {exc}",
            hint="fix the capability hook or add the missing SoA kernel",
            path="src/repro/scenarios")]
    return []


def _check_experiments(runs, scenarios, defenses) -> List[Finding]:
    findings: List[Finding] = []
    for eid in runs.list_experiments():
        spec = runs.resolve_experiment(eid)
        try:
            spec.resolve_driver()
        except Exception as exc:
            findings.append(_finding(
                _RULE_DRIVER,
                f"experiment {eid!r} driver {spec.driver!r} does not import: "
                f"{exc}",
                hint="fix the driver dotted path",
                path="src/repro/runs"))
            continue
        try:
            cells = spec.cells("smoke")
        except Exception as exc:
            findings.append(_finding(
                _RULE_DRIVER,
                f"experiment {eid!r} cannot expand its smoke-scale grid: {exc}",
                hint="fix the driver's cells(scale)",
                path="src/repro/runs"))
            continue
        for cell in cells:
            findings.extend(_check_cell(eid, cell, scenarios, defenses))
    return findings


def _check_cell(eid: str, cell: Dict, scenarios, defenses) -> List[Finding]:
    findings: List[Finding] = []
    for key in _SCENARIO_KEYS:
        sid = cell.get(key)
        if isinstance(sid, str) and not scenarios.is_registered(sid):
            findings.append(_finding(
                _RULE_SCENARIO,
                f"experiment {eid!r} cell names scenario {sid!r}, which is "
                "not in the scenario registry",
                hint="register the scenario or fix the grid",
                path="src/repro/runs"))
    for key in _DEFENSE_KEYS:
        did = cell.get(key)
        if isinstance(did, str) and did != _NO_DEFENSE \
                and not defenses.is_defense_registered(did):
            findings.append(_finding(
                _RULE_DEFENSE,
                f"experiment {eid!r} cell names defense {did!r}, which is "
                "not in the defense registry",
                hint="register the defense or fix the grid",
                path="src/repro/runs"))
    return findings


def _check_soa_kernel_table() -> List[Finding]:
    """Every ``_SOA_KERNELS`` entry must compile to an engine-accepted config."""
    from repro.cache.config import CacheConfig
    from repro.cache.soa import SoACacheEngine
    from repro.defenses.spec import _SOA_KERNELS, DefenseSpec

    findings: List[Finding] = []
    for kind, policies in _SOA_KERNELS.items():
        probe = DefenseSpec(defense_id=f"__lint_probe_{kind}", kind=kind)
        compiled = probe.compile(None)
        for policy in (policies or ("lru",)):
            overrides: Dict = dict(compiled.cache_overrides)
            extra = dict(overrides.pop("extra", {}) or {})
            try:
                config = CacheConfig(rep_policy=policy, extra=extra, **overrides)
                SoACacheEngine(config, num_envs=2)
            except Exception as exc:
                findings.append(_finding(
                    _RULE_SOA,
                    f"defense kind {kind!r} is listed in _SOA_KERNELS for "
                    f"policy {policy!r} but the SoA engine rejects it: {exc}",
                    hint="implement the kernel or drop the table entry",
                    path="src/repro/defenses"))
    return findings
