"""Determinism rules: all randomness flows through seeded Generator streams.

The reproduction's core claim — bit-identical attack traces across the object
and SoA cache engines, and across reruns — dies the moment any module pulls
entropy from process-global state.  These rules ban the three ways that
happens: numpy's module-level ``np.random.*`` functions (global
``RandomState``), the stdlib ``random`` module (global Mersenne Twister), and
argless ``np.random.default_rng()`` (OS entropy).  Wall-clock ``time.time()``
is banned alongside them: it is not random, but it leaks non-determinism into
anything that records or branches on it, and ``time.perf_counter()`` is the
correct duration clock anyway.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule, call_attribute_chain

#: np.random attributes that construct or name seeded generator machinery —
#: the *only* sanctioned uses of the ``np.random`` namespace.
_GENERATOR_FACTORIES = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
    "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: stdlib ``random`` attributes we flag when called on a ``random`` module
#: alias.  (Calling *any* attribute of the module is suspect, but enumerating
#: the API keeps ``random.Random(seed)`` — a seeded instance — legal.)
_STDLIB_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "seed", "getrandbits", "randbytes",
})


class NumpyModuleRandomRule(Rule):
    """``np.random.<fn>()`` module-level calls draw from hidden global state."""

    rule_id = "determinism.np-module-call"
    description = ("numpy module-level random functions (np.random.rand, "
                   "np.random.choice, ...) use the global RandomState")
    why = ("global-state draws make results depend on call order across the "
           "whole process, breaking object-vs-SoA bit parity and rerun "
           "reproducibility")
    hint = ("draw from a seeded np.random.Generator passed in via config "
            "(e.g. config.rng_seed -> np.random.default_rng(seed))")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_attribute_chain(node.func)
            if len(chain) == 3 and chain[0] in ctx.aliases_of("numpy") \
                    and chain[1] == "random" \
                    and chain[2] not in _GENERATOR_FACTORIES:
                findings.append(self.finding(
                    ctx, node,
                    f"module-level np.random.{chain[2]}() draws from numpy's "
                    "global RandomState"))
            elif len(chain) == 2 and chain[0] in ctx.aliases_of("numpy.random") \
                    and chain[1] not in _GENERATOR_FACTORIES:
                findings.append(self.finding(
                    ctx, node,
                    f"module-level numpy.random.{chain[1]}() draws from "
                    "numpy's global RandomState"))
        return findings


class UnseededRngRule(Rule):
    """Argless ``default_rng()`` seeds from the OS — different every run."""

    rule_id = "determinism.unseeded-rng"
    description = "np.random.default_rng() without a seed pulls OS entropy"
    why = ("an unseeded Generator gives a different stream every process, so "
           "any code path that falls back to one silently loses reproducibility")
    hint = ("thread a seeded Generator through, or fall back to "
            "repro.determinism.fallback_rng() (seeded, process-wide)")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            chain = call_attribute_chain(node.func)
            is_default_rng = (
                (len(chain) == 3 and chain[0] in ctx.aliases_of("numpy")
                 and chain[1:] == ["random", "default_rng"])
                or (len(chain) == 2 and chain[0] in ctx.aliases_of("numpy.random")
                    and chain[1] == "default_rng")
                or (len(chain) == 1
                    and ctx.from_import(chain[0]) == ("numpy.random", "default_rng"))
            )
            if is_default_rng:
                findings.append(self.finding(
                    ctx, node, "np.random.default_rng() with no seed pulls OS "
                               "entropy — unreproducible"))
        return findings


class StdlibRandomRule(Rule):
    """The stdlib ``random`` module is one shared, implicitly seeded stream."""

    rule_id = "determinism.stdlib-random"
    description = "stdlib random.* calls share one global Mersenne Twister"
    why = ("stdlib random state is process-global and seeded from the OS by "
           "default; even random.seed() cannot isolate concurrent users")
    hint = "use a seeded np.random.Generator from the config instead"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        random_names = ctx.aliases_of("random")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_attribute_chain(node.func)
            if len(chain) == 2 and chain[0] in random_names \
                    and chain[1] in _STDLIB_RANDOM_FNS:
                findings.append(self.finding(
                    ctx, node,
                    f"stdlib random.{chain[1]}() uses the global Mersenne "
                    "Twister"))
            elif len(chain) == 1 and ctx.from_import(chain[0])[0] == "random" \
                    and ctx.from_import(chain[0])[1] in _STDLIB_RANDOM_FNS:
                findings.append(self.finding(
                    ctx, node,
                    f"stdlib random.{ctx.from_import(chain[0])[1]}() uses the "
                    "global Mersenne Twister"))
        return findings


class WallClockRule(Rule):
    """``time.time()`` is a stepping wall clock; durations need perf_counter."""

    rule_id = "determinism.wall-clock"
    description = "time.time() used where a monotonic clock belongs"
    why = ("time.time() jumps under NTP steps and leaks wall-clock "
           "non-determinism into recorded results; time.perf_counter() is "
           "monotonic and higher-resolution")
    hint = "use time.perf_counter() for durations"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        time_names = ctx.aliases_of("time")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_attribute_chain(node.func)
            if len(chain) == 2 and chain[0] in time_names and chain[1] == "time":
                findings.append(self.finding(
                    ctx, node, "time.time() reads the stepping wall clock"))
            elif len(chain) == 1 and ctx.from_import(chain[0]) == ("time", "time"):
                findings.append(self.finding(
                    ctx, node, "time.time() reads the stepping wall clock"))
        return findings


RULES = (NumpyModuleRandomRule, UnseededRngRule, StdlibRandomRule, WallClockRule)
