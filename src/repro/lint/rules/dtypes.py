"""Dtype discipline: fused kernels take their float width from config.

The fused PPO losses (:mod:`repro.rl.fused_loss`) and the compiled forward
pass (:mod:`repro.nn.compiled`) are checked bit-for-bit against the autodiff
graph.  That parity only holds if every intermediate uses the dtype the
policy was built with — a stray ``np.float64`` literal silently upcasts one
term and the parity test starts failing at the last few ulps.  In the strict
modules (``dtype_strict`` in the lint config) this rule flags hard-coded
float dtype references: ``np.float32`` / ``np.float64`` / ``np.single`` /
``np.double`` attribute reads, and ``"float32"`` / ``"float64"`` string
constants used as ``dtype=`` arguments or ``astype`` targets.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule, call_attribute_chain

_FLOAT_ATTRS = frozenset({"float32", "float64", "single", "double", "half",
                          "float16", "longdouble"})
_FLOAT_STRINGS = frozenset({"float16", "float32", "float64"})


class DtypeLiteralRule(Rule):
    """No hard-coded float dtypes inside the fused numeric kernels."""

    rule_id = "dtype.literal"
    description = ("hard-coded float dtype (np.float32/np.float64/'float64') "
                   "in a dtype-strict module")
    why = ("fused kernels are bit-compared against the autodiff graph; a "
           "hard-coded width silently upcasts one intermediate and breaks "
           "parity at the ulp level")
    hint = "take the dtype from the policy/config (self.dtype) instead"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.config.dtype_strict_for(ctx.rel):
            return []
        findings: List[Finding] = []
        numpy_names = ctx.aliases_of("numpy")

        for node in ast.walk(ctx.tree):
            # np.float32 / np.double attribute references
            if isinstance(node, ast.Attribute) and node.attr in _FLOAT_ATTRS \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id in numpy_names:
                findings.append(self.finding(
                    ctx, node,
                    f"hard-coded np.{node.attr} in a dtype-strict module"))
            elif isinstance(node, ast.Call):
                chain = call_attribute_chain(node.func)
                # arr.astype("float64") / np.zeros(..., dtype="float32")
                string_args: List[ast.Constant] = []
                if chain and chain[-1] == "astype" and node.args:
                    arg = node.args[0]
                    if isinstance(arg, ast.Constant) \
                            and isinstance(arg.value, str) \
                            and arg.value in _FLOAT_STRINGS:
                        string_args.append(arg)
                for kw in node.keywords:
                    if kw.arg == "dtype" and isinstance(kw.value, ast.Constant) \
                            and isinstance(kw.value.value, str) \
                            and kw.value.value in _FLOAT_STRINGS:
                        string_args.append(kw.value)
                for arg in string_args:
                    findings.append(self.finding(
                        ctx, arg,
                        f"hard-coded dtype string {arg.value!r} in a "
                        "dtype-strict module"))
        return findings


RULES = (DtypeLiteralRule,)
