"""The rule catalogue: every AST rule plus the registry-honesty pass.

``ALL_RULES`` is the engine's source of truth.  New rules register by being
added to their family module's ``RULES`` tuple — the engine, CLI
``--list-rules``, and the docs all read from here.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

from repro.lint.rules import (artifacts, determinism, dtypes, hotpath, specs,
                              telemetry)
from repro.lint.rules.base import FileContext, Rule
from repro.lint.rules.honesty import REGISTRY_RULES, check_registries

#: Every per-file AST rule class, grouped by family module.
ALL_RULES: Tuple[Type[Rule], ...] = (
    determinism.RULES + hotpath.RULES + specs.RULES + dtypes.RULES
    + artifacts.RULES + telemetry.RULES
)


def instantiate_rules() -> List[Rule]:
    """Fresh rule instances for one engine run."""
    return [cls() for cls in ALL_RULES]


def rule_catalogue() -> Dict[str, str]:
    """``rule_id -> why`` for every rule, AST and registry alike."""
    catalogue = {cls.rule_id: cls.why for cls in ALL_RULES}
    catalogue.update(REGISTRY_RULES)
    return catalogue


__all__ = [
    "ALL_RULES",
    "FileContext",
    "REGISTRY_RULES",
    "Rule",
    "check_registries",
    "instantiate_rules",
    "rule_catalogue",
]
