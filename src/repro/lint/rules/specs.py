"""Spec immutability rules: ``*Spec`` dataclasses are frozen value objects.

Scenario/defense/experiment specs are the repo's addressing scheme — they
round-trip through JSON, key registries, and name run artifacts.  A mutable
spec means a registry entry can drift from the artifact written under its id.
Two rules keep them honest: every ``*Spec`` dataclass must declare
``frozen=True``, and nothing outside a spec class may assign attributes on a
spec instance (the sanctioned mutation paths are ``dataclasses.replace`` and
the spec's own ``with_overrides``; ``object.__setattr__`` is legal only
inside a ``*Spec`` class's ``__post_init__``).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule, call_attribute_chain


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.AST]:
    """The @dataclass / @dataclasses.dataclass decorator node, if present."""
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        chain = call_attribute_chain(target) or (
            [target.id] if isinstance(target, ast.Name) else [])
        if chain and chain[-1] == "dataclass":
            return dec
    return None


def _is_frozen(dec: ast.AST) -> bool:
    if not isinstance(dec, ast.Call):
        return False
    for kw in dec.keywords:
        if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


def _spec_classes(tree: ast.Module) -> Iterable[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name.endswith("Spec"):
            yield node


def _nodes_under_spec_classes(tree: ast.Module) -> Set[int]:
    inside: Set[int] = set()
    for cls in _spec_classes(tree):
        for sub in ast.walk(cls):
            inside.add(id(sub))
    return inside


def _looks_like_spec_name(name: str) -> bool:
    return name == "spec" or name.lower().endswith("spec")


class SpecNotFrozenRule(Rule):
    """Every ``*Spec`` dataclass must be declared ``frozen=True``."""

    rule_id = "spec.not-frozen"
    description = "*Spec dataclass without frozen=True"
    why = ("specs key registries and run artifacts; a mutable spec lets a "
           "registry entry drift from the artifacts written under its id")
    hint = "declare @dataclass(frozen=True) and mutate via replace()/with_overrides()"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for cls in _spec_classes(ctx.tree):
            dec = _dataclass_decorator(cls)
            if dec is None:
                continue  # not a dataclass — the convention targets dataclasses
            if not _is_frozen(dec):
                findings.append(self.finding(
                    ctx, cls,
                    f"dataclass {cls.name} matches the *Spec convention but "
                    "is not frozen=True"))
        return findings


class SpecMutationRule(Rule):
    """No attribute assignment on spec instances outside the spec class."""

    rule_id = "spec.mutation"
    description = "attribute assignment on a spec instance"
    why = ("even when frozen=True blocks it at runtime, object.__setattr__ "
           "and pre-freeze assignment patterns bypass the contract silently")
    hint = "use dataclasses.replace(spec, ...) or spec.with_overrides(...)"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        in_spec_class = _nodes_under_spec_classes(ctx.tree)

        for node in ast.walk(ctx.tree):
            if id(node) in in_spec_class:
                continue
            # spec.field = value  /  spec.field += value
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and _looks_like_spec_name(target.value.id):
                    findings.append(self.finding(
                        ctx, node,
                        f"assignment to {target.value.id}.{target.attr} "
                        "mutates a spec instance"))
            # object.__setattr__(spec, ...) outside a *Spec class
            if isinstance(node, ast.Call):
                chain = call_attribute_chain(node.func)
                if chain == ["object", "__setattr__"] and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Name) \
                            and _looks_like_spec_name(first.id):
                        findings.append(self.finding(
                            ctx, node,
                            f"object.__setattr__({first.id}, ...) bypasses "
                            "the frozen-spec contract"))
        return findings


RULES = (SpecNotFrozenRule, SpecMutationRule)
