"""Process-wide seeded fallback Generator for optional-``rng`` APIs.

Many constructors take ``rng: Optional[np.random.Generator] = None`` for
convenience (quick scripts, tests, REPL use).  The old fallback was
``np.random.default_rng()`` — fresh OS entropy per call, so any code path
that hit it silently lost reproducibility.  :func:`fallback_rng` replaces
that: one lazily created Generator, seeded with a fixed constant, shared by
every call site in the process.  Sharing one stream (rather than seeding a
fresh Generator per call) keeps consecutive fallback draws distinct — two
bare ``Linear`` layers built back-to-back still get different weights — while
the whole sequence stays bit-reproducible run to run.

Code on the training path should never reach this: trainers and envs thread
explicitly seeded Generators from their configs.  The fallback exists so the
*unconfigured* path is deterministic too.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Seed for the process-wide fallback stream.  Fixed by design: the point is
#: that unseeded use is reproducible, not configurable.
FALLBACK_SEED = 0

_fallback: Optional[np.random.Generator] = None


def fallback_rng() -> np.random.Generator:
    """The process-wide seeded Generator used when no ``rng`` is passed."""
    global _fallback
    if _fallback is None:
        _fallback = np.random.default_rng(FALLBACK_SEED)
    return _fallback


def reset_fallback_rng() -> None:
    """Rewind the fallback stream to its initial state (for tests)."""
    global _fallback
    _fallback = None
