"""Channel and attack quality metrics."""

from __future__ import annotations

from typing import Sequence


def hamming_distance(sent: Sequence[int], received: Sequence[int]) -> int:
    """Number of differing bit positions (the paper's error metric)."""
    if len(sent) != len(received):
        raise ValueError("bit strings must have equal length")
    return sum(1 for a, b in zip(sent, received) if int(a) != int(b))


def bit_rate(guesses: int, steps: int) -> float:
    """Guesses per step — the bit-rate metric of Tables VIII and IX."""
    if steps <= 0:
        raise ValueError("steps must be positive")
    return guesses / steps


def guess_accuracy(correct: int, guesses: int) -> float:
    """Fraction of correct guesses (0.0 when no guess was made)."""
    if guesses < 0 or correct < 0 or correct > guesses:
        raise ValueError("invalid guess counts")
    if guesses == 0:
        return 0.0
    return correct / guesses
