"""Defense-evaluation metrics and matrix rendering.

Helpers behind the ``defense_matrix`` experiment: an information-theoretic
leakage estimate per guessing episode, and a scenario x defense pivot of the
campaign rows (the attacker-vs-defense evaluation matrix).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


def guess_channel_bits(accuracy: float, num_secrets: int) -> float:
    """Leaked bits per guessing episode, from the attacker's guess accuracy.

    Models one episode as a symmetric channel over ``num_secrets`` equiprobable
    secrets and applies Fano's bound: with error rate ``e = 1 - accuracy``,

        I >= log2(M) - H(e) - e * log2(M - 1)

    clamped to ``[0, log2(M)]``.  At-or-below-chance accuracy (``<= 1/M``,
    including an attacker that never guesses) reports 0 bits; a perfect
    attacker leaks the full ``log2(M)`` bits per episode.
    """
    M = int(num_secrets)
    if M < 2:
        return 0.0
    if accuracy <= 1.0 / M:
        return 0.0
    p = min(max(float(accuracy), 1e-12), 1.0 - 1e-12)
    error = 1.0 - p
    entropy = -(p * math.log2(p) + error * math.log2(error))
    info = math.log2(M) - entropy - (error * math.log2(M - 1) if M > 2 else 0.0)
    return max(0.0, min(info, math.log2(M)))


def pivot_matrix(rows: Sequence[Dict], value: str = "accuracy",
                 scenario_key: str = "scenario",
                 defense_key: str = "defense") -> str:
    """Render campaign rows as a scenario-by-defense text matrix.

    ``rows`` are ``defense_matrix`` result rows (one per cell); ``value``
    selects the metric to pivot.  Missing cells render as ``-``.
    """
    scenarios: List[str] = []
    defenses: List[str] = []
    cells: Dict[tuple, str] = {}
    for row in rows:
        scenario = str(row.get(scenario_key, "?"))
        defense = str(row.get(defense_key, "?"))
        if scenario not in scenarios:
            scenarios.append(scenario)
        if defense not in defenses:
            defenses.append(defense)
        cell = row.get(value)
        cells[(scenario, defense)] = (f"{cell:.3f}" if isinstance(cell, float)
                                      else str(cell) if cell is not None else "-")
    header = [f"{value} \\ defense"] + defenses
    table = [[scenario] + [cells.get((scenario, defense), "-")
                           for defense in defenses]
             for scenario in scenarios]
    widths = [max(len(header[i]), *(len(r[i]) for r in table)) if table
              else len(header[i]) for i in range(len(header))]
    lines = ["  ".join(header[i].ljust(widths[i]) for i in range(len(header))),
             "  ".join("-" * widths[i] for i in range(len(header)))]
    for row_cells in table:
        lines.append("  ".join(row_cells[i].ljust(widths[i])
                               for i in range(len(header))))
    return "\n".join(lines)
