"""Rule-based classification of attack sequences into known categories.

The paper classifies the sequences AutoCAT finds by hand (Tables III and IV
report an "Attack Category" per sequence).  This classifier automates the same
judgement with rules over the action structure:

* uses flush before the trigger and reloads shared lines after -> flush+reload;
* accesses shared (victim-reachable) lines after the trigger without flushing
  -> evict+reload (when it evicted them first) or an LRU-state attack (when
  the accesses before the trigger cannot have evicted the victim's line);
* re-accesses only its own, disjoint lines after the trigger -> prime+probe;
* fewer pre-trigger accesses than the associativity (so the victim line cannot
  have been evicted) -> LRU-state attack.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.attacks.sequences import AttackCategory, AttackSequence
from repro.env.actions import ActionKind
from repro.env.config import EnvConfig


def _split_by_trigger(sequence: AttackSequence) -> tuple:
    """Actions before the first trigger and (non-trigger) actions after it.

    RL-found sequences sometimes contain redundant extra triggers; the probes
    that matter are everything the attacker does after the victim first ran.
    """
    kinds = [action.kind for action in sequence.actions]
    if ActionKind.TRIGGER not in kinds:
        return sequence.actions, []
    first = kinds.index(ActionKind.TRIGGER)
    after = [action for action in sequence.actions[first + 1:]
             if action.kind is not ActionKind.TRIGGER]
    return sequence.actions[:first], after


def classify_sequence(sequence: AttackSequence, config: EnvConfig) -> AttackCategory:
    """Assign an attack category to a sequence found for ``config``."""
    before, after = _split_by_trigger(sequence)
    if sequence.trigger_count == 0:
        return AttackCategory.UNKNOWN

    shared = set(config.shared_addresses)
    num_ways = config.cache.num_ways

    flushed_shared = {action.address for action in before
                      if action.kind is ActionKind.FLUSH and action.address in shared}
    accessed_before = [action.address for action in before
                       if action.kind is ActionKind.ACCESS]
    accessed_after = [action.address for action in after
                      if action.kind is ActionKind.ACCESS]
    reloads_shared = any(address in shared for address in accessed_after)

    if flushed_shared and reloads_shared:
        return AttackCategory.FLUSH_RELOAD

    if reloads_shared:
        # Shared lines are re-accessed after the victim ran.  If the attacker
        # could have evicted the victim's line beforehand (enough distinct
        # accesses to fill the set), this is evict+reload; otherwise the leak
        # must come through the replacement state.
        distinct_before = len(set(accessed_before))
        if distinct_before >= num_ways:
            return AttackCategory.EVICT_RELOAD
        return AttackCategory.LRU_STATE

    probes_own = [address for address in accessed_after if address not in shared]
    primed_own = [address for address in accessed_before if address not in shared]
    if probes_own and primed_own:
        reprobed = set(probes_own) & set(primed_own)
        if reprobed and len(set(primed_own)) >= num_ways:
            return AttackCategory.PRIME_PROBE
        if reprobed:
            return AttackCategory.LRU_STATE
        return AttackCategory.PRIME_PROBE
    if probes_own:
        return AttackCategory.LRU_STATE
    return AttackCategory.UNKNOWN


def classify_labels(labels: Sequence[str], config: EnvConfig) -> AttackCategory:
    """Classify a sequence given in the paper's compact label notation."""
    return classify_sequence(AttackSequence.from_labels(labels), config)
