"""Search-space analysis: RL versus brute-force search (Sec. VI-A).

The paper estimates that finding one prime+probe sequence on an N-way set by
unguided sampling requires on average M = 2 (N+1)^(2N+1) / (N!)^2 candidate
sequences, each of which takes 2N+2 steps to evaluate — about 369 million
steps for N = 8, versus roughly one million steps for the RL agent.
"""

from __future__ import annotations

import math
from typing import Dict


def prime_probe_search_space(num_ways: int) -> float:
    """Expected number of random sequences before hitting a prime+probe attack."""
    if num_ways < 1:
        raise ValueError("num_ways must be >= 1")
    n = num_ways
    return 2.0 * (n + 1) ** (2 * n + 1) / (math.factorial(n) ** 2)


def brute_force_steps_estimate(num_ways: int) -> float:
    """Expected environment steps for the brute-force search (each try is 2N+2 steps)."""
    return prime_probe_search_space(num_ways) * (2 * num_ways + 2)


def rl_vs_brute_force(num_ways: int, rl_steps: float = 1e6) -> Dict[str, float]:
    """Compare the brute-force estimate against a measured/assumed RL step count."""
    brute = brute_force_steps_estimate(num_ways)
    return {
        "num_ways": num_ways,
        "brute_force_sequences": prime_probe_search_space(num_ways),
        "brute_force_steps": brute,
        "rl_steps": rl_steps,
        "speedup": brute / rl_steps if rl_steps > 0 else float("inf"),
    }
