"""Autocorrelogram analysis of conflict-event trains (Figure 3)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.detection.autocorrelation import autocorrelogram


def event_train_autocorrelogram(train: Sequence[int], max_lag: int = 30) -> Dict:
    """Figure-3 style summary of one conflict-event train."""
    series = list(train)
    coefficients = autocorrelogram(series, max_lag=min(max_lag, max(len(series) - 1, 0)))
    beyond_zero = coefficients[1:] if len(coefficients) > 1 else []
    return {
        "train": series,
        "length": len(series),
        "autocorrelogram": coefficients,
        "max_beyond_lag_zero": max(beyond_zero) if beyond_zero else 0.0,
    }
