"""Attack-sequence analysis: classification, metrics, and search-space estimates."""

from repro.analysis.classifier import classify_sequence, classify_labels
from repro.analysis.autocorrelogram import event_train_autocorrelogram
from repro.analysis.defenses import guess_channel_bits, pivot_matrix
from repro.analysis.metrics import bit_rate, guess_accuracy, hamming_distance
from repro.analysis.search_space import (
    prime_probe_search_space,
    brute_force_steps_estimate,
)

__all__ = [
    "classify_sequence",
    "classify_labels",
    "event_train_autocorrelogram",
    "bit_rate",
    "guess_accuracy",
    "guess_channel_bits",
    "hamming_distance",
    "pivot_matrix",
    "prime_probe_search_space",
    "brute_force_steps_estimate",
]
