"""Covert-channel timing model for the real-machine bit-rate experiments.

The paper demonstrates the StealthyStreamline covert channel on four Intel
machines by embedding the attack sequence into an assembly template and
measuring bit rate vs. error rate (Table X, Figure 5).  Without the hardware,
this module models the time and error behaviour of one transmitted symbol:

* every access in the symbol's sequence costs ``access_cycles``;
* accesses whose latency must be *measured* additionally cost
  ``measure_cycles`` (timing a load is much more expensive than the load);
* each symbol pays a fixed synchronization/loop overhead;
* every measured access misclassifies hit-vs-miss with a noise-dependent
  probability, producing symbol (and therefore bit) errors.

The StealthyStreamline advantage — measuring only 4 of the W+2 accesses per
2-bit symbol, versus the LRU address-based channel measuring nearly all of
them — falls directly out of this model, and grows with associativity, which
is the paper's central real-machine finding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hardware.machines import MachineSpec


@dataclass
class TimingParameters:
    """Per-symbol cost model of a covert-channel transmission scheme."""

    bits_per_symbol: int
    total_accesses: int
    measured_accesses: int

    def __post_init__(self) -> None:
        if self.measured_accesses > self.total_accesses:
            raise ValueError("cannot measure more accesses than are performed")
        if self.bits_per_symbol < 1:
            raise ValueError("bits_per_symbol must be >= 1")

    @classmethod
    def stealthy_streamline(cls, num_ways: int, bits_per_symbol: int = 2) -> "TimingParameters":
        """StealthyStreamline: W+2 accesses per symbol, only 4 measured."""
        return cls(bits_per_symbol=bits_per_symbol,
                   total_accesses=num_ways + 2,
                   measured_accesses=4)

    @classmethod
    def lru_address_based(cls, num_ways: int, bits_per_symbol: int = 2) -> "TimingParameters":
        """LRU address-based channel: W+2 accesses, nearly all of them measured."""
        return cls(bits_per_symbol=bits_per_symbol,
                   total_accesses=num_ways + 2,
                   measured_accesses=max(4, num_ways - 2))


@dataclass
class CovertChannelTimingModel:
    """Bit-rate and error-rate model of a covert channel on one machine."""

    machine: MachineSpec
    seed: int = 0

    def __post_init__(self) -> None:
        self.rng = np.random.default_rng(self.seed)

    # ---------------------------------------------------------------- timing
    def cycles_per_symbol(self, parameters: TimingParameters) -> float:
        unmeasured = parameters.total_accesses - parameters.measured_accesses
        return (unmeasured * self.machine.access_cycles
                + parameters.measured_accesses * (self.machine.access_cycles
                                                  + self.machine.measure_cycles)
                + self.machine.symbol_overhead_cycles)

    def bit_rate_mbps(self, parameters: TimingParameters, repetitions: int = 1) -> float:
        """Raw bit rate in Mbit/s when each symbol is sent ``repetitions`` times."""
        cycles = self.cycles_per_symbol(parameters) * repetitions
        seconds_per_symbol = cycles / (self.machine.frequency_ghz * 1e9)
        return parameters.bits_per_symbol / seconds_per_symbol / 1e6

    # ----------------------------------------------------------------- errors
    def _measurement_flip_probability(self, noise_scale: float) -> float:
        return min(0.45, self.machine.noise_probability * noise_scale)

    def symbol_error_probability(self, parameters: TimingParameters,
                                 repetitions: int = 1, noise_scale: float = 1.0) -> float:
        """Probability a symbol is decoded incorrectly (with majority voting)."""
        flip = self._measurement_flip_probability(noise_scale)
        single = 1.0 - (1.0 - flip) ** parameters.measured_accesses
        if repetitions <= 1:
            return single
        # Majority vote over an odd number of repetitions.
        votes = repetitions if repetitions % 2 == 1 else repetitions + 1
        needed = votes // 2 + 1
        error = 0.0
        for wrong in range(needed, votes + 1):
            error += (math.comb(votes, wrong) * single ** wrong
                      * (1.0 - single) ** (votes - wrong))
        return float(error)

    def simulate_transmission(self, parameters: TimingParameters, message_bits: int = 2048,
                              repetitions: int = 1, noise_scale: float = 1.0,
                              rng: Optional[np.random.Generator] = None) -> dict:
        """Monte-Carlo transmission of a random message; return bit rate and error rate.

        Mirrors the paper's methodology: send a 2048-bit random string, time
        it, and compute the Hamming-distance error rate of the received
        message.
        """
        rng = rng or self.rng
        symbols = int(np.ceil(message_bits / parameters.bits_per_symbol))
        symbol_error = self.symbol_error_probability(parameters, repetitions=repetitions,
                                                     noise_scale=noise_scale)
        errored_symbols = rng.random(symbols) < symbol_error
        # A wrong symbol corrupts on average half of its bits.
        bit_errors = 0
        for wrong in errored_symbols:
            if wrong:
                bit_errors += 1 + int(rng.integers(parameters.bits_per_symbol))
        bit_errors = min(bit_errors, message_bits)
        cycles = self.cycles_per_symbol(parameters) * repetitions * symbols
        seconds = cycles / (self.machine.frequency_ghz * 1e9)
        return {
            "machine": self.machine.name,
            "bits_sent": message_bits,
            "seconds": seconds,
            "bit_rate_mbps": message_bits / seconds / 1e6,
            "error_rate": bit_errors / message_bits,
            "repetitions": repetitions,
        }

    def bit_rate_error_curve(self, parameters: TimingParameters, message_bits: int = 2048,
                             noise_scales=(0.5, 1.0, 2.0, 4.0, 8.0),
                             trials: int = 5) -> list:
        """Sweep operating points (noise scales) to produce a bit-rate vs error curve.

        Higher noise scales model more aggressive, less calibrated operation;
        each point is averaged over ``trials`` transmissions, and the spread of
        the error rate across trials gives the Figure-5 error bars.
        """
        curve = []
        for noise_scale in noise_scales:
            runs = [self.simulate_transmission(parameters, message_bits=message_bits,
                                               noise_scale=noise_scale,
                                               rng=np.random.default_rng(self.seed + trial))
                    for trial in range(trials)]
            error_rates = [run["error_rate"] for run in runs]
            curve.append({
                "noise_scale": noise_scale,
                "bit_rate_mbps": float(np.mean([run["bit_rate_mbps"] for run in runs])),
                "error_rate_mean": float(np.mean(error_rates)),
                "error_rate_min": float(np.min(error_rates)),
                "error_rate_max": float(np.max(error_rates)),
            })
        return curve
