"""Registry of simulated machines (Tables III and X of the paper).

Each :class:`MachineSpec` describes one cache level of one processor: the
associativity that is architecturally visible, the *hidden* replacement policy
(marked "not officially documented" in the paper for L2/L3), the measurement
noise level, and the timing parameters used by the covert-channel model.  The
hidden policy is intentionally not exposed through the blackbox interface —
the RL agent must cope without it, exactly as on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class MachineSpec:
    """One cache level of one simulated processor."""

    name: str
    microarchitecture: str
    cache_level: str
    num_ways: int
    hidden_policy: str
    documented_policy: Optional[str]
    noise_probability: float
    frequency_ghz: float
    access_cycles: float
    measure_cycles: float
    symbol_overhead_cycles: float = 60.0
    l1d_size_kb: Optional[int] = None
    operating_system: str = "Linux"
    notes: str = ""

    @property
    def policy_is_documented(self) -> bool:
        return self.documented_policy is not None

    @property
    def key(self) -> str:
        return f"{self.name}:{self.cache_level}"


def _spec(**kwargs) -> MachineSpec:
    return MachineSpec(**kwargs)


# Table III machines (attack exploration targets).
_TABLE3: List[MachineSpec] = [
    _spec(name="Core i7-6700", microarchitecture="SkyLake", cache_level="L1",
          num_ways=8, hidden_policy="plru", documented_policy="plru",
          noise_probability=0.005, frequency_ghz=3.4, access_cycles=4.0,
          measure_cycles=24.0, l1d_size_kb=32),
    _spec(name="Core i7-6700", microarchitecture="SkyLake", cache_level="L2",
          num_ways=4, hidden_policy="rrip", documented_policy=None,
          noise_probability=0.01, frequency_ghz=3.4, access_cycles=12.0,
          measure_cycles=40.0, notes="policy not officially documented"),
    _spec(name="Core i7-6700", microarchitecture="SkyLake", cache_level="L3",
          num_ways=4, hidden_policy="rrip", documented_policy=None,
          noise_probability=0.01, frequency_ghz=3.4, access_cycles=30.0,
          measure_cycles=70.0, notes="4-way partition via Intel CAT"),
    _spec(name="Core i7-7700K", microarchitecture="KabyLake", cache_level="L3",
          num_ways=4, hidden_policy="rrip", documented_policy=None,
          noise_probability=0.01, frequency_ghz=4.2, access_cycles=30.0,
          measure_cycles=70.0, notes="4-way partition via Intel CAT"),
    _spec(name="Core i7-7700K", microarchitecture="KabyLake", cache_level="L3-8way",
          num_ways=8, hidden_policy="rrip", documented_policy=None,
          noise_probability=0.015, frequency_ghz=4.2, access_cycles=30.0,
          measure_cycles=70.0, notes="8-way partition via Intel CAT"),
    _spec(name="Core i7-9700", microarchitecture="CoffeeLake", cache_level="L1",
          num_ways=8, hidden_policy="plru", documented_policy="plru",
          noise_probability=0.005, frequency_ghz=3.0, access_cycles=4.0,
          measure_cycles=24.0, l1d_size_kb=32),
    _spec(name="Core i7-9700", microarchitecture="CoffeeLake", cache_level="L2",
          num_ways=4, hidden_policy="rrip", documented_policy=None,
          noise_probability=0.01, frequency_ghz=3.0, access_cycles=12.0,
          measure_cycles=40.0, notes="policy not officially documented"),
]

# Table X machines (covert-channel bit-rate measurements, L1D).  The access
# and measurement cycle costs are calibrated so the timing model lands close
# to the paper's reported Mbit/s numbers; each "access" models a dependent
# pointer-chasing load plus loop overhead, and "measure" is the extra cost of
# serializing timers (RDTSCP) around a load.
_TABLE10: List[MachineSpec] = [
    _spec(name="Xeon E5-2687W v2", microarchitecture="IvyBridge", cache_level="L1D",
          num_ways=8, hidden_policy="plru", documented_policy="plru",
          noise_probability=0.008, frequency_ghz=3.4, access_cycles=46.0,
          measure_cycles=106.0, symbol_overhead_cycles=0.0, l1d_size_kb=32,
          operating_system="Ubuntu18"),
    _spec(name="Core i7-6700", microarchitecture="SkyLake", cache_level="L1D",
          num_ways=8, hidden_policy="plru", documented_policy="plru",
          noise_probability=0.01, frequency_ghz=3.4, access_cycles=85.0,
          measure_cycles=166.0, symbol_overhead_cycles=0.0, l1d_size_kb=32,
          operating_system="Ubuntu18"),
    _spec(name="Core i5-11600K", microarchitecture="RocketLake", cache_level="L1D",
          num_ways=12, hidden_policy="plru", documented_policy="plru",
          noise_probability=0.01, frequency_ghz=3.9, access_cycles=54.0,
          measure_cycles=153.0, symbol_overhead_cycles=0.0, l1d_size_kb=48,
          operating_system="CentOS8"),
    _spec(name="Xeon W-1350P", microarchitecture="RocketLake", cache_level="L1D",
          num_ways=12, hidden_policy="plru", documented_policy="plru",
          noise_probability=0.012, frequency_ghz=4.0, access_cycles=81.0,
          measure_cycles=256.0, symbol_overhead_cycles=0.0, l1d_size_kb=48,
          operating_system="Ubuntu20"),
]


MACHINES: Dict[str, MachineSpec] = {spec.key: spec for spec in _TABLE3 + _TABLE10}

TABLE3_MACHINES: List[MachineSpec] = list(_TABLE3)
TABLE10_MACHINES: List[MachineSpec] = list(_TABLE10)


def list_machines() -> List[str]:
    """Keys of all registered machines ("name:level")."""
    return sorted(MACHINES)


def get_machine(key: str) -> MachineSpec:
    """Look up a machine by its "name:level" key."""
    if key not in MACHINES:
        raise KeyError(f"unknown machine {key!r}; known: {list_machines()}")
    return MACHINES[key]


def get_table10_machine(name: str) -> MachineSpec:
    """Look up a Table X machine by its bare CPU name (all are L1D models)."""
    for spec in TABLE10_MACHINES:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown Table X machine {name!r}; "
                   f"known: {[spec.name for spec in TABLE10_MACHINES]}")
