"""CacheQuery-style batched query interface.

CacheQuery (Vila et al., PLDI 2020) lets an experimenter submit a sequence of
accesses to one cache set of a real processor and get back the measured
latencies.  The paper trains on real hardware by executing *whole episodes as
a batch* and revealing the latencies only afterwards (Sec. IV-C).  This module
reproduces that interface on top of the blackbox machine models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.blackbox import BlackboxCache
from repro.hardware.machines import MachineSpec


@dataclass
class QueryResult:
    """Result of one batched query: per-access observed hit/miss and latency."""

    sequence: List[Tuple[str, int]]
    hits: List[Optional[bool]]
    latencies: List[Optional[float]]

    def hit_pattern(self) -> str:
        """Compact string such as "HMH-" (H=hit, M=miss, -=not measured)."""
        symbols = []
        for hit in self.hits:
            if hit is None:
                symbols.append("-")
            else:
                symbols.append("H" if hit else "M")
        return "".join(symbols)


class CacheQueryInterface:
    """Batched single-set access interface over a blackbox machine."""

    def __init__(self, spec: MachineSpec, rng: Optional[np.random.Generator] = None):
        self.spec = spec
        self.rng = rng or np.random.default_rng(0)
        self.blackbox = BlackboxCache(spec, rng=self.rng)

    def reset(self) -> None:
        self.blackbox.reset()

    def run_batch(self, sequence: Sequence[Tuple[str, int]],
                  measure_attacker_only: bool = True,
                  reset_before: bool = True) -> QueryResult:
        """Execute a (domain, address) sequence; reveal latencies afterwards.

        Victim accesses are executed but their latency is masked (None) when
        ``measure_attacker_only`` is set, matching the paper's threat model.
        """
        if reset_before:
            self.reset()
        hits: List[Optional[bool]] = []
        latencies: List[Optional[float]] = []
        for domain, address in sequence:
            hit, latency = self.blackbox.timed_access(address, domain=domain)
            if domain != "attacker" and measure_attacker_only:
                hits.append(None)
                latencies.append(None)
            else:
                hits.append(hit)
                latencies.append(latency)
        return QueryResult(sequence=list(sequence), hits=hits, latencies=latencies)

    def measure_eviction(self, prime_addresses: Sequence[int], probe_address: int,
                         victim_address: Optional[int] = None, repeats: int = 10) -> float:
        """Fraction of repeats in which ``probe_address`` missed after the victim ran.

        A convenience used when reverse-engineering a set's behaviour by hand,
        mirroring how CacheQuery is used in practice.
        """
        misses = 0
        for _ in range(repeats):
            sequence: List[Tuple[str, int]] = [("attacker", a) for a in prime_addresses]
            if victim_address is not None:
                sequence.append(("victim", victim_address))
            sequence.append(("attacker", probe_address))
            result = self.run_batch(sequence)
            final_hit = result.hits[-1]
            if final_hit is False:
                misses += 1
        return misses / repeats
