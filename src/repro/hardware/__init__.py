"""Simulated real-hardware substitutes.

The paper runs AutoCAT against real Intel processors through CacheQuery and
demonstrates covert channels with a hand-written assembly template.  Neither
real hardware nor CacheQuery is available offline, so this package provides
blackbox cache models with *hidden* (undocumented) replacement policies,
measurement noise, a CacheQuery-style batched single-set query interface, and
a covert-channel timing model of the four machines in Table X.  The agent-side
code path is identical: it only observes noisy hit/miss latencies.
"""

from repro.hardware.machines import MachineSpec, MACHINES, get_machine, list_machines
from repro.hardware.blackbox import BlackboxCache, BlackboxCacheBackend
from repro.hardware.cachequery import CacheQueryInterface, QueryResult
from repro.hardware.timing import CovertChannelTimingModel, TimingParameters

__all__ = [
    "MachineSpec",
    "MACHINES",
    "get_machine",
    "list_machines",
    "BlackboxCache",
    "BlackboxCacheBackend",
    "CacheQueryInterface",
    "QueryResult",
    "CovertChannelTimingModel",
    "TimingParameters",
]
