"""Blackbox cache models standing in for real processors.

A :class:`BlackboxCache` wraps a software cache configured from a
:class:`MachineSpec` but only exposes what real hardware exposes: timed
accesses to one cache set, with measurement noise that occasionally flips the
observed hit/miss outcome.  The hidden replacement policy is not reachable
through the public interface.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.cache import Cache
from repro.cache.config import CacheConfig
from repro.cache.events import EventLog
from repro.env.backends import CacheBackend
from repro.hardware.machines import MachineSpec


class BlackboxCache:
    """One cache set of a simulated processor, observed through noisy timing."""

    def __init__(self, spec: MachineSpec, rng: Optional[np.random.Generator] = None):
        self.spec = spec
        self.rng = rng or np.random.default_rng(0)
        config = CacheConfig.fully_associative(
            num_ways=spec.num_ways,
            rep_policy=spec.hidden_policy,
            hit_latency=max(1, int(round(spec.access_cycles))),
            miss_latency=max(2, int(round(spec.access_cycles * 6))),
        )
        self._cache = Cache(config, rng=self.rng)

    @property
    def num_ways(self) -> int:
        return self.spec.num_ways

    def reset(self) -> None:
        self._cache.reset()

    def _noisy(self, hit: bool) -> bool:
        if self.rng.random() < self.spec.noise_probability:
            return not hit
        return hit

    def timed_access(self, address: int, domain: str = "attacker") -> tuple:
        """Access ``address`` and return (observed_hit, latency_cycles).

        The observed outcome includes measurement noise: with probability
        ``noise_probability`` the hit/miss classification is flipped, as
        happens on real machines due to interference and timer jitter.
        """
        result = self._cache.access(address, domain=domain)
        observed_hit = self._noisy(result.hit)
        base = self.spec.access_cycles if observed_hit else self.spec.access_cycles * 6
        jitter = self.rng.normal(0.0, 0.5)
        return observed_hit, max(1.0, base + jitter)

    def flush(self, address: int) -> None:
        self._cache.flush(address)

    @property
    def events(self) -> EventLog:
        return self._cache.events

    def true_contents(self) -> list:
        """Ground-truth contents — available to tests only, never to the agent."""
        return self._cache.contents()


class BlackboxCacheBackend(CacheBackend):
    """Adapt a :class:`BlackboxCache` to the environment's backend interface."""

    def __init__(self, spec: MachineSpec, rng: Optional[np.random.Generator] = None,
                 flush_supported: bool = False):
        self.blackbox = BlackboxCache(spec, rng=rng)
        self.flush_supported = flush_supported

    def reset(self) -> None:
        self.blackbox.reset()

    def access(self, address: int, domain: str) -> tuple:
        hit, latency = self.blackbox.timed_access(address, domain=domain)
        return hit, int(round(latency))

    def flush(self, address: int, domain: str) -> None:
        if not self.flush_supported:
            # clflush is not part of the CacheQuery-style interface; ignore it.
            return
        self.blackbox.flush(address)

    @property
    def events(self) -> EventLog:
        return self.blackbox.events
