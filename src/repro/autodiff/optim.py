"""Gradient-descent optimizers for :class:`repro.autodiff.Tensor` parameters."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.autodiff.tensor import Tensor


class Optimizer:
    """Base class: holds parameters and clears their gradients."""

    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------- state I/O
    def state_dict(self) -> dict:
        """Serializable internal state (slot buffers, step counts)."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore internal state captured by :meth:`state_dict`."""
        if state:
            raise ValueError(f"unexpected optimizer state: {sorted(state)}")

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip gradients in place to a global L2 norm; return the pre-clip norm."""
        total = 0.0
        for parameter in self.parameters:
            if parameter.grad is not None:
                total += float(np.sum(parameter.grad ** 2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0.0:
            scale = max_norm / norm
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                if self._velocity[index] is None:
                    self._velocity[index] = np.zeros_like(parameter.data)
                self._velocity[index] = self.momentum * self._velocity[index] + grad
                grad = self._velocity[index]
            parameter.data -= self.lr * grad

    def state_dict(self) -> dict:
        return {"velocity": [None if v is None else v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        velocity = state["velocity"]
        if len(velocity) != len(self.parameters):
            raise ValueError(f"velocity count mismatch: {len(velocity)} vs "
                             f"{len(self.parameters)} parameters")
        self._velocity = [None if v is None else np.array(v, dtype=np.float64)
                          for v in velocity]


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            self._m[index] = self.beta1 * self._m[index] + (1.0 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1.0 - self.beta2) * grad ** 2
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {"step": self._step,
                "m": [m.copy() for m in self._m],
                "v": [v.copy() for v in self._v]}

    def load_state_dict(self, state: dict) -> None:
        if len(state["m"]) != len(self.parameters) or len(state["v"]) != len(self.parameters):
            raise ValueError(f"moment count mismatch: {len(state['m'])}/{len(state['v'])} vs "
                             f"{len(self.parameters)} parameters")
        self._step = int(state["step"])
        self._m = [np.array(m, dtype=np.float64) for m in state["m"]]
        self._v = [np.array(v, dtype=np.float64) for v in state["v"]]
