"""Gradient-descent optimizers for :class:`repro.autodiff.Tensor` parameters.

The hot path is allocation-free: ``zero_grad`` retires each parameter's
gradient array into the tensor's reuse buffer (the next backward pass writes
into it instead of allocating), and ``Adam.step`` / ``clip_grad_norm`` update
moments and parameters with in-place numpy ufuncs writing into per-parameter
scratch workspaces.  All in-place rewrites are bit-identical to the naive
out-of-place formulas (see ``tests/test_compiled_policy.py``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.autodiff.tensor import Tensor


class Optimizer:
    """Base class: holds parameters and clears their gradients."""

    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self._work: dict = {}

    def _workspace(self, index: int, slot: int = 0) -> np.ndarray:
        """Per-parameter scratch array (lazily allocated, shape of the param).

        ``slot`` distinguishes independent scratch arrays an optimizer needs
        simultaneously for the same parameter (Adam uses two).
        """
        key = (slot, index)
        scratch = self._work.get(key)
        if scratch is None:
            scratch = np.empty_like(self.parameters[index].data)
            self._work[key] = scratch
        return scratch

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            grad = parameter.grad
            if grad is not None:
                # Retire the array for reuse by the next backward pass.
                parameter._grad_buffer = grad
                parameter.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------- state I/O
    def state_dict(self) -> dict:
        """Serializable internal state (slot buffers, step counts)."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore internal state captured by :meth:`state_dict`."""
        if state:
            raise ValueError(f"unexpected optimizer state: {sorted(state)}")

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip gradients in place to a global L2 norm; return the pre-clip norm."""
        total = 0.0
        for index, parameter in enumerate(self.parameters):
            grad = parameter.grad
            if grad is not None:
                squared = self._workspace(index)
                np.multiply(grad, grad, out=squared)
                total += float(np.sum(squared))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0.0:
            scale = max_norm / norm
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                if self._velocity[index] is None:
                    self._velocity[index] = np.zeros_like(parameter.data)
                self._velocity[index] = self.momentum * self._velocity[index] + grad
                grad = self._velocity[index]
            parameter.data -= self.lr * grad

    def state_dict(self) -> dict:
        return {"velocity": [None if v is None else v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        velocity = state["velocity"]
        if len(velocity) != len(self.parameters):
            raise ValueError(f"velocity count mismatch: {len(velocity)} vs "
                             f"{len(self.parameters)} parameters")
        self._velocity = [None if v is None else np.array(v, dtype=np.float64)
                          for v in velocity]


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015).

    ``step()`` is fully in-place: moments are updated with ``out=`` ufuncs and
    the parameter delta is assembled in two scratch arrays, so a step performs
    no allocations after the first call.  The arithmetic matches the textbook
    out-of-place update bit for bit:

    .. code-block:: python

        m = beta1 * m + (1 - beta1) * grad
        v = beta2 * v + (1 - beta2) * grad ** 2
        param -= lr * (m / bias1) / (sqrt(v / bias2) + eps)
    """

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        # Bias-correction scalars are hoisted out of the parameter loop.
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        one_minus_beta1 = 1.0 - self.beta1
        one_minus_beta2 = 1.0 - self.beta2
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m, v = self._m[index], self._v[index]
            scratch = self._workspace(index)
            scratch2 = self._workspace(index, slot=1)
            # m = beta1 * m + (1 - beta1) * grad
            m *= self.beta1
            np.multiply(grad, one_minus_beta1, out=scratch)
            m += scratch
            # v = beta2 * v + (1 - beta2) * grad**2
            v *= self.beta2
            np.multiply(grad, grad, out=scratch)
            scratch *= one_minus_beta2
            v += scratch
            # param -= (lr * (m / bias1)) / (sqrt(v / bias2) + eps)
            np.divide(m, bias1, out=scratch)
            scratch *= self.lr
            np.divide(v, bias2, out=scratch2)
            np.sqrt(scratch2, out=scratch2)
            scratch2 += self.eps
            scratch /= scratch2
            parameter.data -= scratch

    def state_dict(self) -> dict:
        return {"step": self._step,
                "m": [m.copy() for m in self._m],
                "v": [v.copy() for v in self._v]}

    def load_state_dict(self, state: dict) -> None:
        if len(state["m"]) != len(self.parameters) or len(state["v"]) != len(self.parameters):
            raise ValueError(f"moment count mismatch: {len(state['m'])}/{len(state['v'])} vs "
                             f"{len(self.parameters)} parameters")
        self._step = int(state["step"])
        self._m = [np.array(m, dtype=self.parameters[index].data.dtype)
                   for index, m in enumerate(state["m"])]
        self._v = [np.array(v, dtype=self.parameters[index].data.dtype)
                   for index, v in enumerate(state["v"])]
