"""Functional helpers built on :class:`repro.autodiff.Tensor`.

These are the numerically-stable composite operations the RL engine needs:
softmax, log-softmax, cross entropy, categorical entropy, and the usual loss
helpers.  Each works on a trailing "class" dimension so policies over discrete
action spaces can use them directly.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.autodiff.tensor import Tensor

ArrayLike = Union[np.ndarray, float, int]


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def gather_log_prob(log_probs: Tensor, actions: np.ndarray) -> Tensor:
    """Select the log-probability of each taken action.

    ``log_probs`` has shape (batch, num_actions); ``actions`` is an int array
    of shape (batch,).  Returns a tensor of shape (batch,).
    """
    actions = np.asarray(actions, dtype=np.int64)
    batch_index = np.arange(log_probs.shape[0])
    return log_probs[(batch_index, actions)]


def categorical_entropy(logits: Tensor, axis: int = -1) -> Tensor:
    """Entropy of the categorical distribution defined by ``logits``."""
    log_p = log_softmax(logits, axis=axis)
    p = log_p.exp()
    return -(p * log_p).sum(axis=axis)


def mse_loss(prediction: Tensor, target: ArrayLike) -> Tensor:
    """Mean squared error between prediction and a constant target."""
    target_tensor = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target_tensor.detach()
    return (diff * diff).mean()


def huber_loss(prediction: Tensor, target: ArrayLike, delta: float = 1.0) -> Tensor:
    """Huber (smooth-L1) loss, useful for value-function regression."""
    target_tensor = target if isinstance(target, Tensor) else Tensor(target)
    diff = (prediction - target_tensor.detach()).abs()
    quadratic = diff.minimum(Tensor(delta))
    linear = diff - quadratic
    return (quadratic * quadratic * 0.5 + linear * delta).mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy of integer ``targets`` under ``logits``."""
    log_p = log_softmax(logits)
    picked = gather_log_prob(log_p, targets)
    return -(picked.mean())
