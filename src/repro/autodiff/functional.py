"""Functional helpers built on :class:`repro.autodiff.Tensor`.

These are the numerically-stable composite operations the RL engine needs:
softmax, log-softmax, cross entropy, categorical entropy, and the usual loss
helpers.  Each works on a trailing "class" dimension so policies over discrete
action spaces can use them directly.

Two implementations exist for the hot ops (``linear``, ``softmax``,
``log_softmax``, ``categorical_entropy``):

* **fused** (the default) — one graph node per op.  The forward pass is a
  handful of numpy calls, and the hand-written backward replays *exactly* the
  same elementwise arithmetic the composed primitive chain would execute, so
  gradients are bit-identical to the composed path (verified by
  ``tests/test_compiled_policy.py``).  This removes ~10 Tensor nodes, their
  closures, and their intermediate allocations per softmax chain — the
  dominant Python overhead of a PPO minibatch update.
* **composed** — the original chains of Tensor primitives.  Used as the
  reference in parity tests and selectable with :func:`composed_ops` (the
  training-throughput benchmark uses it to measure the legacy graph path).
"""

from __future__ import annotations

import contextlib
from typing import Union

import numpy as np

from repro.autodiff.tensor import Tensor

ArrayLike = Union[np.ndarray, float, int]

# Whether the fused single-node kernels are active (see composed_ops()).
FUSED = True


@contextlib.contextmanager
def composed_ops():
    """Temporarily fall back to the composed per-primitive graph ops.

    The fused kernels are bit-identical, so this only changes speed — it
    exists for parity tests and for benchmarking the legacy graph path.
    """
    global FUSED
    previous = FUSED
    FUSED = False
    try:
        yield
    finally:
        FUSED = previous


# --------------------------------------------------------------------- linear
def linear(inputs: Tensor, weight: Tensor, bias: Tensor) -> Tensor:
    """Fused affine map ``inputs @ weight + bias`` as a single graph node.

    Bit-identical to the composed matmul + broadcast-add chain, forward and
    backward.
    """
    if not FUSED:
        return inputs @ weight + bias
    inputs = Tensor._ensure(inputs)
    value = inputs.data @ weight.data + bias.data

    def backward(out: Tensor) -> None:
        grad = out.grad
        a, b = inputs.data, weight.data
        if a.ndim >= 2:
            inputs._accumulate(grad @ np.swapaxes(b, -1, -2))
            weight._accumulate(np.swapaxes(a, -1, -2) @ grad)
        else:
            # (k,) @ (k, n) -> (n,)
            inputs._accumulate(grad @ b.T)
            weight._accumulate(np.outer(a, grad))
        bias._accumulate(grad)

    return inputs._make_child(value, (inputs, weight, bias), backward)


# -------------------------------------------------------------------- softmax
def _softmax_forward(x: np.ndarray, axis: int) -> tuple:
    maximum = np.max(x, axis=axis, keepdims=True)
    shifted = x - maximum
    exp = np.exp(shifted)
    total = np.sum(exp, axis=axis, keepdims=True)
    return shifted, exp, total


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    if not FUSED:
        return _composed_softmax(logits, axis=axis)
    logits = Tensor._ensure(logits)
    _, exp, total = _softmax_forward(logits.data, axis)
    value = exp / total

    def backward(out: Tensor) -> None:
        grad = out.grad
        # Mirrors the composed div/sum/exp backward chain arithmetic exactly:
        # d_exp = g / s + broadcast(sum(-g * e / s**2)); d_logits = d_exp * e.
        direct = grad / total
        scaled = np.negative(grad)
        scaled = scaled * exp
        scaled = scaled / (total ** 2)
        summed = np.sum(scaled, axis=axis, keepdims=True)
        logits._accumulate((direct + summed) * exp)

    return logits._make_child(value, (logits,), backward)


def _composed_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    shifted = logits - logits.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def fused_log_softmax_node(logits: Tensor, axis: int = -1) -> tuple:
    """Build the fused single-node log-softmax graph op.

    Returns ``(node, log_p, exp, total)`` — the saved forward intermediates
    let callers (:class:`repro.nn.Categorical`) derive entropy without
    re-reducing the logits.  This is the one definition of the
    bit-parity-critical kernel; both :func:`log_softmax` and the
    distribution share it.
    """
    shifted, exp, total = _softmax_forward(logits.data, axis)
    log_p = shifted - np.log(total)

    def backward(out: Tensor) -> None:
        # d_logits = g - (sum(g) / s) * e, with the composed chain's op order.
        logits._accumulate(log_softmax_grad(out.grad, axis, exp, total))

    return logits._make_child(log_p, (logits,), backward), log_p, exp, total


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    if not FUSED:
        return _composed_log_softmax(logits, axis=axis)
    node, _, _, _ = fused_log_softmax_node(Tensor._ensure(logits), axis)
    return node


def _composed_log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    shifted = logits - logits.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def gather_log_prob(log_probs: Tensor, actions: np.ndarray) -> Tensor:
    """Select the log-probability of each taken action.

    ``log_probs`` has shape (batch, num_actions); ``actions`` is an int array
    of shape (batch,).  Returns a tensor of shape (batch,).
    """
    actions = np.asarray(actions, dtype=np.int64)
    batch_index = np.arange(log_probs.shape[0])
    return log_probs[(batch_index, actions)]


def log_softmax_grad(grad: np.ndarray, axis: int,
                     exp: np.ndarray, total: np.ndarray) -> np.ndarray:
    """Gradient of log-softmax w.r.t. its logits, given saved ``exp``/``total``.

    Replays the composed sub/exp/sum/log backward arithmetic op for op so the
    result is bit-identical to the primitive chain.
    """
    summed = np.sum(grad, axis=axis, keepdims=True)
    scaled = np.negative(summed)
    scaled /= total
    return grad + scaled * exp


def entropy_grad(grad: np.ndarray, axis: int, log_p: np.ndarray, p: np.ndarray,
                 exp: np.ndarray, total: np.ndarray) -> np.ndarray:
    """Gradient of categorical entropy w.r.t. the logits.

    Replays the composed neg/sum/mul/exp/log-softmax backward arithmetic
    op for op so the result is bit-identical to the primitive chain.
    """
    expanded = np.expand_dims(np.negative(grad), axis)
    inner = expanded * p + (expanded * log_p) * p
    return log_softmax_grad(inner, axis, exp, total)


def _entropy_backward_into(logits: Tensor, grad: np.ndarray, axis: int,
                           log_p: np.ndarray, p: np.ndarray,
                           exp: np.ndarray, total: np.ndarray) -> None:
    """Accumulate the categorical-entropy gradient into ``logits``."""
    logits._accumulate(entropy_grad(grad, axis, log_p, p, exp, total))


def categorical_entropy(logits: Tensor, axis: int = -1) -> Tensor:
    """Entropy of the categorical distribution defined by ``logits``."""
    if not FUSED:
        log_p = _composed_log_softmax(logits, axis=axis)
        p = log_p.exp()
        return -(p * log_p).sum(axis=axis)
    logits = Tensor._ensure(logits)
    shifted, exp, total = _softmax_forward(logits.data, axis)
    log_p = shifted - np.log(total)
    return entropy_from_log_softmax(logits, log_p, exp, total, axis=axis)


def entropy_from_log_softmax(logits: Tensor, log_p: np.ndarray,
                             exp: np.ndarray, total: np.ndarray,
                             axis: int = -1) -> Tensor:
    """Categorical entropy reusing an already-computed log-softmax.

    :class:`repro.nn.Categorical` computes log-probabilities once; entropy
    shares the saved ``log_p``/``exp``/``total`` arrays instead of
    re-reducing the logits (the composed path recomputes them to identical
    values, so this is bit-equivalent).
    """
    p = np.exp(log_p)
    value = -np.sum(p * log_p, axis=axis)

    def backward(out: Tensor) -> None:
        _entropy_backward_into(logits, out.grad, axis, log_p, p, exp, total)

    return logits._make_child(value, (logits,), backward)


def mse_loss(prediction: Tensor, target: ArrayLike) -> Tensor:
    """Mean squared error between prediction and a constant target."""
    target_tensor = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target_tensor.detach()
    return (diff * diff).mean()


def huber_loss(prediction: Tensor, target: ArrayLike, delta: float = 1.0) -> Tensor:
    """Huber (smooth-L1) loss, useful for value-function regression."""
    target_tensor = target if isinstance(target, Tensor) else Tensor(target)
    diff = (prediction - target_tensor.detach()).abs()
    quadratic = diff.minimum(Tensor(delta))
    linear_part = diff - quadratic
    return (quadratic * quadratic * 0.5 + linear_part * delta).mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy of integer ``targets`` under ``logits``."""
    log_p = log_softmax(logits)
    picked = gather_log_prob(log_p, targets)
    return -(picked.mean())
