"""Finite-difference gradient checking for the autodiff engine."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor


def numerical_gradient(function: Callable[[], Tensor], parameter: Tensor,
                       epsilon: float = 1e-6) -> np.ndarray:
    """Estimate d function / d parameter with central finite differences.

    ``function`` must return a scalar Tensor and must read ``parameter.data``
    each time it is called (i.e. rebuild its graph from the current values).
    """
    gradient = np.zeros_like(parameter.data)
    flat_param = parameter.data.reshape(-1)
    flat_grad = gradient.reshape(-1)
    for index in range(flat_param.size):
        original = flat_param[index]
        flat_param[index] = original + epsilon
        upper = function().item()
        flat_param[index] = original - epsilon
        lower = function().item()
        flat_param[index] = original
        flat_grad[index] = (upper - lower) / (2.0 * epsilon)
    return gradient


def check_gradients(function: Callable[[], Tensor], parameters: Sequence[Tensor],
                    epsilon: float = 1e-6, tolerance: float = 1e-4) -> bool:
    """Compare analytic and numerical gradients for every parameter.

    Returns True when every parameter's analytic gradient is within
    ``tolerance`` (relative, with absolute floor) of the finite-difference
    estimate, and raises ``AssertionError`` otherwise so test failures show
    which parameter disagreed.
    """
    for parameter in parameters:
        parameter.grad = None
    loss = function()
    loss.backward()
    for position, parameter in enumerate(parameters):
        analytic = parameter.grad if parameter.grad is not None else np.zeros_like(parameter.data)
        numeric = numerical_gradient(function, parameter, epsilon=epsilon)
        denominator = np.maximum(np.abs(analytic) + np.abs(numeric), 1e-8)
        relative_error = np.abs(analytic - numeric) / denominator
        worst = float(relative_error.max()) if relative_error.size else 0.0
        if worst > tolerance and float(np.abs(analytic - numeric).max()) > tolerance:
            raise AssertionError(
                f"gradient mismatch for parameter #{position}: "
                f"max relative error {worst:.3e}"
            )
    return True
