"""A small reverse-mode autodiff tensor built on numpy.

The design mirrors the familiar PyTorch semantics at a much smaller scale:
``Tensor`` wraps a numpy array, records the operations applied to it, and
``backward()`` walks the recorded graph in reverse topological order to
accumulate gradients.  Broadcasting is supported by summing gradients back to
the original shape.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from repro.determinism import fallback_rng

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True

# Default dtype for tensors created from python scalars/sequences and for
# parameter initialization.  float64 keeps bit-parity with the reference
# graphs; the opt-in float32 policy mode (PPOConfig.dtype) builds its modules
# under ``default_dtype(np.float32)``.
_DEFAULT_DTYPE = np.float64

_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def get_default_dtype() -> np.dtype:
    """The dtype new tensors are created with (float64 unless overridden)."""
    return _DEFAULT_DTYPE


@contextlib.contextmanager
def default_dtype(dtype):
    """Temporarily change the default tensor dtype (e.g. ``np.float32``)."""
    global _DEFAULT_DTYPE
    dtype = np.dtype(dtype)
    if dtype not in _FLOAT_DTYPES:
        raise ValueError(f"default dtype must be float32 or float64, got {dtype}")
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = dtype.type
    try:
        yield
    finally:
        _DEFAULT_DTYPE = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    # Floating arrays keep their precision (so float32 policies stay float32);
    # everything else (scalars, int arrays, lists) lands on the default dtype.
    if isinstance(value, np.ndarray) and value.dtype in _FLOAT_DTYPES:
        return value
    return np.asarray(value, dtype=_DEFAULT_DTYPE)


class Tensor:
    """A numpy-backed tensor that records a reverse-mode autodiff graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name",
                 "_grad_buffer")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[], None]] = None
        self._parents: tuple = ()
        self.name = name
        # Retired gradient array, reused by the next backward pass instead of
        # a fresh allocation (stashed by ``Optimizer.zero_grad``).
        self._grad_buffer: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ utils
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # --------------------------------------------------------------- plumbing
    @staticmethod
    def _ensure(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _coerce(self, value: Union["Tensor", ArrayLike]) -> "Tensor":
        """Wrap ``value`` as a Tensor matching this tensor's dtype.

        Binary ops use this so python scalars don't silently up-cast a
        float32 graph to float64.
        """
        if isinstance(value, Tensor):
            return value
        return Tensor(np.asarray(value, dtype=self.data.dtype))

    def _make_child(self, data: np.ndarray, parents: Iterable["Tensor"],
                    backward: Callable[["Tensor"], None]) -> "Tensor":
        parents = tuple(parents)
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = lambda: backward(out)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            # Reuse the retired gradient buffer (stashed by Optimizer.zero_grad)
            # instead of allocating a fresh array every backward pass.
            buffer = self._grad_buffer
            if buffer is not None and buffer.shape == grad.shape:
                np.copyto(buffer, grad)
                self.grad = buffer
                self._grad_buffer = None
            else:
                self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=self.data.dtype))

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------- arithmetic
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad)
            other._accumulate(out.grad)

        return self._make_child(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(-out.grad)

        return self._make_child(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * other.data)
            other._accumulate(out.grad * self.data)

        return self._make_child(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad / other.data)
            other._accumulate(-out.grad * self.data / (other.data ** 2))

        return self._make_child(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * exponent * np.power(self.data, exponent - 1))

        return self._make_child(np.power(self.data, exponent), (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)

        def backward(out: Tensor) -> None:
            grad = out.grad
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
            elif a.ndim >= 2 and b.ndim >= 2:
                self._accumulate(grad @ np.swapaxes(b, -1, -2))
                other._accumulate(np.swapaxes(a, -1, -2) @ grad)
            elif a.ndim == 1:
                # (k,) @ (k, n) -> (n,)
                self._accumulate(grad @ b.T)
                other._accumulate(np.outer(a, grad))
            else:
                # (m, k) @ (k,) -> (m,)
                self._accumulate(np.outer(grad, b))
                other._accumulate(a.T @ grad)

        return self._make_child(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------ elementwise
    def exp(self) -> "Tensor":
        value = np.exp(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * value)

        return self._make_child(value, (self,), backward)

    def log(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(out.grad / self.data)

        return self._make_child(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * (1.0 - value ** 2))

        return self._make_child(value, (self,), backward)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(self.data.dtype)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * mask)

        return self._make_child(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * value * (1.0 - value))

        return self._make_child(value, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * sign)

        return self._make_child(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = ((self.data >= low) & (self.data <= high)).astype(self.data.dtype)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * mask)

        return self._make_child(np.clip(self.data, low, high), (self,), backward)

    def maximum(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        take_self = (self.data >= other.data).astype(self.data.dtype)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * take_self)
            other._accumulate(out.grad * (1.0 - take_self))

        return self._make_child(np.maximum(self.data, other.data), (self, other), backward)

    def minimum(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        take_self = (self.data <= other.data).astype(self.data.dtype)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * take_self)
            other._accumulate(out.grad * (1.0 - take_self))

        return self._make_child(np.minimum(self.data, other.data), (self, other), backward)

    # -------------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(out: Tensor) -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        return self._make_child(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]

        def backward(out: Tensor) -> None:
            grad = out.grad / count
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        return self._make_child(self.data.mean(axis=axis, keepdims=keepdims), (self,), backward)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        value = self.data.max(axis=axis, keepdims=True)
        mask = (self.data == value).astype(self.data.dtype)
        mask = mask / mask.sum(axis=axis, keepdims=True)
        result = value if keepdims or axis is None else np.squeeze(value, axis=axis)
        if axis is None and not keepdims:
            result = self.data.max()

        def backward(out: Tensor) -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(mask * grad)

        return self._make_child(result, (self,), backward)

    # --------------------------------------------------------------- reshaping
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad.reshape(self.data.shape))

        return self._make_child(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad.transpose(inverse))

        return self._make_child(self.data.transpose(axes), (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        def backward(out: Tensor) -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, out.grad)
            self._accumulate(grad)

        return self._make_child(self.data[index], (self,), backward)

    # ----------------------------------------------------------- constructors
    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(shape, rng: Optional[np.random.Generator] = None,
              scale: float = 1.0, requires_grad: bool = False) -> "Tensor":
        rng = rng if rng is not None else fallback_rng()
        return Tensor(rng.standard_normal(shape) * scale, requires_grad=requires_grad)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._ensure(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(out: Tensor) -> None:
            grads = np.split(out.grad, len(tensors), axis=axis)
            for tensor, grad in zip(tensors, grads):
                tensor._accumulate(np.squeeze(grad, axis=axis))

        dummy = tensors[0]
        return dummy._make_child(data, tensors, backward)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._ensure(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(out: Tensor) -> None:
            for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                slicer = [slice(None)] * out.grad.ndim
                slicer[axis] = slice(start, end)
                tensor._accumulate(out.grad[tuple(slicer)])

        dummy = tensors[0]
        return dummy._make_child(data, tensors, backward)
