"""Reverse-mode automatic differentiation over numpy arrays.

This subpackage is the numerical substrate of the reproduction: the paper
trains its PPO agent with PyTorch, which is not available in this offline
environment, so we provide a small but complete autodiff engine with the same
semantics (tensors, gradient tape, optimizers, gradient checking).
"""

from repro.autodiff.tensor import (Tensor, no_grad, is_grad_enabled,
                                   default_dtype, get_default_dtype)
from repro.autodiff import functional
from repro.autodiff.optim import SGD, Adam, Optimizer
from repro.autodiff.gradcheck import numerical_gradient, check_gradients

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "default_dtype",
    "get_default_dtype",
    "functional",
    "Optimizer",
    "SGD",
    "Adam",
    "numerical_gradient",
    "check_gradients",
]
