"""AutoCAT reproduction: RL for automated exploration of cache-timing attacks.

This package reproduces the system described in "AutoCAT: Reinforcement
Learning for Automated Exploration of Cache-Timing Attacks" (HPCA 2023):

* :mod:`repro.cache` — the cache simulator substrate (replacement policies,
  prefetchers, PL cache, two-level hierarchy, detection event hooks);
* :mod:`repro.env` — the cache guessing game as a gym-style RL environment;
* :mod:`repro.rl` — PPO (on a from-scratch numpy autodiff stack in
  :mod:`repro.autodiff` / :mod:`repro.nn`), replay, and search baselines;
* :mod:`repro.detection` — CC-Hunter, Cyclone, and miss-count detectors;
* :mod:`repro.attacks` — textbook attacks, LRU-state attacks,
  StealthyStreamline, covert channels, and a Spectre-v1 demo;
* :mod:`repro.hardware` — blackbox machine models replacing real processors;
* :mod:`repro.scenarios` — the scenario registry behind :func:`repro.make`;
* :mod:`repro.defenses` — pluggable secure-cache defenses (PL cache, keyed
  remapping, skewed associativity, way partitioning, random fill) applied to
  any scenario via ``repro.make(scenario, defense=...)``;
* :mod:`repro.experiments` — drivers regenerating every table and figure.

Environments are constructed declaratively through the scenario registry::

    import repro

    repro.list_scenarios()                     # every registered scenario id
    env = repro.make("guessing/lru-4way")      # build one, gym-style
    env = repro.make("guessing/lru-4way", seed=3, **{"cache.num_ways": 8})

and whole training campaigns through the experiment registry (see
:mod:`repro.runs`)::

    repro.list_experiments()                   # every registered experiment id
    campaign = repro.run("table5", scale="smoke", workers=4)
    print(campaign.format_results())           # rows + persistent run artifact
"""

__version__ = "1.2.0"

from repro.cache import Cache, CacheConfig
from repro.defenses import (
    DefenseSpec,
    get_defense,
    list_defenses,
    register_defense,
)
from repro.env import CacheGuessingGameEnv, EnvConfig, RewardConfig
from repro.rl import PPOConfig, PPOTrainer
from repro.scenarios import (
    ScenarioSpec,
    get_spec,
    list_scenarios,
    make,
    make_factory,
    register,
)
from repro.runs import (
    CampaignResult,
    ExperimentSpec,
    get_experiment,
    list_experiments,
    register_experiment,
    run,
)

__all__ = [
    "__version__",
    "Cache",
    "CacheConfig",
    "CacheGuessingGameEnv",
    "CampaignResult",
    "DefenseSpec",
    "EnvConfig",
    "ExperimentSpec",
    "RewardConfig",
    "PPOConfig",
    "PPOTrainer",
    "ScenarioSpec",
    "get_defense",
    "get_experiment",
    "get_spec",
    "list_defenses",
    "list_experiments",
    "list_scenarios",
    "make",
    "make_factory",
    "register",
    "register_defense",
    "register_experiment",
    "run",
]
