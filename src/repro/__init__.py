"""AutoCAT reproduction: RL for automated exploration of cache-timing attacks.

This package reproduces the system described in "AutoCAT: Reinforcement
Learning for Automated Exploration of Cache-Timing Attacks" (HPCA 2023):

* :mod:`repro.cache` — the cache simulator substrate (replacement policies,
  prefetchers, PL cache, two-level hierarchy, detection event hooks);
* :mod:`repro.env` — the cache guessing game as a gym-style RL environment;
* :mod:`repro.rl` — PPO (on a from-scratch numpy autodiff stack in
  :mod:`repro.autodiff` / :mod:`repro.nn`), replay, and search baselines;
* :mod:`repro.detection` — CC-Hunter, Cyclone, and miss-count detectors;
* :mod:`repro.attacks` — textbook attacks, LRU-state attacks,
  StealthyStreamline, covert channels, and a Spectre-v1 demo;
* :mod:`repro.hardware` — blackbox machine models replacing real processors;
* :mod:`repro.scenarios` — the scenario registry behind :func:`repro.make`;
* :mod:`repro.experiments` — drivers regenerating every table and figure.

Environments are constructed declaratively through the scenario registry::

    import repro

    repro.list_scenarios()                     # every registered scenario id
    env = repro.make("guessing/lru-4way")      # build one, gym-style
    env = repro.make("guessing/lru-4way", seed=3, **{"cache.num_ways": 8})
"""

__version__ = "1.1.0"

from repro.cache import Cache, CacheConfig
from repro.env import CacheGuessingGameEnv, EnvConfig, RewardConfig
from repro.rl import PPOConfig, PPOTrainer
from repro.scenarios import (
    ScenarioSpec,
    get_spec,
    list_scenarios,
    make,
    make_factory,
    register,
)

__all__ = [
    "__version__",
    "Cache",
    "CacheConfig",
    "CacheGuessingGameEnv",
    "EnvConfig",
    "RewardConfig",
    "PPOConfig",
    "PPOTrainer",
    "ScenarioSpec",
    "get_spec",
    "list_scenarios",
    "make",
    "make_factory",
    "register",
]
