"""Weight-initialization helpers."""

from __future__ import annotations

import numpy as np

from repro.determinism import fallback_rng


def orthogonal(shape: tuple, gain: float = 1.0,
               rng: np.random.Generator | None = None) -> np.ndarray:
    """Orthogonal initialization, the standard choice for PPO policies."""
    rng = rng if rng is not None else fallback_rng()
    rows, cols = shape
    flat = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def xavier_uniform(shape: tuple, rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    rng = rng if rng is not None else fallback_rng()
    fan_in, fan_out = shape[0], shape[1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)
