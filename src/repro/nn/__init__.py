"""Neural-network layers built on the :mod:`repro.autodiff` engine.

Provides the building blocks used by the AutoCAT policy/value networks: dense
layers, activations, layer normalization, embeddings, an MLP convenience
module, and a single-head self-attention sequence encoder standing in for the
paper's Transformer backbone.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import (
    Linear,
    ReLU,
    Tanh,
    Sigmoid,
    LayerNorm,
    Embedding,
    Sequential,
    MLP,
)
from repro.nn.attention import SelfAttentionEncoder
from repro.nn.distributions import Categorical

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "LayerNorm",
    "Embedding",
    "Sequential",
    "MLP",
    "SelfAttentionEncoder",
    "Categorical",
]
