"""Neural-network layers built on the :mod:`repro.autodiff` engine.

Provides the building blocks used by the AutoCAT policy/value networks: dense
layers, activations, layer normalization, embeddings, an MLP convenience
module, and a single-head self-attention sequence encoder standing in for the
paper's Transformer backbone.

Inference fast path
-------------------

Training needs the autodiff graph; acting does not.  For the fixed MLP and
attention policy architectures, :class:`repro.nn.compiled.CompiledForward`
flattens the forward pass into a sequence of pure-numpy kernels writing into
preallocated shape-keyed buffers — no ``Tensor`` objects, no graph, no
per-call allocation — with outputs bit-identical to the graph path.
``ActorCriticPolicy.act()/.value()/.action_probabilities()`` use the plan
automatically whenever the architecture is supported; unsupported module
compositions silently fall back to the graph.  Set the environment variable
``REPRO_DISABLE_COMPILED=1`` to force the graph path everywhere (parity
debugging, legacy benchmarking).
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import (
    Linear,
    ReLU,
    Tanh,
    Sigmoid,
    LayerNorm,
    Embedding,
    Sequential,
    MLP,
)
from repro.nn.attention import SelfAttentionEncoder
from repro.nn.compiled import CompiledForward, UnsupportedArchitecture
from repro.nn.distributions import Categorical

__all__ = [
    "CompiledForward",
    "UnsupportedArchitecture",
    "Module",
    "Parameter",
    "Linear",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "LayerNorm",
    "Embedding",
    "Sequential",
    "MLP",
    "SelfAttentionEncoder",
    "Categorical",
]
