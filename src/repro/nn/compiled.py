"""Graph-free compiled inference plans for actor-critic policies.

``ActorCriticPolicy.act()`` is called once per environment step during
rollouts; the reverse-mode graph it builds is thrown away immediately because
acting never needs gradients.  A :class:`CompiledForward` plan removes that
overhead: for a fixed architecture it flattens the forward pass into a
sequence of pure-numpy kernel calls that write into preallocated,
*shape-keyed* buffers — no :class:`~repro.autodiff.Tensor` objects, no graph,
and no per-call allocation beyond the small output arrays.

The plan replays exactly the same numpy operations (same op order, same
intermediate values) as the graph path, so its outputs — actions, log-probs,
values, and consumed RNG stream — are **bit-identical** to
``Tensor``-based inference (enforced by ``tests/test_compiled_policy.py``).

Plans are built lazily by :meth:`repro.rl.policy.ActorCriticPolicy.compiled`
for the MLP and single-block attention backbones; unknown module compositions
raise :class:`UnsupportedArchitecture` and the policy silently keeps the
graph path.  Set ``REPRO_DISABLE_COMPILED=1`` to force the graph path (the
escape hatch used for parity testing and legacy benchmarking).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.determinism import fallback_rng



class UnsupportedArchitecture(Exception):
    """The policy's module tree has no compiled plan; use the graph path."""


def compiled_inference_enabled() -> bool:
    """Whether compiled plans may be used (``REPRO_DISABLE_COMPILED`` unset)."""
    return os.environ.get("REPRO_DISABLE_COMPILED", "") not in ("1", "true", "yes")


def _flatten_feedforward(module) -> List[tuple]:
    """Flatten a tree of Sequential/MLP/Linear/activation/LayerNorm modules."""
    from repro.nn.layers import (MLP, LayerNorm, Linear, ReLU, Sequential,
                                 Sigmoid, Tanh)

    steps: List[tuple] = []
    if isinstance(module, Sequential):
        for layer in module:
            steps.extend(_flatten_feedforward(layer))
    elif isinstance(module, MLP):
        steps.extend(_flatten_feedforward(module.network))
    elif isinstance(module, Linear):
        steps.append(("linear", module))
    elif isinstance(module, Tanh):
        steps.append(("tanh", None))
    elif isinstance(module, ReLU):
        steps.append(("relu", None))
    elif isinstance(module, Sigmoid):
        steps.append(("sigmoid", None))
    elif isinstance(module, LayerNorm):
        steps.append(("layernorm", module))
    else:
        raise UnsupportedArchitecture(
            f"no compiled kernel for module {type(module).__name__}")
    return steps


class _LayerNormBuffers:
    """Preallocated intermediates for one LayerNorm call at one shape."""

    def __init__(self, shape: tuple, dtype) -> None:
        self.mean = np.empty(shape[:-1] + (1,), dtype=dtype)
        self.centered = np.empty(shape, dtype=dtype)
        self.squared = np.empty(shape, dtype=dtype)
        self.variance = np.empty(shape[:-1] + (1,), dtype=dtype)


def _layernorm_into(module, x: np.ndarray, out: np.ndarray,
                    buffers: _LayerNormBuffers) -> None:
    """LayerNorm with the exact op order of the graph implementation."""
    np.mean(x, axis=-1, keepdims=True, out=buffers.mean)
    np.subtract(x, buffers.mean, out=buffers.centered)
    np.multiply(buffers.centered, buffers.centered, out=buffers.squared)
    np.mean(buffers.squared, axis=-1, keepdims=True, out=buffers.variance)
    buffers.variance += module.eps
    np.power(buffers.variance, 0.5, out=buffers.variance)
    np.divide(buffers.centered, buffers.variance, out=out)
    out *= module.gamma.data
    out += module.beta.data


class _DistributionBuffers:
    """Preallocated buffers for the categorical head at one batch size."""

    def __init__(self, batch: int, num_actions: int, dtype) -> None:
        self.maximum = np.empty((batch, 1), dtype=dtype)
        self.log_probs = np.empty((batch, num_actions), dtype=dtype)
        self.exp = np.empty((batch, num_actions), dtype=dtype)
        self.total = np.empty((batch, 1), dtype=dtype)
        self.cumulative = np.empty((batch, num_actions), dtype=dtype)
        self.above = np.empty((batch, num_actions), dtype=bool)
        self.batch_index = np.arange(batch)


class CompiledForward:
    """Flattened, allocation-free forward plan for one policy network.

    Workspaces are keyed by batch size, so the rollout batch (``num_envs``
    rows), the single-row evaluation batch, and any other recurring shape
    each reuse their own buffers across calls.
    """

    def __init__(self, policy) -> None:
        from repro.nn.attention import SelfAttentionEncoder

        self.policy = policy
        self.dtype = policy.policy_head.weight.data.dtype
        extractor = policy.feature_extractor
        if isinstance(extractor, SelfAttentionEncoder):
            self._attention = extractor
            self._steps: Optional[List[tuple]] = None
        else:
            self._attention = None
            self._steps = _flatten_feedforward(extractor)
        self._workspaces: Dict[int, dict] = {}

    # ------------------------------------------------------------- workspaces
    def _workspace(self, batch: int) -> dict:
        ws = self._workspaces.get(batch)
        if ws is None:
            ws = self._allocate(batch)
            self._workspaces[batch] = ws
        return ws

    def _allocate(self, batch: int) -> dict:
        policy = self.policy
        dtype = self.dtype
        ws: dict = {}
        if self._attention is not None:
            enc = self._attention
            window, features = policy.window_shape
            model = enc.model_dim
            ff_dim = enc.feed_forward._layers[0].out_features
            seq = (batch, window, model)
            ws["hidden"] = np.empty(seq, dtype=dtype)
            ws["query"] = np.empty(seq, dtype=dtype)
            ws["key"] = np.empty(seq, dtype=dtype)
            ws["value"] = np.empty(seq, dtype=dtype)
            ws["scores"] = np.empty((batch, window, window), dtype=dtype)
            ws["scores_max"] = np.empty((batch, window, 1), dtype=dtype)
            ws["scores_sum"] = np.empty((batch, window, 1), dtype=dtype)
            ws["attended"] = np.empty(seq, dtype=dtype)
            ws["normed"] = np.empty(seq, dtype=dtype)
            ws["ff_hidden"] = np.empty((batch, window, ff_dim), dtype=dtype)
            ws["ff_mask"] = np.empty((batch, window, ff_dim), dtype=bool)
            ws["ff_out"] = np.empty(seq, dtype=dtype)
            ws["encoded"] = np.empty(seq, dtype=dtype)
            ws["ln"] = _LayerNormBuffers(seq, dtype)
            ws["features"] = np.empty((batch, model), dtype=dtype)
            feature_dim = model
        else:
            buffers = []
            width = policy.observation_size
            for kind, module in self._steps:
                if kind == "linear":
                    width = module.out_features
                    buffers.append(np.empty((batch, width), dtype=dtype))
                elif kind == "layernorm":
                    buffers.append(_LayerNormBuffers((batch, width), dtype))
                else:
                    buffers.append(None)
            ws["steps"] = buffers
            feature_dim = width
        ws["logits"] = np.empty((batch, policy.num_actions), dtype=dtype)
        ws["values"] = np.empty((batch, 1), dtype=dtype)
        ws["dist"] = _DistributionBuffers(batch, policy.num_actions, dtype)
        ws["feature_dim"] = feature_dim
        return ws

    # ---------------------------------------------------------------- forward
    def _features(self, observations: np.ndarray, ws: dict) -> np.ndarray:
        if self._attention is not None:
            return self._attention_features(observations, ws)
        current = observations
        for (kind, module), buffer in zip(self._steps, ws["steps"]):
            if kind == "linear":
                np.matmul(current, module.weight.data, out=buffer)
                buffer += module.bias.data
                current = buffer
            elif kind == "tanh":
                np.tanh(current, out=current)
            elif kind == "relu":
                mask = current > 0
                np.multiply(current, mask, out=current)
            elif kind == "sigmoid":
                np.negative(current, out=current)
                np.exp(current, out=current)
                current += 1.0
                np.divide(1.0, current, out=current)
            else:  # layernorm
                _layernorm_into(module, current, current, buffer)
        return current

    def _attention_features(self, observations: np.ndarray, ws: dict) -> np.ndarray:
        enc = self._attention
        batch = observations.shape[0]
        window, features = self.policy.window_shape
        inputs = observations.reshape(batch, window, features)

        def affine(module, x, out):
            np.matmul(x, module.weight.data, out=out)
            out += module.bias.data
            return out

        hidden = affine(enc.input_projection, inputs, ws["hidden"])
        queries = affine(enc.query, hidden, ws["query"])
        keys = affine(enc.key, hidden, ws["key"])
        values = affine(enc.value, hidden, ws["value"])
        # The graph path coerces the python-float scale to the tensor dtype
        # before multiplying; match it so float32 stays bit-identical.
        scale = self.dtype.type(1.0 / np.sqrt(enc.model_dim))
        scores = ws["scores"]
        np.matmul(queries, keys.transpose(0, 2, 1), out=scores)
        scores *= scale
        # softmax over the last axis, graph op order
        np.amax(scores, axis=-1, keepdims=True, out=ws["scores_max"])
        np.subtract(scores, ws["scores_max"], out=scores)
        np.exp(scores, out=scores)
        np.sum(scores, axis=-1, keepdims=True, out=ws["scores_sum"])
        scores /= ws["scores_sum"]
        attended = ws["attended"]
        np.matmul(scores, values, out=attended)
        attended += hidden
        normed = ws["normed"]
        _layernorm_into(enc.attention_norm, attended, normed, ws["ln"])
        ff_linear1, _, ff_linear2 = enc.feed_forward._layers
        ff_hidden = affine(ff_linear1, normed, ws["ff_hidden"])
        np.greater(ff_hidden, 0, out=ws["ff_mask"])
        np.multiply(ff_hidden, ws["ff_mask"], out=ff_hidden)
        ff_out = affine(ff_linear2, ff_hidden, ws["ff_out"])
        ff_out += normed
        encoded = ws["encoded"]
        _layernorm_into(enc.feed_forward_norm, ff_out, encoded, ws["ln"])
        np.mean(encoded, axis=1, out=ws["features"])
        return ws["features"]

    def _heads(self, observations: np.ndarray, ws: dict,
               want_logits: bool = True) -> Tuple[Optional[np.ndarray], np.ndarray]:
        policy = self.policy
        features = self._features(observations, ws)
        values = ws["values"]
        np.matmul(features, policy.value_head.weight.data, out=values)
        values += policy.value_head.bias.data
        if not want_logits:
            return None, values
        logits = ws["logits"]
        np.matmul(features, policy.policy_head.weight.data, out=logits)
        logits += policy.policy_head.bias.data
        return logits, values

    def _log_probs(self, logits: np.ndarray, dist: _DistributionBuffers) -> np.ndarray:
        np.amax(logits, axis=-1, keepdims=True, out=dist.maximum)
        np.subtract(logits, dist.maximum, out=dist.log_probs)
        np.exp(dist.log_probs, out=dist.exp)
        np.sum(dist.exp, axis=-1, keepdims=True, out=dist.total)
        np.log(dist.total, out=dist.total)
        dist.log_probs -= dist.total
        return dist.log_probs

    # -------------------------------------------------------------- inference
    def act(self, observations: np.ndarray,
            rng: Optional[np.random.Generator] = None,
            deterministic: bool = False) -> tuple:
        """(actions, log_probs, values) — bit-identical to the graph path."""
        ws = self._workspace(observations.shape[0])
        logits, values = self._heads(observations, ws)
        dist = ws["dist"]
        log_probs = self._log_probs(logits, dist)
        if deterministic:
            actions = np.argmax(log_probs, axis=-1).astype(np.int64)
        else:
            rng = rng if rng is not None else fallback_rng()
            np.exp(log_probs, out=dist.exp)
            np.cumsum(dist.exp, axis=-1, out=dist.cumulative)
            dist.cumulative[..., -1] = 1.0
            draws = rng.random(size=(observations.shape[0], 1))
            np.greater(draws, dist.cumulative, out=dist.above)
            actions = dist.above.sum(axis=-1).astype(np.int64)
        picked = log_probs[(dist.batch_index, actions)]
        return actions, picked, values.reshape(-1).copy()

    def value(self, observations: np.ndarray) -> np.ndarray:
        """State values only (the policy head is skipped)."""
        ws = self._workspace(observations.shape[0])
        _, values = self._heads(observations, ws, want_logits=False)
        return values.reshape(-1).copy()

    def action_probabilities(self, observations: np.ndarray) -> np.ndarray:
        """Action probabilities for a batch; returns a fresh array."""
        ws = self._workspace(observations.shape[0])
        logits, _ = self._heads(observations, ws)
        dist = ws["dist"]
        log_probs = self._log_probs(logits, dist)
        return np.exp(log_probs)
