"""Probability distributions used by the policy head."""

from __future__ import annotations

from typing import Optional

import numpy as np


from repro.autodiff import functional as F
from repro.autodiff.tensor import Tensor
from repro.determinism import fallback_rng


class Categorical:
    """Categorical distribution over discrete actions defined by logits.

    ``logits`` has shape (batch, num_actions).  Sampling uses numpy (no
    gradient flows through sampling); ``log_prob`` and ``entropy`` are
    differentiable so they can appear in the PPO loss.

    When the fused functional kernels are active (the default), the
    logits -> log-softmax reduction is a single graph node and ``entropy()``
    reuses its saved ``exp``/``sum`` intermediates instead of re-reducing the
    logits — bit-identical to the composed primitive chains, several times
    fewer Python ops.
    """

    def __init__(self, logits: Tensor):
        self.logits = logits
        self._cache: Optional[tuple] = None
        if F.FUSED:
            self._log_probs, log_p, exp, total = F.fused_log_softmax_node(logits)
            self._cache = (log_p, exp, total)
        else:
            self._log_probs = F.log_softmax(logits, axis=-1)

    @property
    def probs(self) -> np.ndarray:
        return np.exp(self._log_probs.data)

    def sample(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = rng if rng is not None else fallback_rng()
        probabilities = self.probs
        cumulative = probabilities.cumsum(axis=-1)
        cumulative[..., -1] = 1.0
        draws = rng.random(size=probabilities.shape[:-1] + (1,))
        return (draws > cumulative).sum(axis=-1).astype(np.int64)

    def mode(self) -> np.ndarray:
        """Most likely action, used for deterministic replay/extraction."""
        return np.argmax(self._log_probs.data, axis=-1).astype(np.int64)

    def log_prob(self, actions: np.ndarray) -> Tensor:
        return F.gather_log_prob(self._log_probs, actions)

    def entropy(self) -> Tensor:
        if self._cache is not None:
            log_p, exp, total = self._cache
            return F.entropy_from_log_softmax(self.logits, log_p, exp, total,
                                              axis=-1)
        return F.categorical_entropy(self.logits, axis=-1)
