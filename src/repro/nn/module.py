"""Module/parameter registry, mirroring the familiar torch.nn.Module contract."""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from repro.autodiff.tensor import Tensor, get_default_dtype


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a Module.

    Parameters adopt the ambient default dtype (see
    :func:`repro.autodiff.default_dtype`), so a module tree built under a
    ``default_dtype(np.float32)`` context is a float32 network end to end.
    """

    def __init__(self, data, name: str = ""):
        data = np.asarray(data, dtype=get_default_dtype())
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Sub-modules and parameters assigned as attributes are discovered
    automatically, so ``parameters()`` walks the whole model tree.
    """

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------ parameters
    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its children."""
        found: List[Parameter] = []
        seen: set = set()
        for parameter in self._parameters.values():
            if id(parameter) not in seen:
                seen.add(id(parameter))
                found.append(parameter)
        for module in self._modules.values():
            for parameter in module.parameters():
                if id(parameter) not in seen:
                    seen.add(id(parameter))
                    found.append(parameter)
        return found

    def named_parameters(self, prefix: str = "") -> Iterator[tuple]:
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for child_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{child_name}.")

    def num_parameters(self) -> int:
        return sum(parameter.size for parameter in self.parameters())

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.grad = None

    # ---------------------------------------------------------------- modes
    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    # ------------------------------------------------------------- state I/O
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping of parameter name to a copy of its array."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, parameter in own.items():
            if parameter.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: {parameter.data.shape} vs {state[name].shape}")
            parameter.data[...] = state[name]

    # ----------------------------------------------------------------- call
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
