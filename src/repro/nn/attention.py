"""Single-head self-attention sequence encoder.

The paper uses a 1-layer Transformer encoder (8 heads) followed by average
pooling over steps as the policy backbone.  This module provides the same
architecture family at reproduction scale: scaled dot-product self-attention
over the observation-history window, a position-wise feed-forward block, layer
norms with residual connections, and average pooling over steps.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autodiff import functional as F
from repro.autodiff.tensor import Tensor
from repro.nn.layers import LayerNorm, Linear, ReLU, Sequential
from repro.nn.module import Module


class SelfAttentionEncoder(Module):
    """One encoder block: attention + feed-forward, then mean-pool over steps.

    Input shape: (batch, steps, features); output shape (batch, model_dim).
    """

    def __init__(self, input_dim: int, model_dim: int = 64, ff_dim: int = 128,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.model_dim = model_dim
        self.input_projection = Linear(input_dim, model_dim, rng=rng)
        self.query = Linear(model_dim, model_dim, rng=rng)
        self.key = Linear(model_dim, model_dim, rng=rng)
        self.value = Linear(model_dim, model_dim, rng=rng)
        self.attention_norm = LayerNorm(model_dim)
        self.feed_forward = Sequential(
            Linear(model_dim, ff_dim, rng=rng),
            ReLU(),
            Linear(ff_dim, model_dim, rng=rng),
        )
        self.feed_forward_norm = LayerNorm(model_dim)

    def forward(self, inputs: Tensor) -> Tensor:
        if inputs.ndim != 3:
            raise ValueError(f"expected (batch, steps, features), got shape {inputs.shape}")
        hidden = self.input_projection(inputs)
        queries = self.query(hidden)
        keys = self.key(hidden)
        values = self.value(hidden)
        scale = 1.0 / np.sqrt(self.model_dim)
        scores = (queries @ keys.transpose(0, 2, 1)) * scale
        weights = F.softmax(scores, axis=-1)
        attended = weights @ values
        hidden = self.attention_norm(hidden + attended)
        hidden = self.feed_forward_norm(hidden + self.feed_forward(hidden))
        return hidden.mean(axis=1)
