"""Core neural-network layers."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


from repro.autodiff import functional as F
from repro.autodiff.tensor import Tensor
from repro.determinism import fallback_rng
from repro.nn.init import orthogonal
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Fully-connected layer ``y = x W + b``.

    The forward pass goes through the fused :func:`repro.autodiff.functional.linear`
    kernel — one graph node instead of a matmul + broadcast-add chain, with
    bit-identical outputs and gradients.
    """

    def __init__(self, in_features: int, out_features: int, gain: float = np.sqrt(2.0),
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(orthogonal((in_features, out_features), gain=gain, rng=rng),
                                name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias")

    def forward(self, inputs: Tensor) -> Tensor:
        return F.linear(inputs, self.weight, self.bias)


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.tanh()


class Sigmoid(Module):
    """Logistic activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.sigmoid()


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, features: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(features), name="gamma")
        self.beta = Parameter(np.zeros(features), name="beta")

    def forward(self, inputs: Tensor) -> Tensor:
        mean = inputs.mean(axis=-1, keepdims=True)
        centered = inputs - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (variance + self.eps) ** 0.5
        return normalized * self.gamma + self.beta


class Embedding(Module):
    """Lookup table mapping integer indices to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else fallback_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.standard_normal((num_embeddings, embedding_dim)) * 0.02,
                                name="embedding")

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        return self.weight[indices]


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._layers: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer_{index}", module)
            self._layers.append(module)

    def forward(self, inputs):
        output = inputs
        for layer in self._layers:
            output = layer(output)
        return output

    def __iter__(self):
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)


class MLP(Module):
    """Multi-layer perceptron with a configurable activation.

    This is the default backbone for the reproduction's PPO agent (the paper
    reports the MLP backbone also finds attacks, Sec. VI-B).
    """

    def __init__(self, input_dim: int, hidden_sizes: Sequence[int], output_dim: int,
                 activation: str = "tanh", output_gain: float = 1.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        activations = {"tanh": Tanh, "relu": ReLU, "sigmoid": Sigmoid}
        if activation not in activations:
            raise ValueError(f"unknown activation {activation!r}; choose from {sorted(activations)}")
        layers: List[Module] = []
        previous = input_dim
        for hidden in hidden_sizes:
            layers.append(Linear(previous, hidden, rng=rng))
            layers.append(activations[activation]())
            previous = hidden
        layers.append(Linear(previous, output_dim, gain=output_gain, rng=rng))
        self.network = Sequential(*layers)

    def forward(self, inputs: Tensor) -> Tensor:
        return self.network(inputs)
