"""Structure-of-arrays batched cache engine.

The object model in :mod:`repro.cache.cache` keeps one :class:`CacheBlock`
instance per line and one policy object per set — convenient for inspection,
but a Python-loop-per-access bottleneck when an RL trainer needs millions of
guessing-game steps.  This module keeps the state of **many independent cache
instances** (one per vectorized environment) as numpy arrays shaped
``[num_envs, num_sets, num_ways]`` and advances all of them with a handful of
array operations per call:

* hit detection is a broadcast tag compare (invalid lines carry tag -1, so no
  separate valid array is needed on the hot path);
* victim selection is a masked ``argmax``/``argmin`` per replacement policy
  (tree-PLRU walks its bit tree level-by-level, vectorized across envs);
* fills, flushes, and lock updates are fancy-indexed writes.

Bit-exact parity with the object model is a hard requirement (the vectorized
trainer must be a pure speedup, not a different simulator): every kernel
mirrors the corresponding object-path code, including tie-breaking order and —
for seeded-random replacement — the per-env ``Generator`` call sequence.  The
parity suite in ``tests/test_soa_parity.py`` drives both implementations with
identical traces and asserts identical hit/miss/eviction behavior.

Supported configurations: ``lru``, ``plru``, ``rrip``, ``random``, and ``mru``
replacement; ``modulo`` and ``random_permutation`` mappings; flushes and
PL-style lock/unlock.  Two defense fragments (``CacheConfig.extra["defense"]``,
compiled by :mod:`repro.defenses`) have vectorized kernels:

* ``keyed_remap`` — per-env keyed set-index hashing with a re-key epoch,
  mirroring :class:`repro.cache.defended.KeyedRemapCache` (same keyed hash,
  same per-env RNG draws for keys, same invalidate-on-epoch semantics);
* ``way_partition`` — victim/attacker way isolation with per-partition
  replacement metadata (lru/mru only), mirroring
  :class:`repro.cache.defended.WayPartitionCache`.

Prefetchers, multi-level hierarchies, and the other defenses stay on the
object path (see :func:`repro.env.batched_env.spec_supports_batching`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.mapping import (
    ModuloMapping,
    keyed_set_index,
    keyed_set_index_array,
    make_mapping,
)

# Domain codes used in the ``domains`` array.
DOMAIN_NONE = -1
DOMAIN_ATTACKER = 0
DOMAIN_VICTIM = 1
DOMAIN_CODES = {"attacker": DOMAIN_ATTACKER, "victim": DOMAIN_VICTIM}
DOMAIN_NAMES = {DOMAIN_ATTACKER: "attacker", DOMAIN_VICTIM: "victim"}

#: Replacement policies with a vectorized kernel.
SOA_POLICIES = ("lru", "plru", "rrip", "random", "mru")

#: Set mappings the engine can precompute into lookup tables.
SOA_MAPPINGS = ("modulo", "mod", "random", "random_permutation", "rand_perm")


def domain_code(domain: Optional[str]) -> int:
    """Integer code for a domain name (unknown/None -> DOMAIN_NONE)."""
    if domain is None:
        return DOMAIN_NONE
    return DOMAIN_CODES.get(domain, DOMAIN_NONE)


def _subset(sets, mask):
    """Row-subset a per-access set-index vector (scalar under 1-set configs)."""
    return sets[mask] if isinstance(sets, np.ndarray) else sets


class SoACacheEngine:
    """``num_envs`` independent caches stored as structure-of-arrays state.

    All batched methods take an array of env indices plus one address (and
    optionally one domain code) per selected env; each env performs at most
    one operation per call, which is exactly the shape of a vectorized
    environment step.  Addresses must be non-negative (the environment's
    action space guarantees it; the check lives on the object path).  Per-env
    accounting (access/miss counters, RNG streams for random replacement)
    matches one object :class:`~repro.cache.cache.Cache` per env seeded the
    same way.
    """

    def __init__(self, config: CacheConfig, num_envs: int,
                 rngs: Optional[Sequence[np.random.Generator]] = None,
                 track_stats: bool = True, track_domains: bool = True):
        if num_envs < 1:
            raise ValueError("num_envs must be >= 1")
        policy = config.rep_policy.lower()
        if policy not in SOA_POLICIES:
            raise ValueError(f"no SoA kernel for replacement policy {config.rep_policy!r}; "
                             f"supported: {SOA_POLICIES}")
        if policy == "plru" and config.num_ways & (config.num_ways - 1):
            raise ValueError("tree PLRU requires a power-of-two number of ways")
        if config.prefetcher:
            raise ValueError("the SoA engine does not model prefetchers; "
                             "use the object Cache for prefetcher configs")
        fragment = dict((config.extra or {}).get("defense") or {})
        defense_kind = fragment.get("kind")
        if defense_kind not in (None, "keyed_remap", "way_partition"):
            raise ValueError(f"no SoA kernel for defense kind {defense_kind!r}; "
                             "use the object Cache (VecEnv falls back "
                             "automatically)")
        self._keyed = defense_kind == "keyed_remap"
        self._partitioned = defense_kind == "way_partition"
        if self._keyed and config.mapping.lower() not in ("modulo", "mod"):
            raise ValueError("the keyed-remap kernel replaces the set mapping; "
                             "configure the base cache with modulo mapping")
        if self._partitioned and policy not in ("lru", "mru"):
            raise ValueError("the way-partition SoA kernel supports lru/mru "
                             f"replacement only, not {config.rep_policy!r}")
        self.config = config
        self.num_envs = num_envs
        self.policy = policy
        if rngs is None:
            rngs = [np.random.default_rng(config.rng_seed) for _ in range(num_envs)]
        if len(rngs) != num_envs:
            raise ValueError("need one rng per env")
        self.rngs: List[np.random.Generator] = list(rngs)

        E, S, W = num_envs, config.num_sets, config.num_ways
        # Tag -1 marks an invalid line; real tags are >= 0 because addresses are.
        self.tags = np.full((E, S, W), -1, dtype=np.int64)
        self.domains = np.full((E, S, W), DOMAIN_NONE, dtype=np.int8)
        self.dirty = np.zeros((E, S, W), dtype=bool)
        self.locked = np.zeros((E, S, W), dtype=bool)
        self.access_count = np.zeros(E, dtype=np.int64)
        self.miss_count = np.zeros(E, dtype=np.int64)
        self._lockable = config.lockable
        # The env hot path opts out of per-access counters and per-line domain
        # codes (it never reads them); eviction collection needs domains.
        self._track_stats = track_stats
        self._track_domains = track_domains
        # Writes are rare in the guessing game; skip dirty-bit maintenance
        # until the first one happens.
        self._any_dirty = False
        self._all_ways = np.arange(W, dtype=np.int64)
        self._arange_cache = {}
        # Hot-path scratch: empty results for n == 0 early-outs, a constant
        # ones vector for the domain-less partition fallback, and a victim
        # buffer for the random-policy loop (all sliced to the call width, so
        # the steady-state access path never allocates).
        self._empty_bool = np.empty(0, dtype=bool)
        self._empty_i64 = np.empty(0, dtype=np.int64)
        self._ones_i64 = np.ones(E, dtype=np.int64)
        self._victim_scratch = np.empty(E, dtype=np.int64)

        # Way-partition defense: per-partition replacement metadata.  The
        # absolute ages array holds partition-relative ages (each partition is
        # an independent permutation of 0..size-1), so victim selection and
        # aging are masked to the accessing domain's partition.
        if self._partitioned:
            victim_ways = int(fragment["victim_ways"])
            if not 1 <= victim_ways < W:
                raise ValueError(f"victim_ways ({victim_ways}) must be in "
                                 f"[1, num_ways ({W}))")
            if config.lockable:
                raise ValueError("way partitioning cannot be combined with "
                                 "PL locking")
            self.victim_ways = victim_ways
            way_partition = np.array([0] * victim_ways + [1] * (W - victim_ways),
                                     dtype=np.int64)
            self._way_partition = way_partition
            self._partition_masks = np.stack([way_partition == 0,
                                              way_partition == 1])
            self._partition_ages = np.concatenate(
                [np.arange(victim_ways, dtype=np.int64),
                 np.arange(W - victim_ways, dtype=np.int64)])
        # Keyed-remap defense: one remap key per env, re-drawn from the env's
        # RNG every rekey_epoch accesses (and on reset), mirroring
        # KeyedRemapCache's stream consumption exactly.
        if self._keyed:
            self._rekey_epoch = int(fragment.get("rekey_epoch", 32))
            if self._rekey_epoch < 1:
                raise ValueError("rekey_epoch must be >= 1")
            if config.lockable:
                raise ValueError("keyed remapping cannot be combined with "
                                 "PL locking")
            self._keys = np.zeros(E, dtype=np.int64)
            self._rekey_counter = np.zeros(E, dtype=np.int64)

        # Replacement state, one flavour per policy.
        if policy in ("lru", "mru"):
            self.ages = np.empty((E, S, W), dtype=np.int64)
        elif policy == "plru":
            self.plru_bits = np.zeros((E, S, max(W - 1, 1)), dtype=np.int8)
            self._plru_paths()
        elif policy == "rrip":
            self.max_rrpv = (1 << 2) - 1
            self.insert_rrpv = self.max_rrpv - 1
            self.rrpv = np.empty((E, S, W), dtype=np.int64)

        # Address -> (set, tag) lookup tables, grown lazily; delegating to the
        # real mapping object guarantees parity with the object path
        # (including the random-permutation per-address hash).  Under modulo
        # mapping the address is recoverable as ``tag * num_sets + set``, so
        # no per-line address array is needed.
        self._mapping = make_mapping(config.mapping, S, seed=config.mapping_seed)
        self._addr_set_list: List[int] = []
        self._addr_tag_list: List[int] = []
        # Modulo set/tag are two integer ops; only the permuted mapping needs
        # the memoized lookup tables (and a per-line address array, since the
        # permuted set index is not invertible).  Keyed remapping hashes the
        # whole address per env key, so the address is its own tag and no
        # lookup table or address array applies.
        self._modulo = isinstance(self._mapping, ModuloMapping) and not self._keyed
        self._track_addresses = not self._modulo and not self._keyed
        if self._track_addresses:
            self.addresses = np.full((E, S, W), -1, dtype=np.int64)
        self._addr_set = np.empty(0, dtype=np.int64)
        self._addr_tag = np.empty(0, dtype=np.int64)

        self._all_envs = np.arange(E, dtype=np.intp)
        self.reset()

    # ------------------------------------------------------------------ state
    def _plru_paths(self) -> None:
        """Precompute per-way root-to-leaf paths of the PLRU bit tree."""
        W = self.config.num_ways
        depth = max(W.bit_length() - 1, 0)
        self._plru_path_nodes = np.zeros((W, depth), dtype=np.int64)
        self._plru_path_away = np.zeros((W, depth), dtype=np.int8)
        self._plru_path_pairs = [[] for _ in range(W)]
        for way in range(W):
            node, low, high = 0, 0, W
            for level in range(depth):
                mid = (low + high) // 2
                direction = 0 if way < mid else 1
                self._plru_path_nodes[way, level] = node
                # Touching a way points the bit away from it.
                self._plru_path_away[way, level] = 1 - direction
                self._plru_path_pairs[way].append((node, 1 - direction))
                node = 2 * node + 1 + direction
                if direction == 0:
                    high = mid
                else:
                    low = mid

    def _arange(self, n: int) -> np.ndarray:
        cached = self._arange_cache.get(n)
        if cached is None:
            cached = self._arange_cache[n] = np.arange(n)
        return cached

    def reset(self, env_indices: Optional[np.ndarray] = None) -> None:
        """Invalidate all lines and reset replacement state for the given envs."""
        e = self._all_envs if env_indices is None else np.asarray(env_indices, dtype=np.intp)
        self.tags[e] = -1
        self.domains[e] = DOMAIN_NONE
        if self._any_dirty:
            self.dirty[e] = False
        if self._lockable:
            self.locked[e] = False
        if self._track_addresses:
            self.addresses[e] = -1
        self.access_count[e] = 0
        self.miss_count[e] = 0
        self._reset_replacement_state(e)
        if self._keyed:
            # Same per-env draw (and stream position) as KeyedRemapCache:
            # reset draws a fresh key before any warm-up access.
            self._rekey_counter[e] = 0
            for env in e:
                self._keys[env] = self.rngs[env].integers(1 << 63)

    def _reset_replacement_state(self, e) -> None:
        if self.policy in ("lru", "mru"):
            self.ages[e] = self._partition_ages if self._partitioned else self._all_ways
        elif self.policy == "plru":
            self.plru_bits[e] = 0
        elif self.policy == "rrip":
            self.rrpv[e] = self.max_rrpv

    @property
    def valid(self) -> np.ndarray:
        """Validity mask derived from the tag array (tag -1 = invalid)."""
        return self.tags >= 0

    def _ensure_mapped(self, max_address: int) -> None:
        old = self._addr_set.shape[0]
        new = max(max_address + 1, 2 * old, 16)
        addr_set = np.empty(new, dtype=np.int64)
        addr_tag = np.empty(new, dtype=np.int64)
        addr_set[:old] = self._addr_set
        addr_tag[:old] = self._addr_tag
        for address in range(old, new):
            addr_set[address], addr_tag[address] = self._mapping.locate(address)
        self._addr_set = addr_set
        self._addr_tag = addr_tag
        # Python-int twins used by the scalar warm-up path.
        self._addr_set_list = addr_set.tolist()
        self._addr_tag_list = addr_tag.tolist()

    def _locate(self, addresses: np.ndarray, env_indices: np.ndarray) -> tuple:
        if self._keyed:
            # Per-env keyed hash; the address doubles as the tag.
            return keyed_set_index_array(addresses, self._keys[env_indices],
                                         self.config.num_sets), addresses
        if self._modulo:
            num_sets = self.config.num_sets
            if num_sets == 1:
                # Fully associative: one set, the address is the tag.
                return 0, addresses
            return addresses % num_sets, addresses // num_sets
        if addresses.size:
            max_address = int(addresses.max())
            if max_address >= self._addr_set.shape[0]:
                self._ensure_mapped(max_address)
        return self._addr_set[addresses], self._addr_tag[addresses]

    def _line_addresses(self, e: np.ndarray, s: np.ndarray,
                        w: np.ndarray, tags: np.ndarray) -> np.ndarray:
        """Addresses of the given lines (reconstructed from tags under modulo)."""
        if self._track_addresses:
            return self.addresses[e, s, w]
        if self._keyed:
            return tags
        return tags * self.config.num_sets + s

    # ----------------------------------------------------------------- access
    def access(self, env_indices: np.ndarray, addresses: np.ndarray,
               domains: Optional[np.ndarray] = None, write: bool = False,
               collect: bool = True) -> tuple:
        """One access per selected env; returns ``(hit, way, evicted_addr, evicted_domain)``.

        ``env_indices`` must not contain duplicates (one operation per env per
        call).  Eviction outputs are -1 / DOMAIN_NONE where nothing was
        evicted, and ``None`` when ``collect=False`` (the env hot path skips
        that bookkeeping).
        """
        e = np.asarray(env_indices, dtype=np.intp)
        a = np.asarray(addresses, dtype=np.int64)
        n = e.shape[0]
        if n == 0:
            empty = self._empty_i64
            return self._empty_bool, empty, empty, empty
        if collect and not self._track_domains:
            raise ValueError("collect=True requires track_domains=True")
        s, t = self._locate(a, e)
        if self._track_stats:
            self.access_count[e] += 1
        partition = None
        if self._partitioned:
            # Partition 0 is the victim's; everyone else fills partition 1.
            partition = (self._ones_i64[:n] if domains is None else
                         (np.asarray(domains) != DOMAIN_VICTIM).astype(np.int64))

        set_tags = self.tags[e, s]
        match = set_tags == t[:, None]
        hit = match.any(axis=1)
        way = match.argmax(axis=1)
        evicted_addr = evicted_dom = None

        all_hit = hit.all()
        if not all_hit:
            miss = ~hit
            me, ms, mt = e[miss], _subset(s, miss), t[miss]
            if self._track_stats:
                self.miss_count[me] += 1
            miss_tags = set_tags[miss]
            allowed = (None if partition is None
                       else self._partition_masks[partition[miss]])
            victim = self._choose_victims(me, ms, miss_tags, allowed)
            if collect:
                victim_tags = miss_tags[self._arange(me.shape[0]), victim]
                victim_valid = victim_tags >= 0
                # Eviction collection is the parity/bookkeeping path; the env
                # hot path passes collect=False and never reaches these.
                evicted_addr = np.full(n, -1, dtype=np.int64)  # repro-lint: disable=hotpath.numpy-alloc
                evicted_dom = np.full(n, DOMAIN_NONE, dtype=np.int8)  # repro-lint: disable=hotpath.numpy-alloc
                evicted_addr[miss] = np.where(
                    victim_valid,
                    self._line_addresses(me, ms, victim, victim_tags), -1)
                evicted_dom[miss] = np.where(
                    victim_valid, self.domains[me, ms, victim], DOMAIN_NONE)
            self.tags[me, ms, victim] = mt
            if self._track_domains:
                self.domains[me, ms, victim] = (
                    DOMAIN_NONE if domains is None
                    else np.asarray(domains, dtype=np.int8)[miss])
            if self._track_addresses:
                self.addresses[me, ms, victim] = a[miss]
            if not write and self._any_dirty:
                self.dirty[me, ms, victim] = False
            way[miss] = victim
        elif collect:
            evicted_addr = np.full(n, -1, dtype=np.int64)  # repro-lint: disable=hotpath.numpy-alloc
            evicted_dom = np.full(n, DOMAIN_NONE, dtype=np.int8)  # repro-lint: disable=hotpath.numpy-alloc
        if write:
            self.dirty[e, s, way] = True
            self._any_dirty = True
        # Every row is a distinct env, so hit touches and fill touches are
        # independent and can run as one combined update (victim selection
        # above already read the pre-touch state, as the object path does).
        self._on_touch(e, s, way, hit)
        if self._keyed:
            # The epoch-closing access completes first (its fill and touch are
            # visible above), then the due envs re-key and invalidate.
            self._rekey_counter[e] += 1
            due_envs = e[self._rekey_counter[e] >= self._rekey_epoch]
            if due_envs.shape[0]:
                self._rekey(due_envs)
        return hit, way, evicted_addr, evicted_dom

    def _rekey(self, e: np.ndarray) -> None:
        """Epoch boundary for the given envs: invalidate, fresh state, new key."""
        self.tags[e] = -1
        if self._track_domains:
            self.domains[e] = DOMAIN_NONE
        if self._any_dirty:
            self.dirty[e] = False
        self._reset_replacement_state(e)
        self._rekey_counter[e] = 0
        for env in e:
            self._keys[env] = self.rngs[env].integers(1 << 63)

    def warm_up(self, env_indices: np.ndarray, addresses: np.ndarray,
                domains: Optional[np.ndarray] = None) -> None:
        """Replay ``addresses[i, k]`` in k-order for each selected env ``i``."""
        for k in range(addresses.shape[1]):
            self.access(env_indices, addresses[:, k], domains, collect=False)

    def warm_up_from_empty(self, env: int, addresses: Sequence[int],
                           domain: int = DOMAIN_ATTACKER) -> None:
        """Warm one just-reset env with a scalar (non-numpy) replay.

        Auto-reset warms only the few envs whose episode just ended, so the
        vectorized kernels would run at batch width 1-2 where per-op numpy
        overhead dominates; replaying the trace with plain Python ints on the
        pulled-out set state is ~10x faster at that width.  Semantics mirror
        ``access()`` exactly (same victims, same RNG consumption for random
        replacement).  Requires a lock-free env, which a fresh reset
        guarantees.
        """
        if self._lockable and self.locked[env].any():
            raise RuntimeError("scalar warm-up assumes no locked lines; "
                               "use warm_up() after locking")
        keyed = self._keyed
        modulo = self._modulo
        num_sets = self.config.num_sets
        if keyed:
            key = int(self._keys[env])
            counter = int(self._rekey_counter[env])
        elif not modulo:
            if addresses and max(addresses) >= self._addr_set.shape[0]:
                self._ensure_mapped(max(addresses))
            addr_set, addr_tag = self._addr_set_list, self._addr_tag_list
        W = self.config.num_ways
        ways = range(W)
        if self._partitioned:
            # All accesses of one warm-up share the caller's domain, so the
            # fill partition is fixed for the whole replay.
            fill_lo, fill_hi = self._scalar_partition_bounds(
                0 if domain == DOMAIN_VICTIM else self.victim_ways)
        else:
            fill_lo, fill_hi = 0, W
        tags = self.tags[env].tolist()
        doms = self.domains[env].tolist() if self._track_domains else None
        addrs = self.addresses[env].tolist() if self._track_addresses else None
        state = self._scalar_state(env)
        misses = 0
        for address in addresses:
            if keyed:
                s = keyed_set_index(address, key, num_sets)
                t = address
            elif modulo:
                s = address % num_sets
                t = address // num_sets
            else:
                s = addr_set[address]
                t = addr_tag[address]
            row = tags[s]
            way = -1
            for w in ways:
                if row[w] == t:
                    way = w
                    break
            if way >= 0:
                self._scalar_on_hit(state, s, way)
            else:
                misses += 1
                way = self._scalar_victim(env, row, state, s, fill_lo, fill_hi)
                row[way] = t
                if doms is not None:
                    doms[s][way] = domain
                if addrs is not None:
                    addrs[s][way] = address
                self._scalar_on_fill(state, s, way)
            if keyed:
                counter += 1
                if counter >= self._rekey_epoch:
                    # Mid-warm-up epoch boundary, mirroring _rekey().
                    for set_tags in tags:
                        for w in ways:
                            set_tags[w] = -1
                    if doms is not None:
                        for set_doms in doms:
                            for w in ways:
                                set_doms[w] = DOMAIN_NONE
                    state = self._scalar_fresh_state()
                    counter = 0
                    key = int(self.rngs[env].integers(1 << 63))
        self.tags[env] = tags
        if doms is not None:
            self.domains[env] = doms
        if addrs is not None:
            self.addresses[env] = addrs
        if self.policy in ("lru", "mru"):
            self.ages[env] = state
        elif self.policy == "plru":
            self.plru_bits[env] = state
        elif self.policy == "rrip":
            self.rrpv[env] = state
        if keyed:
            self._keys[env] = key
            self._rekey_counter[env] = counter
        if self._track_stats:
            self.access_count[env] += len(addresses)
            self.miss_count[env] += misses

    # ------------------------------------------------- scalar warm-up helpers
    def _scalar_state(self, env: int):
        """The env's replacement state pulled out as nested Python lists."""
        if self.policy in ("lru", "mru"):
            return self.ages[env].tolist()
        if self.policy == "plru":
            return self.plru_bits[env].tolist()
        if self.policy == "rrip":
            return self.rrpv[env].tolist()
        return None

    def _scalar_fresh_state(self):
        """Freshly-reset replacement state as nested Python lists (re-key)."""
        S, W = self.config.num_sets, self.config.num_ways
        if self.policy in ("lru", "mru"):
            template = (self._partition_ages.tolist() if self._partitioned
                        else list(range(W)))
            return [list(template) for _ in range(S)]
        if self.policy == "plru":
            return [[0] * max(W - 1, 1) for _ in range(S)]
        if self.policy == "rrip":
            return [[self.max_rrpv] * W for _ in range(S)]
        return None

    def _scalar_partition_bounds(self, way: int) -> tuple:
        """[low, high) ways of the partition holding ``way`` (whole set if none)."""
        if not self._partitioned:
            return 0, self.config.num_ways
        if way < self.victim_ways:
            return 0, self.victim_ways
        return self.victim_ways, self.config.num_ways

    def _scalar_victim(self, env: int, row: list, state, s: int,
                       lo: int = 0, hi: Optional[int] = None) -> int:
        """Victim way for one lock-free set given as Python lists.

        ``[lo, hi)`` restricts candidates to the filling domain's way
        partition (the whole set without the way-partition defense).
        """
        if hi is None:
            hi = self.config.num_ways
        for w in range(lo, hi):
            if row[w] < 0:
                return w
        if self.policy == "lru":
            ages = state[s]
            return max(range(lo, hi), key=lambda w: ages[w])
        if self.policy == "mru":
            ages = state[s]
            return min(range(lo, hi), key=lambda w: ages[w])
        if self.policy == "rrip":
            rrpv = state[s]
            while True:
                for w in range(self.config.num_ways):
                    if rrpv[w] >= self.max_rrpv:
                        return w
                for w in range(self.config.num_ways):
                    rrpv[w] += 1
        if self.policy == "plru":
            bits = state[s]
            node, low, high = 0, 0, self.config.num_ways
            while high - low > 1:
                mid = (low + high) // 2
                direction = bits[node]
                node = 2 * node + 1 + direction
                if direction == 0:
                    high = mid
                else:
                    low = mid
            return low
        return int(self.rngs[env].choice(self._all_ways))

    def _scalar_on_hit(self, state, s: int, way: int) -> None:
        if self.policy in ("lru", "mru"):
            lo, hi = self._scalar_partition_bounds(way)
            self._scalar_touch_ages(state[s], way, lo, hi)
        elif self.policy == "plru":
            bits = state[s]
            for node, away in self._plru_path_pairs[way]:
                bits[node] = away
        elif self.policy == "rrip":
            state[s][way] = 0

    def _scalar_on_fill(self, state, s: int, way: int) -> None:
        if self.policy == "rrip":
            state[s][way] = self.insert_rrpv
        else:
            self._scalar_on_hit(state, s, way)

    @staticmethod
    def _scalar_touch_ages(ages: list, way: int, lo: int, hi: int) -> None:
        old = ages[way]
        for w in range(lo, hi):
            if ages[w] < old:
                ages[w] += 1
        ages[way] = 0

    # -------------------------------------------------------- victim selection
    def _choose_victims(self, e: np.ndarray, s: np.ndarray,
                        set_tags: np.ndarray,
                        allowed: Optional[np.ndarray] = None) -> np.ndarray:
        """Victim way per (env, set) row: first free way, else the policy pick.

        ``set_tags`` are the pre-gathered tag rows for these (env, set) pairs;
        ``allowed`` (way-partition defense) restricts candidates to the
        accessing domain's partition.
        """
        candidates = allowed
        if self._lockable:
            unlocked_rows = ~self.locked[e, s]
            candidates = (unlocked_rows if candidates is None
                          else candidates & unlocked_rows)
        free = (set_tags < 0) if candidates is None else (set_tags < 0) & candidates
        victim = free.argmax(axis=1)
        need_policy = ~free.any(axis=1)
        if need_policy.any():
            pe, ps = e[need_policy], _subset(s, need_policy)
            mask = None if candidates is None else candidates[need_policy]
            if self._lockable and mask is not None and not mask.any(axis=1).all():
                raise RuntimeError(
                    f"cannot choose a victim: all {self.config.num_ways} "
                    "ways are locked in at least one set")
            victim[need_policy] = self._policy_victim(pe, ps, mask)
        return victim

    def _policy_victim(self, e: np.ndarray, s: np.ndarray,
                       unlocked: Optional[np.ndarray]) -> np.ndarray:
        if self.policy == "lru":
            # First way with the maximal age among unlocked ways (ages are a
            # permutation, so ties cannot occur without locks).
            ages = self.ages[e, s]
            if unlocked is not None:
                ages = np.where(unlocked, ages, -1)
            return ages.argmax(axis=1)
        if self.policy == "mru":
            ages = self.ages[e, s]
            if unlocked is not None:
                ages = np.where(unlocked, ages, self.config.num_ways)
            return ages.argmin(axis=1)
        if self.policy == "rrip":
            return self._rrip_victim(e, s, unlocked)
        if self.policy == "plru":
            return self._plru_victim(e, s, unlocked)
        # random: must consume each env's generator exactly like
        # RandomPolicy._select_victim (rng.choice over the unlocked ways).
        victim = self._victim_scratch[:e.shape[0]]
        for i in range(e.shape[0]):
            candidates = (self._all_ways if unlocked is None
                          else np.flatnonzero(unlocked[i]))
            victim[i] = int(self.rngs[e[i]].choice(candidates))
        return victim

    def _rrip_victim(self, e: np.ndarray, s: np.ndarray,
                     unlocked: Optional[np.ndarray]) -> np.ndarray:
        rrpv = self.rrpv[e, s]
        masked = rrpv if unlocked is None else np.where(unlocked, rrpv, -1)
        # The object loop increments all candidates until one reaches
        # max_rrpv; that is a single += of the remaining deficit.
        deficit = np.maximum(self.max_rrpv - masked.max(axis=1), 0)
        if unlocked is None:
            rrpv = rrpv + deficit[:, None]
            masked = rrpv
        else:
            rrpv = np.where(unlocked, rrpv + deficit[:, None], rrpv)
            masked = np.where(unlocked, rrpv, -1)
        self.rrpv[e, s] = rrpv
        return (masked >= self.max_rrpv).argmax(axis=1)

    def _plru_victim(self, e: np.ndarray, s: np.ndarray,
                     unlocked: Optional[np.ndarray]) -> np.ndarray:
        n = e.shape[0]
        bits_rows = self.plru_bits[e, s]
        rows = self._arange(n)
        node = np.zeros(n, dtype=np.int64)
        low = np.zeros(n, dtype=np.int64)
        span = self.config.num_ways
        while span > 1:
            direction = bits_rows[rows, node].astype(np.int64)
            node = 2 * node + 1 + direction
            span //= 2
            low += direction * span
        victim = low
        if unlocked is not None:
            # A locked pseudo-LRU leaf falls back to the first unlocked way,
            # matching PLRUPolicy._select_victim.
            blocked = ~unlocked[rows, victim]
            if blocked.any():
                victim[blocked] = unlocked[blocked].argmax(axis=1)
        return victim

    # --------------------------------------------------- replacement updates
    def _touch_ages(self, e: np.ndarray, s: np.ndarray, w: np.ndarray) -> None:
        rows = self.ages[e, s]
        idx = self._arange(rows.shape[0])
        old = rows[idx, w]
        if self._partitioned:
            # Aging stays inside the touched way's partition (metadata
            # ownership follows the way, as in WayPartitionCache).
            rows += (rows < old[:, None]) & self._partition_masks[self._way_partition[w]]
        else:
            rows += rows < old[:, None]
        rows[idx, w] = 0
        self.ages[e, s] = rows

    def _touch_plru(self, e: np.ndarray, s, w: np.ndarray) -> None:
        if self._plru_path_nodes.shape[1] == 0:
            return
        sets = s if isinstance(s, int) else s[:, None]
        self.plru_bits[e[:, None], sets, self._plru_path_nodes[w]] = \
            self._plru_path_away[w]

    def _on_touch(self, e: np.ndarray, s, w: np.ndarray,
                  hit: np.ndarray) -> None:
        """Combined replacement update for one batch of hits and fills."""
        if self.policy in ("lru", "mru"):
            self._touch_ages(e, s, w)
        elif self.policy == "plru":
            self._touch_plru(e, s, w)
        elif self.policy == "rrip":
            # Hit promotion is RRPV 0, fill insertion is insert_rrpv.
            self.rrpv[e, s, w] = np.where(hit, 0, self.insert_rrpv)

    # ------------------------------------------------------------ flush/locks
    def flush(self, env_indices: np.ndarray, addresses: np.ndarray) -> np.ndarray:
        """clflush per selected env; returns the per-env residency mask."""
        e = np.asarray(env_indices, dtype=np.intp)
        a = np.asarray(addresses, dtype=np.int64)
        if e.shape[0] == 0:
            return self._empty_bool
        s, t = self._locate(a, e)
        match = self.tags[e, s] == t[:, None]
        resident = match.any(axis=1)
        if resident.any():
            re, rs = e[resident], _subset(s, resident)
            rw = match.argmax(axis=1)[resident]
            self.tags[re, rs, rw] = -1
            if self._track_domains:
                self.domains[re, rs, rw] = DOMAIN_NONE
            if self._lockable:
                self.locked[re, rs, rw] = False
            if self._any_dirty:
                self.dirty[re, rs, rw] = False
            if self._track_addresses:
                self.addresses[re, rs, rw] = -1
        return resident

    def lock(self, env_indices: np.ndarray, addresses: np.ndarray,
             domains: Optional[np.ndarray] = None) -> None:
        """Install (if needed) and pin one address per selected env."""
        if not self._lockable:
            raise RuntimeError("this cache configuration does not support locking")
        e = np.asarray(env_indices, dtype=np.intp)
        a = np.asarray(addresses, dtype=np.int64)
        if e.shape[0] == 0:
            return
        s, t = self._locate(a, e)
        match = self.tags[e, s] == t[:, None]
        resident = match.any(axis=1)
        way = match.argmax(axis=1)
        absent = ~resident
        if absent.any():
            dom = None if domains is None else np.asarray(domains, dtype=np.int8)[absent]
            _, filled_way, _, _ = self.access(e[absent], a[absent], dom, collect=False)
            way[absent] = filled_way
        self.locked[e, s, way] = True

    def unlock(self, env_indices: np.ndarray, addresses: np.ndarray) -> None:
        if not self._lockable:
            raise RuntimeError("this cache configuration does not support locking")
        e = np.asarray(env_indices, dtype=np.intp)
        a = np.asarray(addresses, dtype=np.int64)
        if e.shape[0] == 0:
            return
        s, t = self._locate(a, e)
        match = self.tags[e, s] == t[:, None]
        resident = match.any(axis=1)
        if resident.any():
            re, rs = e[resident], _subset(s, resident)
            self.locked[re, rs, match.argmax(axis=1)[resident]] = False

    # -------------------------------------------------------------- inspection
    @property
    def domain_sensitive(self) -> bool:
        """Whether accesses must carry domains (the way-partition defense)."""
        return self._partitioned

    def _locate_scalar(self, address: int, env: int = 0) -> tuple:
        if self._keyed:
            return keyed_set_index(address, int(self._keys[env]),
                                   self.config.num_sets), address
        if self._modulo:
            num_sets = self.config.num_sets
            return address % num_sets, address // num_sets
        if address >= self._addr_set.shape[0]:
            self._ensure_mapped(address)
        return self._addr_set_list[address], self._addr_tag_list[address]

    def lookup(self, env: int, address: int) -> Optional[int]:
        """Way holding ``address`` in env ``env``, or None (no side effects)."""
        s, t = self._locate_scalar(address, env)
        match = self.tags[env, s] == t
        if not match.any():
            return None
        return int(match.argmax())

    def contains(self, env: int, address: int) -> bool:
        return self.lookup(env, address) is not None

    def contents(self, env: int) -> List[int]:
        """All valid line addresses resident in env ``env`` (sorted)."""
        tags = self.tags[env]
        resident = tags >= 0
        if self._track_addresses:
            lines = self.addresses[env][resident]
        elif self._keyed:
            lines = tags[resident]  # full-address tags
        else:
            sets = np.broadcast_to(
                np.arange(self.config.num_sets)[:, None], tags.shape)
            lines = (tags * self.config.num_sets + sets)[resident]
        return sorted(int(x) for x in lines)

    def locked_ways(self, env: int, set_index: int) -> frozenset:
        """Ways holding locked valid lines (mirrors ``Cache.locked_ways``)."""
        mask = self.locked[env, set_index] & (self.tags[env, set_index] >= 0)
        return frozenset(int(w) for w in np.flatnonzero(mask))

    def replacement_state(self, env: int, set_index: int = 0) -> tuple:
        """Snapshot matching ``ReplacementPolicy.state_snapshot`` per policy."""
        if self.policy in ("lru", "mru"):
            return tuple(int(x) for x in self.ages[env, set_index])
        if self.policy == "plru":
            return tuple(int(x) for x in self.plru_bits[env, set_index])
        if self.policy == "rrip":
            return tuple(int(x) for x in self.rrpv[env, set_index])
        return ()

    def hit_rate(self, env: int) -> float:
        if self.access_count[env] == 0:
            return 0.0
        return 1.0 - float(self.miss_count[env]) / float(self.access_count[env])
