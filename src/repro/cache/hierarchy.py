"""Two-level cache hierarchy: private L1 caches and a shared inclusive L2.

Configurations 16 and 17 in Table IV place the attacker and victim on two
cores, each with a private direct-mapped L1, sharing an inclusive L2.  The
attack exploits contention in the shared L2: on an L2 eviction, inclusion
forces the line out of whichever L1 holds it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cache.cache import AccessResult, Cache
from repro.cache.config import CacheConfig


@dataclass
class HierarchyResult:
    """Outcome of a hierarchy access: which level hit and the total latency."""

    address: int
    l1_hit: bool
    l2_hit: bool
    latency: int
    l2_result: Optional[AccessResult] = None

    @property
    def hit(self) -> bool:
        """Treat an L1 hit as "fast"; everything else is observed as a miss."""
        return self.l1_hit

    @property
    def miss(self) -> bool:
        return not self.hit


class TwoLevelCache:
    """Private per-core L1 caches in front of a shared inclusive L2."""

    def __init__(self, l1_config: CacheConfig, l2_config: CacheConfig,
                 cores: int = 2, rng: Optional[np.random.Generator] = None):
        self.rng = rng or np.random.default_rng(l2_config.rng_seed)
        self.cores = cores
        self.l1_caches: Dict[int, Cache] = {
            core: Cache(l1_config, rng=self.rng) for core in range(cores)
        }
        self.l2 = Cache(l2_config, rng=self.rng)
        self.l1_config = l1_config
        self.l2_config = l2_config

    def reset(self) -> None:
        for cache in self.l1_caches.values():
            cache.reset()
        self.l2.reset()

    def access(self, address: int, core: int, domain: Optional[str] = None) -> HierarchyResult:
        """Access ``address`` from ``core``; maintain inclusion on L2 evictions."""
        if core not in self.l1_caches:
            raise ValueError(f"unknown core {core}")
        l1 = self.l1_caches[core]
        l1_result = l1.access(address, domain=domain)
        if l1_result.hit:
            return HierarchyResult(address=address, l1_hit=True, l2_hit=True,
                                   latency=self.l1_config.hit_latency)

        l2_result = self.l2.access(address, domain=domain)
        # Inclusive L2: if the L2 evicted a line, back-invalidate it in every L1.
        if l2_result.evicted_address is not None:
            for cache in self.l1_caches.values():
                cache.flush(l2_result.evicted_address, record=False)
        latency = self.l1_config.miss_latency if l2_result.hit else self.l2_config.miss_latency
        return HierarchyResult(address=address, l1_hit=False, l2_hit=l2_result.hit,
                               latency=latency, l2_result=l2_result)

    def flush(self, address: int, domain: Optional[str] = None) -> None:
        for cache in self.l1_caches.values():
            cache.flush(address, domain=domain, record=False)
        self.l2.flush(address, domain=domain)

    def contains(self, address: int, level: str = "l2") -> bool:
        if level == "l2":
            return self.l2.contains(address)
        return any(cache.contains(address) for cache in self.l1_caches.values())
