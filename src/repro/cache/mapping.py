"""Address-to-set mappings: modulo indexing and fixed random permutations."""

from __future__ import annotations

from typing import Dict

import numpy as np


class SetMapping:
    """Maps a cache-line address to (set index, tag)."""

    def __init__(self, num_sets: int):
        if num_sets < 1:
            raise ValueError("num_sets must be >= 1")
        self.num_sets = num_sets

    def set_index(self, address: int) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def tag(self, address: int) -> int:
        return address // self.num_sets

    def locate(self, address: int) -> tuple:
        return self.set_index(address), self.tag(address)


class ModuloMapping(SetMapping):
    """Conventional modulo set indexing (PIPT, low-order bits)."""

    name = "modulo"

    def set_index(self, address: int) -> int:
        return address % self.num_sets


class RandomPermutationMapping(SetMapping):
    """Fixed random address-to-set permutation (Sec. V-B, randomized mapping).

    A pseudo-random but fixed permutation of set indices is applied to the
    modulo index, so addresses that would map to set ``i`` map instead to
    ``perm[i]``, and additionally each address gets a per-address scramble to
    break the simple stride structure the attacker could rely on.
    """

    name = "random_permutation"

    def __init__(self, num_sets: int, seed: int = 0):
        super().__init__(num_sets)
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._permutation = rng.permutation(num_sets)
        self._address_cache: Dict[int, int] = {}
        self._rng = np.random.default_rng(seed + 1)

    def set_index(self, address: int) -> int:
        if address not in self._address_cache:
            # Deterministic per-address hash derived from the seed.
            hashed = np.random.default_rng(self.seed * 1_000_003 + address).integers(self.num_sets)
            self._address_cache[address] = int(self._permutation[hashed])
        return self._address_cache[address]


def make_mapping(name: str, num_sets: int, seed: int = 0) -> SetMapping:
    """Construct the set mapping registered under ``name``."""
    key = name.lower()
    if key in ("modulo", "mod"):
        return ModuloMapping(num_sets)
    if key in ("random", "random_permutation", "rand_perm"):
        return RandomPermutationMapping(num_sets, seed=seed)
    raise ValueError(f"unknown mapping {name!r}")
