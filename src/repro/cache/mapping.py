"""Address-to-set mappings: modulo, fixed random permutations, keyed hashes."""

from __future__ import annotations

from typing import Dict

import numpy as np

# splitmix64-style finalizer constants shared by the scalar and vectorized
# keyed set hashes (the two must agree bit-for-bit).
KEYED_HASH_GOLDEN = 0x9E3779B97F4A7C15
KEYED_HASH_MIX = 0xBF58476D1CE4E5B9
_MASK64 = (1 << 64) - 1


def keyed_set_index(address: int, key: int, num_sets: int) -> int:
    """Keyed set index of one address (CEASER-style keyed hash, scalar path).

    Unlike a permutation of the modulo index, the keyed hash breaks the
    congruence classes the attacker's eviction sets rely on: two addresses
    that collide under one key are unrelated under the next.
    """
    x = ((address + 1) * KEYED_HASH_GOLDEN + key) & _MASK64
    x ^= x >> 31
    x = (x * KEYED_HASH_MIX) & _MASK64
    x ^= x >> 27
    return int(x % num_sets)


def keyed_set_index_array(addresses: np.ndarray, keys: np.ndarray,
                          num_sets: int) -> np.ndarray:
    """Vectorized twin of :func:`keyed_set_index` (uint64 wraparound math)."""
    x = (addresses.astype(np.uint64) + np.uint64(1)) * np.uint64(KEYED_HASH_GOLDEN)
    x = x + keys.astype(np.uint64)
    x ^= x >> np.uint64(31)
    x = x * np.uint64(KEYED_HASH_MIX)
    x ^= x >> np.uint64(27)
    return (x % np.uint64(num_sets)).astype(np.int64)


class SetMapping:
    """Maps a cache-line address to (set index, tag)."""

    def __init__(self, num_sets: int):
        if num_sets < 1:
            raise ValueError("num_sets must be >= 1")
        self.num_sets = num_sets

    def set_index(self, address: int) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def tag(self, address: int) -> int:
        return address // self.num_sets

    def locate(self, address: int) -> tuple:
        return self.set_index(address), self.tag(address)


class ModuloMapping(SetMapping):
    """Conventional modulo set indexing (PIPT, low-order bits)."""

    name = "modulo"

    def set_index(self, address: int) -> int:
        return address % self.num_sets


class RandomPermutationMapping(SetMapping):
    """Fixed random address-to-set permutation (Sec. V-B, randomized mapping).

    A pseudo-random but fixed permutation of set indices is applied to the
    modulo index, so addresses that would map to set ``i`` map instead to
    ``perm[i]``, and additionally each address gets a per-address scramble to
    break the simple stride structure the attacker could rely on.
    """

    name = "random_permutation"

    def __init__(self, num_sets: int, seed: int = 0):
        super().__init__(num_sets)
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._permutation = rng.permutation(num_sets)
        self._address_cache: Dict[int, int] = {}
        self._rng = np.random.default_rng(seed + 1)

    def set_index(self, address: int) -> int:
        if address not in self._address_cache:
            # Deterministic per-address hash derived from the seed.
            hashed = np.random.default_rng(self.seed * 1_000_003 + address).integers(self.num_sets)
            self._address_cache[address] = int(self._permutation[hashed])
        return self._address_cache[address]


class KeyedRemapMapping(SetMapping):
    """Keyed set-index hash with a re-keyable key (CEASER-style remapping).

    The set index is a keyed hash of the whole address, so the hash is not
    invertible and the full address doubles as the tag.  The key is owned by
    the defended cache (:class:`repro.cache.defended.KeyedRemapCache`), which
    draws a fresh one every re-key epoch and on reset.
    """

    name = "keyed_remap"

    def __init__(self, num_sets: int, key: int = 0):
        super().__init__(num_sets)
        self.key = int(key)

    def set_index(self, address: int) -> int:
        return keyed_set_index(address, self.key, self.num_sets)

    def tag(self, address: int) -> int:
        # Hashed indices are not invertible, so the address is its own tag.
        return address

    def rekey(self, key: int) -> None:
        self.key = int(key)


def make_mapping(name: str, num_sets: int, seed: int = 0) -> SetMapping:
    """Construct the set mapping registered under ``name``."""
    key = name.lower()
    if key in ("modulo", "mod"):
        return ModuloMapping(num_sets)
    if key in ("random", "random_permutation", "rand_perm"):
        return RandomPermutationMapping(num_sets, seed=seed)
    if key in ("keyed", "keyed_remap"):
        return KeyedRemapMapping(num_sets, key=seed)
    raise ValueError(f"unknown mapping {name!r}")
