"""Replacement policies: LRU, tree-PLRU, RRIP, random, MRU.

Each policy instance manages a single cache set of ``num_ways`` ways.  The
cache calls ``on_fill`` when a line is installed, ``on_hit`` when a lookup
hits, and ``victim`` to pick the way to evict; ``locked_ways`` lets the PL
cache exclude locked lines from eviction.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Type

import numpy as np

from repro.determinism import fallback_rng


class ReplacementPolicy:
    """Interface for per-set replacement state."""

    name = "base"

    def __init__(self, num_ways: int, rng: Optional[np.random.Generator] = None):
        if num_ways < 1:
            raise ValueError("num_ways must be >= 1")
        self.num_ways = num_ways
        self.rng = rng if rng is not None else fallback_rng()

    def reset(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_fill(self, way: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_hit(self, way: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def victim(self, valid_ways: List[bool], locked_ways: FrozenSet[int] = frozenset()) -> int:
        """Pick a way to fill.  Invalid ways are preferred; locked ways are skipped.

        Raises :class:`RuntimeError` when every way is locked — there is no
        legal victim, and silently returning one would corrupt a locked line.
        """
        if len(locked_ways) >= self.num_ways:
            raise RuntimeError(
                f"cannot choose a victim: all {self.num_ways} ways are locked")
        for way in range(self.num_ways):
            if not valid_ways[way] and way not in locked_ways:
                return way
        return self._select_victim(locked_ways)

    def _select_victim(self, locked_ways: FrozenSet[int]) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_snapshot(self) -> tuple:
        """Hashable snapshot of internal state (used by tests and the classifier)."""
        return ()

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.num_ways:
            raise IndexError(f"way {way} out of range for {self.num_ways}-way set")


class LRUPolicy(ReplacementPolicy):
    """True LRU: per-way age counters, age 0 is most recently used."""

    name = "lru"

    def __init__(self, num_ways: int, rng: Optional[np.random.Generator] = None):
        super().__init__(num_ways, rng)
        self.reset()

    def reset(self) -> None:
        # Start with distinct ages so the victim order is well defined.
        self.ages = np.arange(self.num_ways, dtype=np.int64)

    def _touch(self, way: int) -> None:
        # One vectorized pass: every younger line ages by one, the touched
        # way becomes age 0 (the old per-way Python loop made each access
        # O(ways), i.e. O(ways^2) across a set fill).
        ages = self.ages
        ages += ages < ages[way]
        ages[way] = 0

    def on_fill(self, way: int) -> None:
        self._check_way(way)
        self._touch(way)

    def on_hit(self, way: int) -> None:
        self._check_way(way)
        self._touch(way)

    def _select_victim(self, locked_ways: FrozenSet[int]) -> int:
        # victim() guarantees at least one unlocked way remains.
        if not locked_ways:
            return int(self.ages.argmax())
        candidates = [w for w in range(self.num_ways) if w not in locked_ways]
        return max(candidates, key=lambda w: self.ages[w])

    def state_snapshot(self) -> tuple:
        return tuple(int(age) for age in self.ages)


class PLRUPolicy(ReplacementPolicy):
    """Tree-based pseudo-LRU for power-of-two associativity.

    One bit per internal node; 0 means the pseudo-LRU block is in the left
    subtree, 1 means right.  Touching a way flips the bits along its path to
    point away from it; the victim is found by following the bits.
    """

    name = "plru"

    def __init__(self, num_ways: int, rng: Optional[np.random.Generator] = None):
        if num_ways & (num_ways - 1):
            raise ValueError("tree PLRU requires a power-of-two number of ways")
        super().__init__(num_ways, rng)
        self.reset()

    def reset(self) -> None:
        self.bits = [0] * max(self.num_ways - 1, 1)

    def _path_nodes(self, way: int) -> List[tuple]:
        """Return (node_index, direction) pairs from root to the leaf ``way``."""
        path = []
        node = 0
        low, high = 0, self.num_ways
        while high - low > 1:
            mid = (low + high) // 2
            direction = 0 if way < mid else 1
            path.append((node, direction))
            node = 2 * node + 1 + direction
            if direction == 0:
                high = mid
            else:
                low = mid
        return path

    def _touch(self, way: int) -> None:
        for node, direction in self._path_nodes(way):
            # Point the bit away from the touched way.
            self.bits[node] = 1 - direction

    def on_fill(self, way: int) -> None:
        self._check_way(way)
        self._touch(way)

    def on_hit(self, way: int) -> None:
        self._check_way(way)
        self._touch(way)

    def _follow(self) -> int:
        node = 0
        low, high = 0, self.num_ways
        while high - low > 1:
            mid = (low + high) // 2
            direction = self.bits[node]
            node = 2 * node + 1 + direction
            if direction == 0:
                high = mid
            else:
                low = mid
        return low

    def _select_victim(self, locked_ways: FrozenSet[int]) -> int:
        victim = self._follow()
        if victim not in locked_ways:
            return victim
        # victim() guarantees at least one unlocked way remains.
        return min(w for w in range(self.num_ways) if w not in locked_ways)

    def state_snapshot(self) -> tuple:
        return tuple(self.bits)


class RRIPPolicy(ReplacementPolicy):
    """Static RRIP with 2-bit re-reference prediction values (RRPV).

    Lines are inserted with RRPV = max-1 (2 for 2-bit), promoted to 0 on a
    hit, and the victim is the first line with RRPV == max (3); if none
    exists, all RRPVs are incremented until one reaches max.
    """

    name = "rrip"

    def __init__(self, num_ways: int, rng: Optional[np.random.Generator] = None,
                 bits: int = 2):
        super().__init__(num_ways, rng)
        self.max_rrpv = (1 << bits) - 1
        self.insert_rrpv = self.max_rrpv - 1
        self.reset()

    def reset(self) -> None:
        self.rrpv = [self.max_rrpv] * self.num_ways

    def on_fill(self, way: int) -> None:
        self._check_way(way)
        self.rrpv[way] = self.insert_rrpv

    def on_hit(self, way: int) -> None:
        self._check_way(way)
        self.rrpv[way] = 0

    def _select_victim(self, locked_ways: FrozenSet[int]) -> int:
        # victim() guarantees at least one unlocked way remains.
        candidates = [w for w in range(self.num_ways) if w not in locked_ways]
        while True:
            for way in candidates:
                if self.rrpv[way] >= self.max_rrpv:
                    return way
            for way in candidates:
                self.rrpv[way] += 1

    def state_snapshot(self) -> tuple:
        return tuple(self.rrpv)


class RandomPolicy(ReplacementPolicy):
    """Uniformly random victim selection (non-deterministic)."""

    name = "random"

    def reset(self) -> None:
        pass

    def on_fill(self, way: int) -> None:
        self._check_way(way)

    def on_hit(self, way: int) -> None:
        self._check_way(way)

    def _select_victim(self, locked_ways: FrozenSet[int]) -> int:
        # victim() guarantees at least one unlocked way remains.
        candidates = [w for w in range(self.num_ways) if w not in locked_ways]
        return int(self.rng.choice(candidates))


class MRUPolicy(ReplacementPolicy):
    """Evict the most-recently-used line (included for policy diversity)."""

    name = "mru"

    def __init__(self, num_ways: int, rng: Optional[np.random.Generator] = None):
        super().__init__(num_ways, rng)
        self.reset()

    def reset(self) -> None:
        self.ages = np.arange(self.num_ways, dtype=np.int64)

    def _touch(self, way: int) -> None:
        ages = self.ages
        ages += ages < ages[way]
        ages[way] = 0

    def on_fill(self, way: int) -> None:
        self._check_way(way)
        self._touch(way)

    def on_hit(self, way: int) -> None:
        self._check_way(way)
        self._touch(way)

    def _select_victim(self, locked_ways: FrozenSet[int]) -> int:
        # victim() guarantees at least one unlocked way remains.
        if not locked_ways:
            return int(self.ages.argmin())
        candidates = [w for w in range(self.num_ways) if w not in locked_ways]
        return min(candidates, key=lambda w: self.ages[w])

    def state_snapshot(self) -> tuple:
        return tuple(int(age) for age in self.ages)


REPLACEMENT_POLICIES: Dict[str, Type[ReplacementPolicy]] = {
    "lru": LRUPolicy,
    "plru": PLRUPolicy,
    "rrip": RRIPPolicy,
    "random": RandomPolicy,
    "mru": MRUPolicy,
}


def make_policy(name: str, num_ways: int,
                rng: Optional[np.random.Generator] = None) -> ReplacementPolicy:
    """Construct the replacement policy registered under ``name``."""
    key = name.lower()
    if key not in REPLACEMENT_POLICIES:
        raise ValueError(f"unknown replacement policy {name!r}; choose from {sorted(REPLACEMENT_POLICIES)}")
    return REPLACEMENT_POLICIES[key](num_ways, rng=rng)
