"""Event logging for detection schemes.

CC-Hunter consumes a *conflict-miss event train*: events where the victim
evicts an attacker line (V->A, encoded 0) or the attacker evicts a victim line
(A->V, encoded 1).  Cyclone consumes per-line *cyclic interference* counts
(domain a touches a line, domain b evicts/touches it, then a returns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ConflictEvent:
    """One inter-domain conflict: ``evictor`` replaced a line owned by ``owner``."""

    evictor: str
    owner: str
    address: int
    set_index: int
    step: int

    @property
    def code(self) -> int:
        """CC-Hunter encoding: 1 for attacker-evicts-victim, 0 for victim-evicts-attacker."""
        return 1 if self.evictor == "attacker" else 0


@dataclass(frozen=True)
class FlushEvent:
    """One clflush: ``domain`` invalidated ``address`` (``resident`` if it was cached)."""

    domain: Optional[str]
    address: int
    set_index: int
    resident: bool
    step: int


@dataclass
class EventLog:
    """Accumulates detection-relevant events during a cache run.

    ``max_events`` bounds the ``conflicts`` and ``flushes`` lists as rolling
    windows (oldest events dropped first) so million-step RL runs cannot grow
    the log without limit.  It is off (None) by default because detectors
    consume complete episode traces; long-running training enables it via a
    scenario override (``cache.max_events``).  Scalar counters keep counting
    past the window.
    """

    conflicts: List[ConflictEvent] = field(default_factory=list)
    flushes: List[FlushEvent] = field(default_factory=list)
    victim_misses: int = 0
    attacker_misses: int = 0
    total_accesses: int = 0
    max_events: Optional[int] = None
    _line_history: Dict[Tuple[int, int], List[str]] = field(default_factory=dict)
    cyclic_interference: Dict[Tuple[int, int], int] = field(default_factory=dict)
    _step: int = 0

    def __post_init__(self) -> None:
        if self.max_events is not None and self.max_events < 1:
            raise ValueError("max_events must be None or >= 1")

    def reset(self) -> None:
        self.conflicts.clear()
        self.flushes.clear()
        self.victim_misses = 0
        self.attacker_misses = 0
        self.total_accesses = 0
        self._line_history.clear()
        self.cyclic_interference.clear()
        self._step = 0

    def record_access(self, domain: Optional[str], hit: bool,
                      set_index: int, way: int,
                      evicted_domain: Optional[str]) -> None:
        """Record one cache access and any inter-domain conflict it caused."""
        self._step += 1
        self.total_accesses += 1
        if not hit:
            if domain == "victim":
                self.victim_misses += 1
            elif domain == "attacker":
                self.attacker_misses += 1
        if (not hit and evicted_domain is not None and domain is not None
                and evicted_domain != domain):
            self.conflicts.append(ConflictEvent(
                evictor=domain, owner=evicted_domain, address=-1,
                set_index=set_index, step=self._step))
            self._trim(self.conflicts)
        self._track_cyclic(domain, set_index, way)

    def record_flush(self, domain: Optional[str], address: int, set_index: int,
                     resident: bool) -> None:
        """Record one clflush so detectors can observe flush activity."""
        self._step += 1
        self.flushes.append(FlushEvent(domain=domain, address=address,
                                       set_index=set_index, resident=resident,
                                       step=self._step))
        self._trim(self.flushes)

    def _trim(self, events: List) -> None:
        """Enforce the rolling ``max_events`` window on one event list."""
        if self.max_events is not None and len(events) > self.max_events:
            del events[: len(events) - self.max_events]

    def flush_count(self, domain: Optional[str] = None) -> int:
        """Number of recorded flushes, optionally filtered by domain."""
        if domain is None:
            return len(self.flushes)
        return sum(1 for event in self.flushes if event.domain == domain)

    def _track_cyclic(self, domain: Optional[str], set_index: int, way: int) -> None:
        """Cyclone-style cyclic interference: a -> b -> a on the same line."""
        if domain is None:
            return
        key = (set_index, way)
        history = self._line_history.setdefault(key, [])
        history.append(domain)
        if len(history) >= 3 and history[-1] == history[-3] and history[-2] != history[-1]:
            self.cyclic_interference[key] = self.cyclic_interference.get(key, 0) + 1
        if len(history) > 8:
            del history[:-4]

    def conflict_train(self) -> List[int]:
        """CC-Hunter event train: 1 = A evicts V, 0 = V evicts A."""
        return [event.code for event in self.conflicts]

    def cyclic_interference_counts(self) -> List[int]:
        """Cyclone feature vector: cyclic-interference count per tracked line."""
        return list(self.cyclic_interference.values())

    def total_cyclic_interference(self) -> int:
        return sum(self.cyclic_interference.values())
