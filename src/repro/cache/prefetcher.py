"""Hardware prefetcher models: next-line and stream prefetchers.

Configs 2, 13, and 14 in Table IV of the paper add a next-line prefetcher
(Smith, 1982) or a stream prefetcher (Jouppi, 1990) to the cache; the RL agent
must still find working attack sequences.
"""

from __future__ import annotations

from typing import List, Optional


class Prefetcher:
    """Interface: given a demand access, return addresses to prefetch."""

    name = "none"

    def reset(self) -> None:  # pragma: no cover - trivial default
        pass

    def prefetch_targets(self, address: int, hit: bool) -> List[int]:  # pragma: no cover
        raise NotImplementedError


class NextLinePrefetcher(Prefetcher):
    """Always prefetch the next sequential line on a demand access."""

    name = "nextline"

    def __init__(self, wrap: Optional[int] = None):
        self.wrap = wrap

    def prefetch_targets(self, address: int, hit: bool) -> List[int]:
        target = address + 1
        if self.wrap is not None:
            target %= self.wrap
        return [target]


class StreamPrefetcher(Prefetcher):
    """Simple stream prefetcher: detect a monotonic stride and run ahead.

    Keeps a single stream: after seeing ``trigger`` consecutive accesses with
    the same stride, prefetches ``degree`` lines ahead along the stream.
    """

    name = "stream"

    def __init__(self, trigger: int = 3, degree: int = 1):
        if trigger < 2:
            raise ValueError("trigger must be >= 2")
        self.trigger = trigger
        self.degree = degree
        self.reset()

    def reset(self) -> None:
        self.last_address: Optional[int] = None
        self.last_stride: Optional[int] = None
        self.run_length = 0

    def prefetch_targets(self, address: int, hit: bool) -> List[int]:
        targets: List[int] = []
        if self.last_address is not None:
            stride = address - self.last_address
            if stride != 0 and stride == self.last_stride:
                self.run_length += 1
            elif stride != 0:
                self.last_stride = stride
                self.run_length = 1
            if self.run_length >= self.trigger - 1 and self.last_stride:
                for ahead in range(1, self.degree + 1):
                    targets.append(address + self.last_stride * ahead)
        self.last_address = address
        return targets


def make_prefetcher(name: Optional[str]) -> Optional[Prefetcher]:
    """Construct a prefetcher by name; None / 'none' disables prefetching."""
    if name is None:
        return None
    key = name.lower()
    if key in ("none", ""):
        return None
    if key in ("nextline", "next_line"):
        return NextLinePrefetcher()
    if key == "stream":
        return StreamPrefetcher()
    raise ValueError(f"unknown prefetcher {name!r}")
