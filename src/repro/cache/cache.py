"""The single-level cache model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.cache.block import CacheBlock
from repro.cache.config import CacheConfig
from repro.cache.events import EventLog
from repro.cache.mapping import make_mapping
from repro.cache.policies import make_policy
from repro.cache.prefetcher import make_prefetcher


@dataclass
class AccessResult:
    """Outcome of one cache access."""

    address: int
    hit: bool
    latency: int
    set_index: int
    way: int
    evicted_address: Optional[int] = None
    evicted_domain: Optional[str] = None
    prefetched: List[int] = field(default_factory=list)
    domain: Optional[str] = None

    @property
    def miss(self) -> bool:
        return not self.hit


class Cache:
    """A set-associative cache with pluggable replacement policy and prefetcher.

    Addresses are cache-line addresses (small integers), matching the paper's
    guessing-game formulation.  The cache records conflict events and cyclic
    interference in an :class:`EventLog` so detectors can observe it.
    """

    def __init__(self, config: CacheConfig, rng: Optional[np.random.Generator] = None):
        self.config = config
        self.rng = rng or np.random.default_rng(config.rng_seed)
        self.mapping = make_mapping(config.mapping, config.num_sets, seed=config.mapping_seed)
        self.sets: List[List[CacheBlock]] = [
            [CacheBlock() for _ in range(config.num_ways)] for _ in range(config.num_sets)
        ]
        self.policies = [make_policy(config.rep_policy, config.num_ways, rng=self.rng)
                         for _ in range(config.num_sets)]
        self.prefetcher = make_prefetcher(config.prefetcher)
        # The rolling window (scenario override ``cache.max_events``) keeps
        # long RL runs from growing the log without bound.
        self.events = EventLog(max_events=config.max_events)
        self.access_count = 0
        self.miss_count = 0

    # ----------------------------------------------------------------- state
    def reset(self) -> None:
        """Empty the cache and clear all replacement / event state."""
        for cache_set in self.sets:
            for block in cache_set:
                block.invalidate()
        for policy in self.policies:
            policy.reset()
        if self.prefetcher is not None:
            self.prefetcher.reset()
        self.events.reset()
        self.access_count = 0
        self.miss_count = 0

    def locate(self, address: int) -> tuple:
        """Return (set_index, tag) for ``address``."""
        if address < 0:
            raise ValueError("addresses must be non-negative")
        return self.mapping.locate(address)

    def lookup(self, address: int) -> Optional[int]:
        """Return the way holding ``address`` or None, without side effects."""
        set_index, tag = self.locate(address)
        for way, block in enumerate(self.sets[set_index]):
            if block.matches(tag):
                return way
        return None

    def contains(self, address: int) -> bool:
        return self.lookup(address) is not None

    def contents(self) -> List[int]:
        """All valid line addresses currently resident (sorted)."""
        resident = []
        for cache_set in self.sets:
            for block in cache_set:
                if block.valid and block.address is not None:
                    resident.append(block.address)
        return sorted(resident)

    def locked_ways(self, set_index: int) -> frozenset:
        return frozenset(way for way, block in enumerate(self.sets[set_index])
                         if block.valid and block.locked)

    # ---------------------------------------------------------------- access
    def access(self, address: int, domain: Optional[str] = None,
               write: bool = False, _prefetch: bool = False) -> AccessResult:
        """Perform one memory access; return hit/miss, latency, and eviction info."""
        set_index, tag = self.locate(address)
        cache_set = self.sets[set_index]
        policy = self.policies[set_index]
        self.access_count += 1

        way = None
        for candidate, block in enumerate(cache_set):
            if block.matches(tag):
                way = candidate
                break

        evicted_address = None
        evicted_domain = None
        if way is not None:
            hit = True
            policy.on_hit(way)
            if write:
                cache_set[way].dirty = True
            latency = self.config.hit_latency
        else:
            hit = False
            self.miss_count += 1
            valid_flags = [block.valid for block in cache_set]
            way = policy.victim(valid_flags, self.locked_ways(set_index))
            victim_block = cache_set[way]
            if victim_block.valid:
                evicted_address = victim_block.address
                evicted_domain = victim_block.domain
            victim_block.fill(tag, address, domain)
            if write:
                victim_block.dirty = True
            policy.on_fill(way)
            latency = self.config.miss_latency

        self.events.record_access(domain, hit, set_index, way, evicted_domain)

        prefetched: List[int] = []
        if self.prefetcher is not None and not _prefetch:
            for prefetch_address in self.prefetcher.prefetch_targets(address, hit):
                if prefetch_address < 0:
                    continue
                self.access(prefetch_address, domain=domain, _prefetch=True)
                prefetched.append(prefetch_address)

        return AccessResult(address=address, hit=hit, latency=latency,
                            set_index=set_index, way=way,
                            evicted_address=evicted_address,
                            evicted_domain=evicted_domain,
                            prefetched=prefetched, domain=domain)

    def flush(self, address: int, domain: Optional[str] = None,
              record: bool = True) -> bool:
        """clflush: invalidate ``address`` if present.  Returns whether it was resident.

        The flush is recorded in the event log so detectors can observe flush
        activity; internal invalidations (e.g. inclusion back-invalidations in
        a hierarchy) pass ``record=False``.
        """
        set_index, tag = self.locate(address)
        resident = False
        for block in self.sets[set_index]:
            if block.matches(tag):
                block.invalidate()
                resident = True
                break
        if record:
            self.events.record_flush(domain, address, set_index, resident)
        return resident

    # ------------------------------------------------------------------ locks
    def lock(self, address: int, domain: Optional[str] = None) -> None:
        """PL-cache lock: install (if needed) and pin ``address`` in its set."""
        if not self.config.lockable:
            raise RuntimeError("this cache configuration does not support locking")
        way = self.lookup(address)
        if way is None:
            result = self.access(address, domain=domain)
            way = result.way
        set_index, _ = self.locate(address)
        self.sets[set_index][way].locked = True

    def unlock(self, address: int) -> None:
        if not self.config.lockable:
            raise RuntimeError("this cache configuration does not support locking")
        way = self.lookup(address)
        if way is not None:
            set_index, _ = self.locate(address)
            self.sets[set_index][way].locked = False

    # ------------------------------------------------------------- statistics
    @property
    def hit_rate(self) -> float:
        if self.access_count == 0:
            return 0.0
        return 1.0 - self.miss_count / self.access_count

    def replacement_state(self, set_index: int = 0) -> tuple:
        """Snapshot of the replacement state for one set (used in analysis)."""
        return self.policies[set_index].state_snapshot()

    def warm_up(self, addresses, domain: Optional[str] = None) -> None:
        """Pre-fill the cache by accessing ``addresses`` in order."""
        for address in addresses:
            self.access(address, domain=domain)
