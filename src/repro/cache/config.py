"""Cache configuration (Table II of the paper, cache-simulator options)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class CacheConfig:
    """Configuration of a single cache level.

    Addresses are cache-line addresses (block granularity), matching the
    paper's formulation where attacker/victim address ranges are small
    integers.  ``num_blocks = num_sets * num_ways``.
    """

    num_sets: int = 1
    num_ways: int = 4
    rep_policy: str = "lru"
    prefetcher: Optional[str] = None
    mapping: str = "modulo"
    mapping_seed: int = 0
    hit_latency: int = 4
    miss_latency: int = 40
    lockable: bool = False
    rng_seed: int = 0
    max_events: Optional[int] = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_sets < 1:
            raise ValueError("num_sets must be >= 1")
        if self.num_ways < 1:
            raise ValueError("num_ways must be >= 1")
        if self.hit_latency >= self.miss_latency:
            raise ValueError("hit_latency must be smaller than miss_latency")
        if self.max_events is not None and self.max_events < 1:
            raise ValueError("max_events must be None or >= 1")

    @property
    def num_blocks(self) -> int:
        return self.num_sets * self.num_ways

    @property
    def is_direct_mapped(self) -> bool:
        return self.num_ways == 1

    @property
    def is_fully_associative(self) -> bool:
        return self.num_sets == 1

    @classmethod
    def direct_mapped(cls, num_sets: int, **kwargs) -> "CacheConfig":
        """Direct-mapped cache with ``num_sets`` one-way sets."""
        return cls(num_sets=num_sets, num_ways=1, **kwargs)

    @classmethod
    def fully_associative(cls, num_ways: int, **kwargs) -> "CacheConfig":
        """Fully-associative cache (a single set with ``num_ways`` ways)."""
        return cls(num_sets=1, num_ways=num_ways, **kwargs)

    @classmethod
    def set_associative(cls, num_sets: int, num_ways: int, **kwargs) -> "CacheConfig":
        """General set-associative cache."""
        return cls(num_sets=num_sets, num_ways=num_ways, **kwargs)
