"""Partition-locked (PL) cache defense (Wang & Lee, 2007).

The PL cache lets the victim lock its own lines so that (1) the attacker can
never evict them and (2) a victim access to a locked line never evicts an
attacker line.  The paper (Sec. V-D) shows AutoCAT still finds an attack: the
victim's access to its locked line updates the *replacement state*, which the
attacker can observe through subsequent evictions.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.cache.cache import AccessResult, Cache
from repro.cache.config import CacheConfig


class PLCache(Cache):
    """Cache with partition locking.

    Semantics implemented (following the original PL cache proposal):

    * a locked line is never chosen as an eviction victim;
    * an access that *hits* a locked line updates replacement state normally
      (this is the leak the paper's PL-cache attack exploits);
    * an access that *misses* and would need to evict, when every way is
      locked, is served without caching (no eviction, miss latency).
    """

    def __init__(self, config: CacheConfig, rng: Optional[np.random.Generator] = None):
        if not config.lockable:
            config.lockable = True
        super().__init__(config, rng=rng)

    def access(self, address: int, domain: Optional[str] = None,
               write: bool = False, _prefetch: bool = False) -> AccessResult:
        set_index, tag = self.locate(address)
        cache_set = self.sets[set_index]
        locked = self.locked_ways(set_index)
        resident_way = None
        for way, block in enumerate(cache_set):
            if block.matches(tag):
                resident_way = way
                break
        all_locked = len(locked) == self.config.num_ways
        if resident_way is None and all_locked:
            # No unlocked way: serve the miss without allocating.
            self.access_count += 1
            self.miss_count += 1
            self.events.record_access(domain, False, set_index, -1, None)
            return AccessResult(address=address, hit=False,
                                latency=self.config.miss_latency,
                                set_index=set_index, way=-1, domain=domain)
        return super().access(address, domain=domain, write=write, _prefetch=_prefetch)

    def preload_locked(self, addresses: Iterable[int], domain: str = "victim") -> None:
        """Install and lock the given victim lines (the defense's setup step)."""
        for address in addresses:
            self.lock(address, domain=domain)
