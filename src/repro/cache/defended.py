"""Secure-cache defense mechanisms on the object cache model.

Each class implements one of the built-in defenses of :mod:`repro.defenses`
as a :class:`~repro.cache.cache.Cache` subclass.  The mechanism is selected by
the ``defense`` fragment a compiled :class:`~repro.defenses.DefenseSpec`
places in ``CacheConfig.extra`` (see :func:`make_cache`), so defended caches
flow through the existing env/backend plumbing unchanged:

* :class:`KeyedRemapCache` — CEASER-style keyed set-index hashing with a
  periodic re-key epoch (``rekey_epoch`` accesses), modelled as a full
  invalidation under a fresh key;
* :class:`SkewedCache` — ScatterCache-style skewed associativity: the ways are
  split into hash groups, each indexing with its own fixed key, and fills pick
  a uniformly random way;
* :class:`WayPartitionCache` — DAWG/CAT-style static way isolation: victim and
  attacker fills (and their replacement metadata) are confined to disjoint
  way partitions;
* :class:`RandomFillCache` — Liu & Lee random-fill: a demand miss is served
  without caching and a random neighbor line is filled instead.

The PL cache (:mod:`repro.cache.plcache`) predates this module and stays the
lock-based mechanism behind the ``plcache`` defense.  Keyed-remap and
way-partition additionally have vectorized kernels in the SoA batched engine
(:mod:`repro.cache.soa`); the parity suite holds them bit-identical to these
object implementations.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

import numpy as np

from repro.cache.cache import AccessResult, Cache
from repro.cache.config import CacheConfig
from repro.cache.mapping import KeyedRemapMapping, keyed_set_index
from repro.cache.policies import make_policy

#: Cap on the 63-bit remap keys (kept below int64 so numpy arrays hold them).
KEY_SPACE = 1 << 63


def _defense_fragment(config: CacheConfig) -> Dict:
    """The compiled defense fragment carried in ``config.extra`` (or {})."""
    return dict((config.extra or {}).get("defense") or {})


def _reject_unsupported(config: CacheConfig, kind: str) -> None:
    if config.prefetcher:
        raise ValueError(f"the {kind} defense does not model prefetchers")
    if config.lockable:
        raise ValueError(f"the {kind} defense cannot be combined with PL locking")


class KeyedRemapCache(Cache):
    """Keyed set-index remapping with periodic re-keying (CEASER-style).

    The set index is a keyed hash of the whole address; every ``rekey_epoch``
    accesses (and on every reset) a fresh key is drawn from the cache RNG and
    the cache is invalidated — the software model of re-encrypting and
    gradually remapping the array.  Eviction-set construction therefore only
    pays off within one epoch.
    """

    def __init__(self, config: CacheConfig, rng: Optional[np.random.Generator] = None):
        fragment = _defense_fragment(config)
        self.rekey_epoch = int(fragment.get("rekey_epoch", 32))
        if self.rekey_epoch < 1:
            raise ValueError("rekey_epoch must be >= 1")
        _reject_unsupported(config, "keyed-remap")
        if config.mapping.lower() not in ("modulo", "mod"):
            raise ValueError("keyed-remap replaces the set mapping; configure the "
                             "base cache with modulo mapping")
        super().__init__(config, rng=rng)
        self.mapping = KeyedRemapMapping(config.num_sets)
        self._accesses_since_rekey = 0
        self._draw_key()

    def _draw_key(self) -> None:
        self.mapping.rekey(int(self.rng.integers(KEY_SPACE)))

    def reset(self) -> None:
        super().reset()
        self._accesses_since_rekey = 0
        self._draw_key()

    def _rekey_now(self) -> None:
        # Epoch boundary: every line is conceptually re-encrypted; modelled as
        # a full invalidation plus fresh replacement state under a new key.
        for cache_set in self.sets:
            for block in cache_set:
                block.invalidate()
        for policy in self.policies:
            policy.reset()
        self._accesses_since_rekey = 0
        self._draw_key()

    def access(self, address: int, domain: Optional[str] = None,
               write: bool = False, _prefetch: bool = False) -> AccessResult:
        result = super().access(address, domain=domain, write=write,
                                _prefetch=_prefetch)
        self._accesses_since_rekey += 1
        if self._accesses_since_rekey >= self.rekey_epoch:
            self._rekey_now()
        return result


class SkewedCache(Cache):
    """Skewed associativity with per-way-group keyed hashes (ScatterCache).

    The ``num_ways`` ways are split into ``groups`` equal hash groups; each
    group indexes the array with its own fixed key, so an address occupies a
    different set in every group and fixed eviction sets do not exist.  As in
    ScatterCache, replacement is a uniformly random way (the configured
    ``rep_policy`` is not consulted — skews have no shared recency state).
    """

    def __init__(self, config: CacheConfig, rng: Optional[np.random.Generator] = None):
        fragment = _defense_fragment(config)
        self.groups = int(fragment.get("groups", 2))
        if self.groups < 1 or config.num_ways % self.groups:
            raise ValueError(f"skew groups ({self.groups}) must evenly divide "
                             f"num_ways ({config.num_ways})")
        _reject_unsupported(config, "skew")
        super().__init__(config, rng=rng)
        self.ways_per_group = config.num_ways // self.groups
        # Fixed per-group keys derived from the mapping seed (the hidden key
        # of the real design; fixed so episodes are comparable).
        key_rng = np.random.default_rng(config.mapping_seed)
        self.group_keys = [int(key_rng.integers(KEY_SPACE)) for _ in range(self.groups)]

    def _set_for_way(self, address: int, way: int) -> int:
        group = way // self.ways_per_group
        return keyed_set_index(address, self.group_keys[group], self.config.num_sets)

    def _find(self, address: int) -> Optional[tuple]:
        """(set_index, way) of the resident copy, or None."""
        for way in range(self.config.num_ways):
            set_index = self._set_for_way(address, way)
            if self.sets[set_index][way].matches(address):
                return set_index, way
        return None

    def lookup(self, address: int) -> Optional[int]:
        found = self._find(address)
        return None if found is None else found[1]

    def access(self, address: int, domain: Optional[str] = None,
               write: bool = False, _prefetch: bool = False) -> AccessResult:
        if address < 0:
            raise ValueError("addresses must be non-negative")
        self.access_count += 1
        found = self._find(address)
        evicted_address = None
        evicted_domain = None
        if found is not None:
            hit = True
            set_index, way = found
            if write:
                self.sets[set_index][way].dirty = True
            latency = self.config.hit_latency
        else:
            hit = False
            self.miss_count += 1
            way = self._victim_way()
            set_index = self._set_for_way(address, way)
            victim_block = self.sets[set_index][way]
            if victim_block.valid:
                evicted_address = victim_block.address
                evicted_domain = victim_block.domain
            # Full-address tags: hashed indices are not invertible.
            victim_block.fill(address, address, domain)
            if write:
                victim_block.dirty = True
            latency = self.config.miss_latency
        self.events.record_access(domain, hit, set_index, way, evicted_domain)
        return AccessResult(address=address, hit=hit, latency=latency,
                            set_index=set_index, way=way,
                            evicted_address=evicted_address,
                            evicted_domain=evicted_domain, domain=domain)

    def _victim_way(self) -> int:
        # ScatterCache random replacement over all skews (no invalid-first
        # preference: the fill target is drawn before the skew is inspected).
        return int(self.rng.integers(self.config.num_ways))

    def flush(self, address: int, domain: Optional[str] = None,
              record: bool = True) -> bool:
        found = self._find(address)
        resident = found is not None
        if resident:
            self.sets[found[0]][found[1]].invalidate()
        if record:
            set_index = found[0] if resident else self._set_for_way(address, 0)
            self.events.record_flush(domain, address, set_index, resident)
        return resident


class WayPartitionCache(Cache):
    """Static way partitioning between victim and attacker (DAWG/CAT-style).

    Ways ``[0, victim_ways)`` belong to the victim domain, the rest to
    everyone else.  Fills and replacement metadata are confined to the
    accessing domain's partition (each partition runs its own instance of the
    configured replacement policy), so with disjoint address ranges the
    attacker's hits, misses, and evictions are independent of victim activity.
    """

    def __init__(self, config: CacheConfig, rng: Optional[np.random.Generator] = None):
        fragment = _defense_fragment(config)
        victim_ways = fragment.get("victim_ways")
        victim_ways = (max(1, config.num_ways // 2) if victim_ways is None
                       else int(victim_ways))
        if not 1 <= victim_ways < config.num_ways:
            raise ValueError(f"victim_ways ({victim_ways}) must be in "
                             f"[1, num_ways ({config.num_ways}))")
        _reject_unsupported(config, "way-partition")
        super().__init__(config, rng=rng)
        self.victim_ways = victim_ways
        # Independent replacement metadata per (set, partition).
        self.partition_policies = [
            (make_policy(config.rep_policy, victim_ways, rng=self.rng),
             make_policy(config.rep_policy, config.num_ways - victim_ways, rng=self.rng))
            for _ in range(config.num_sets)]

    def _partition_bounds(self, partition: int) -> tuple:
        if partition == 0:
            return 0, self.victim_ways
        return self.victim_ways, self.config.num_ways

    def reset(self) -> None:
        super().reset()
        for victim_policy, other_policy in self.partition_policies:
            victim_policy.reset()
            other_policy.reset()

    def access(self, address: int, domain: Optional[str] = None,
               write: bool = False, _prefetch: bool = False) -> AccessResult:
        set_index, tag = self.locate(address)
        cache_set = self.sets[set_index]
        self.access_count += 1
        way = None
        for candidate, block in enumerate(cache_set):
            if block.matches(tag):
                way = candidate
                break
        evicted_address = None
        evicted_domain = None
        if way is not None:
            hit = True
            # Metadata ownership follows the way, not the accessor: a hit in
            # the victim partition touches the victim partition's policy.
            partition = 0 if way < self.victim_ways else 1
            low, _ = self._partition_bounds(partition)
            self.partition_policies[set_index][partition].on_hit(way - low)
            if write:
                cache_set[way].dirty = True
            latency = self.config.hit_latency
        else:
            hit = False
            self.miss_count += 1
            partition = 0 if domain == "victim" else 1
            low, high = self._partition_bounds(partition)
            policy = self.partition_policies[set_index][partition]
            valid_flags = [cache_set[w].valid for w in range(low, high)]
            way = low + policy.victim(valid_flags)
            victim_block = cache_set[way]
            if victim_block.valid:
                evicted_address = victim_block.address
                evicted_domain = victim_block.domain
            victim_block.fill(tag, address, domain)
            if write:
                victim_block.dirty = True
            policy.on_fill(way - low)
            latency = self.config.miss_latency
        self.events.record_access(domain, hit, set_index, way, evicted_domain)
        return AccessResult(address=address, hit=hit, latency=latency,
                            set_index=set_index, way=way,
                            evicted_address=evicted_address,
                            evicted_domain=evicted_domain, domain=domain)

    def replacement_state(self, set_index: int = 0) -> tuple:
        """Concatenated (victim partition, other partition) snapshots."""
        victim_policy, other_policy = self.partition_policies[set_index]
        return victim_policy.state_snapshot() + other_policy.state_snapshot()


class RandomFillCache(Cache):
    """Random-fill cache (Liu & Lee): demand misses do not allocate.

    A miss is served directly to the requester and a uniformly random neighbor
    from ``(address, address + fill_window]`` is brought into the cache
    instead, de-correlating the fill from the demand address.  Prime+probe
    style attacks lose their handle because the attacker cannot place specific
    lines with its own misses.
    """

    def __init__(self, config: CacheConfig, rng: Optional[np.random.Generator] = None):
        fragment = _defense_fragment(config)
        self.fill_window = int(fragment.get("fill_window", 4))
        if self.fill_window < 1:
            raise ValueError("fill_window must be >= 1")
        _reject_unsupported(config, "random-fill")
        super().__init__(config, rng=rng)

    def access(self, address: int, domain: Optional[str] = None,
               write: bool = False, _prefetch: bool = False) -> AccessResult:
        set_index, tag = self.locate(address)
        cache_set = self.sets[set_index]
        self.access_count += 1
        for way, block in enumerate(cache_set):
            if block.matches(tag):
                self.policies[set_index].on_hit(way)
                if write:
                    block.dirty = True
                self.events.record_access(domain, True, set_index, way, None)
                return AccessResult(address=address, hit=True,
                                    latency=self.config.hit_latency,
                                    set_index=set_index, way=way, domain=domain)
        # Demand miss: served uncached; a random neighbor line fills instead.
        self.miss_count += 1
        fill_address = address + 1 + int(self.rng.integers(self.fill_window))
        evicted_address, evicted_domain = self._fill_random(fill_address, domain)
        self.events.record_access(domain, False, set_index, -1, evicted_domain)
        return AccessResult(address=address, hit=False,
                            latency=self.config.miss_latency,
                            set_index=set_index, way=-1,
                            evicted_address=evicted_address,
                            evicted_domain=evicted_domain, domain=domain)

    def _fill_random(self, fill_address: int, domain: Optional[str]) -> tuple:
        """Install ``fill_address`` (if absent); return eviction info."""
        set_index, tag = self.locate(fill_address)
        cache_set = self.sets[set_index]
        for way, block in enumerate(cache_set):
            if block.matches(tag):
                return None, None  # already resident: no fetch, no touch
        policy = self.policies[set_index]
        way = policy.victim([block.valid for block in cache_set],
                            self.locked_ways(set_index))
        victim_block = cache_set[way]
        evicted = (victim_block.address, victim_block.domain) if victim_block.valid \
            else (None, None)
        victim_block.fill(tag, fill_address, domain)
        policy.on_fill(way)
        return evicted


#: Defense-fragment kind -> object-path cache class.
DEFENDED_CACHES: Dict[str, Type[Cache]] = {
    "keyed_remap": KeyedRemapCache,
    "skew": SkewedCache,
    "way_partition": WayPartitionCache,
    "random_fill": RandomFillCache,
}


def make_cache(config: CacheConfig, rng: Optional[np.random.Generator] = None) -> Cache:
    """Build the (possibly defended) cache a :class:`CacheConfig` describes.

    The defense mechanism is selected by the ``defense`` fragment a compiled
    :class:`~repro.defenses.DefenseSpec` placed in ``config.extra``; plain
    configs build a plain :class:`Cache`.  The ``plcache`` defense is not
    handled here — it rides the lock plumbing in
    :class:`repro.env.backends.SimulatedCacheBackend`.
    """
    fragment = _defense_fragment(config)
    kind = fragment.get("kind")
    if kind is None:
        return Cache(config, rng=rng)
    cache_class = DEFENDED_CACHES.get(kind)
    if cache_class is None:
        raise ValueError(f"unknown defense kind {kind!r} in cache config; "
                         f"known: {sorted(DEFENDED_CACHES)}")
    return cache_class(config, rng=rng)
