"""Cache block (line) metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class CacheBlock:
    """One cache line: tag plus the metadata the simulator tracks.

    ``domain`` records which security domain (e.g. ``"attacker"`` or
    ``"victim"``) installed the line; the detection schemes (CC-Hunter,
    Cyclone) consume it.
    """

    valid: bool = False
    tag: Optional[int] = None
    domain: Optional[str] = None
    locked: bool = False
    dirty: bool = False
    address: Optional[int] = None

    def invalidate(self) -> None:
        self.valid = False
        self.tag = None
        self.domain = None
        self.locked = False
        self.dirty = False
        self.address = None

    def fill(self, tag: int, address: int, domain: Optional[str]) -> None:
        self.valid = True
        self.tag = tag
        self.address = address
        self.domain = domain
        self.dirty = False

    def matches(self, tag: int) -> bool:
        return self.valid and self.tag == tag
