"""Cache simulator substrate.

Implements the software cache model that the AutoCAT RL environment runs
against: single-level caches (direct-mapped, set-associative, fully
associative), the replacement policies studied in the paper (LRU, PLRU, RRIP,
random), next-line and stream prefetchers, fixed-random set mappings, a
partition-locked (PL) cache defense, a two-level hierarchy, and the event
hooks used by the detection schemes (conflict-miss trains for CC-Hunter and
cyclic-interference counts for Cyclone).
"""

from repro.cache.config import CacheConfig
from repro.cache.block import CacheBlock
from repro.cache.cache import AccessResult, Cache
from repro.cache.policies import (
    ReplacementPolicy,
    LRUPolicy,
    PLRUPolicy,
    RRIPPolicy,
    RandomPolicy,
    MRUPolicy,
    make_policy,
    REPLACEMENT_POLICIES,
)
from repro.cache.prefetcher import NextLinePrefetcher, StreamPrefetcher, make_prefetcher
from repro.cache.mapping import (
    KeyedRemapMapping,
    ModuloMapping,
    RandomPermutationMapping,
    make_mapping,
)
from repro.cache.plcache import PLCache
from repro.cache.defended import (
    DEFENDED_CACHES,
    KeyedRemapCache,
    RandomFillCache,
    SkewedCache,
    WayPartitionCache,
    make_cache,
)
from repro.cache.hierarchy import TwoLevelCache
from repro.cache.events import ConflictEvent, EventLog, FlushEvent
from repro.cache.soa import SOA_POLICIES, SoACacheEngine

__all__ = [
    "CacheConfig",
    "CacheBlock",
    "Cache",
    "AccessResult",
    "ReplacementPolicy",
    "LRUPolicy",
    "PLRUPolicy",
    "RRIPPolicy",
    "RandomPolicy",
    "MRUPolicy",
    "make_policy",
    "REPLACEMENT_POLICIES",
    "NextLinePrefetcher",
    "StreamPrefetcher",
    "make_prefetcher",
    "KeyedRemapMapping",
    "ModuloMapping",
    "RandomPermutationMapping",
    "make_mapping",
    "PLCache",
    "DEFENDED_CACHES",
    "KeyedRemapCache",
    "RandomFillCache",
    "SkewedCache",
    "WayPartitionCache",
    "make_cache",
    "TwoLevelCache",
    "ConflictEvent",
    "EventLog",
    "FlushEvent",
    "SoACacheEngine",
    "SOA_POLICIES",
]
