"""Declarative, serializable experiment descriptions.

An :class:`ExperimentSpec` is the campaign-level sibling of
:class:`repro.scenarios.ScenarioSpec`: a frozen value object that fully
describes one of the paper's experiments — the driver module that knows how to
compute one table row, the grid of cells the experiment expands into, the
metric schema (column order) of its rows, and the default scale/seed.  Specs
round-trip losslessly through ``to_dict``/``from_dict`` and JSON, so they can
be stored in campaign manifests, shipped to worker processes, and compared for
resume-compatibility.

The *driver* is a module dotted path (e.g. ``"repro.experiments.table5"``)
implementing the cell protocol:

``run_cell(params, scale, seed=0, ctx=None) -> dict``
    Compute one row of the experiment.  ``params`` is one grid entry,
    ``scale`` an :class:`~repro.experiments.common.ExperimentScale`, and
    ``ctx`` an optional :class:`repro.runs.CellContext` enabling
    checkpoint/resume and per-cell artifacts.  Drivers must be
    deterministic in ``(params, scale, seed)`` — the fault-tolerance
    machinery relies on a re-run (after a crash, timeout, or quarantined
    artifact) reproducing the same row bit-for-bit.  Exceptions raised here
    are recorded per-cell (``error.json``) and retried within the campaign's
    budget; ``KeyboardInterrupt``/``SystemExit`` always propagate.

``cells(scale) -> list[dict]`` (optional)
    The grid for scale-dependent experiments (e.g. Table III trains on more
    machines at paper scale).  Specs with a static ``grid`` don't need it.

``format_results(rows) -> str`` (optional)
    Paper-layout rendering; falls back to a generic table over ``columns``.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.experiments.common import ScaleLike, format_table, resolve_scale


@dataclass(frozen=True)
class ExperimentSpec:
    """Frozen description of one registered experiment.

    Fields
    ------
    experiment_id:
        Registry key (``"table5"``, ``"fig4"``, ...).
    description:
        One-line summary shown by ``python -m repro list``.
    driver:
        Dotted module path implementing the cell protocol (see module docs).
    columns:
        Metric schema: the row keys, in the paper's column order.
    grid:
        Static cell grid (one mapping per cell).  Empty means the grid is
        scale-dependent and comes from ``driver.cells(scale)``.
    default_scale / base_seed:
        Defaults applied when ``repro.run()`` is called without them.
    tags:
        Free-form labels (``"rl"``, ``"fast"``) used for listing/filtering.
    """

    experiment_id: str
    description: str = ""
    driver: str = ""
    columns: Tuple[str, ...] = ()
    grid: Tuple[Dict, ...] = ()
    default_scale: str = "bench"
    base_seed: int = 0
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ValueError("experiment_id must be non-empty")
        if not self.driver:
            raise ValueError(f"experiment {self.experiment_id!r} needs a driver module path")
        object.__setattr__(self, "columns", tuple(str(c) for c in self.columns))
        object.__setattr__(self, "tags", tuple(str(t) for t in self.tags))
        grid = tuple(dict(cell) for cell in self.grid)
        for cell in grid:
            for key in cell:
                if not isinstance(key, str):
                    raise ValueError(f"grid cell keys must be strings, got {key!r}")
        object.__setattr__(self, "grid", grid)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data dict (JSON-safe) that losslessly round-trips via from_dict."""
        data = dataclasses.asdict(self)
        data["columns"] = list(self.columns)
        data["tags"] = list(self.tags)
        data["grid"] = [dict(cell) for cell in self.grid]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ExperimentSpec fields: {sorted(unknown)}")
        return cls(**dict(data))

    def to_json(self, **json_kwargs: Any) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, **json_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    # -------------------------------------------------------------- expansion
    def resolve_driver(self) -> Any:
        """Import and return the driver module."""
        return importlib.import_module(self.driver)

    def cells(self, scale: ScaleLike) -> List[Dict]:
        """The cell grid at a given scale (static grid or driver-provided)."""
        if self.grid:
            return [dict(cell) for cell in self.grid]
        module = self.resolve_driver()
        cells_fn = getattr(module, "cells", None)
        if cells_fn is None:
            raise ValueError(f"experiment {self.experiment_id!r} has no static grid and "
                             f"its driver {self.driver!r} defines no cells(scale)")
        return [dict(cell) for cell in cells_fn(resolve_scale(scale))]

    def run_cell(self, params: Mapping, scale: ScaleLike, seed: int = 0,
                 ctx: Optional[Any] = None) -> Dict:
        """Execute one cell through the driver."""
        return self.resolve_driver().run_cell(dict(params), resolve_scale(scale),
                                              seed=seed, ctx=ctx)

    def format_rows(self, rows: List[Optional[Dict]]) -> str:
        """Render rows in the paper's layout (driver formatter or generic table).

        A partial campaign (``strict=False`` with failed cells) carries None
        at the failed positions; those rows are dropped from the rendering
        and counted in a trailing note, so driver formatters only ever see
        real rows.
        """
        present = [row for row in rows if row is not None]
        missing = len(rows) - len(present)
        module = self.resolve_driver()
        formatter = getattr(module, "format_results", None)
        if formatter is not None:
            text = formatter(present)
        else:
            text = format_table(present,
                                self.columns or sorted({k for row in present for k in row}),
                                title=self.description or self.experiment_id)
        if missing:
            text += f"\n({missing} cell(s) failed; rows missing — see error.json)"
        return text
