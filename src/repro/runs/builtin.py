"""The built-in experiment catalogue: every table and figure of the paper.

Each spec names its driver module (which implements ``run_cell``), its static
cell grid (or defers to ``driver.cells(scale)`` when the grid depends on the
scale), and the row schema.  Importing :mod:`repro.runs` registers all of
these, so ``python -m repro list`` works out of the box.
"""

from __future__ import annotations

from repro.runs.registry import register_experiment
from repro.runs.spec import ExperimentSpec


def _register_builtin_experiments() -> None:
    register_experiment(ExperimentSpec(
        experiment_id="table1",
        description="Table I: known cache-timing attacks verified on the simulator",
        driver="repro.experiments.table1_known_attacks",
        columns=("attack_category", "attacker_actions", "victim_actions",
                 "observation", "accuracy"),
        grid=tuple({"attack_category": name} for name in
                   ("prime+probe", "flush+reload", "evict+reload",
                    "lru state (addr-based)")),
        tags=("fast", "scripted"),
    ))

    register_experiment(ExperimentSpec(
        experiment_id="table3",
        description="Table III: attacks found on simulated real hardware (blackbox machines)",
        driver="repro.experiments.table3",
        columns=("cpu", "cache_level", "ways", "documented_policy",
                 "victim_addr", "attack_addr", "accuracy", "attack_category"),
        # Scale-dependent grid: bench trains one tractable machine, paper all
        # of Table III (driver.cells(scale) decides).
        grid=(),
        tags=("rl", "blackbox"),
    ))

    register_experiment(ExperimentSpec(
        experiment_id="table4",
        description="Table IV: attacks across 17 cache/attack configurations",
        driver="repro.experiments.table4",
        columns=("config", "description", "expected_attacks", "textbook_category",
                 "textbook_accuracy", "rl_trained", "rl_accuracy", "rl_category"),
        grid=tuple({"config": number} for number in range(1, 18)),
        tags=("rl", "textbook"),
    ))

    register_experiment(ExperimentSpec(
        experiment_id="table5",
        description="Table V: RL training statistics per replacement policy",
        driver="repro.experiments.table5",
        columns=("replacement_policy", "epochs_to_converge", "episode_length",
                 "accuracy", "converged_runs", "runs"),
        grid=tuple({"policy": policy} for policy in ("lru", "plru", "rrip")),
        tags=("rl",),
    ))

    register_experiment(ExperimentSpec(
        experiment_id="table6",
        description="Table VI: RL attacks on the random replacement policy",
        driver="repro.experiments.table6",
        columns=("step_reward", "end_accuracy", "episode_length", "converged"),
        grid=tuple({"step_reward": reward} for reward in (-0.02, -0.01, -0.005)),
        tags=("rl",),
    ))

    register_experiment(ExperimentSpec(
        experiment_id="table7",
        description="Table VII: attacking the partition-locked (PL) cache",
        driver="repro.experiments.table7",
        columns=("cache", "epochs_to_converge", "final_episode_length", "accuracy"),
        grid=({"cache": "PL Cache", "pl_cache": True},
              {"cache": "Baseline", "pl_cache": False}),
        tags=("rl", "defense"),
    ))

    register_experiment(ExperimentSpec(
        experiment_id="defense_matrix",
        description=("Attacker-vs-defense matrix: scripted-probe and PPO "
                     "attacker accuracy across base scenarios x defenses"),
        driver="repro.experiments.defense_matrix",
        columns=("scenario", "defense", "probe_accuracy", "accuracy",
                 "bits_per_episode", "episode_length", "epochs_to_converge",
                 "converged"),
        grid=tuple({"scenario": scenario, "defense": defense}
                   for scenario in ("guessing/lru-4way-disjoint",
                                    "guessing/plcache-baseline-4way",
                                    "guessing/sa-4set-2way")
                   for defense in ("none", "plcache", "keyed-remap",
                                   "way-partition", "random-fill")),
        tags=("rl", "defense"),
    ))

    register_experiment(ExperimentSpec(
        experiment_id="table8",
        description="Table VIII: bypassing CC-Hunter's autocorrelation detection",
        driver="repro.experiments.table8_fig3",
        columns=("attack", "bit_rate", "guess_accuracy", "max_autocorrelation"),
        grid=({"attack": "textbook"}, {"attack": "RL baseline"},
              {"attack": "RL autocor"}),
        tags=("rl", "covert", "detection"),
    ))

    register_experiment(ExperimentSpec(
        experiment_id="table9",
        description="Table IX: bypassing the Cyclone-style SVM detector",
        driver="repro.experiments.table9",
        columns=("attack", "bit_rate", "guess_accuracy", "detection_rate",
                 "svm_validation_accuracy"),
        grid=({"attack": "textbook"}, {"attack": "RL baseline"},
              {"attack": "RL SVM"}),
        tags=("rl", "covert", "detection"),
    ))

    register_experiment(ExperimentSpec(
        experiment_id="table10",
        description="Table X: covert-channel bit rates on (simulated) real machines",
        driver="repro.experiments.table10_fig5",
        columns=("cpu", "microarchitecture", "l1d_config", "os",
                 "lru_bit_rate_mbps", "ss_bit_rate_mbps", "improvement"),
        grid=tuple({"machine": name} for name in
                   ("Xeon E5-2687W v2", "Core i7-6700", "Core i5-11600K",
                    "Xeon W-1350P")),
        tags=("fast", "covert"),
    ))

    register_experiment(ExperimentSpec(
        experiment_id="fig4",
        description="Figure 4: StealthyStreamline vs prior attacks on the simulator",
        driver="repro.experiments.fig4",
        columns=("channel", "bits_per_symbol", "bits_per_access", "measured_fraction",
                 "error_rate", "victim_misses", "bypasses_miss_detection"),
        grid=({"channel": "lru_address_based"}, {"channel": "streamline"},
              {"channel": "stealthy_streamline"}),
        tags=("fast", "covert"),
    ))

    register_experiment(ExperimentSpec(
        experiment_id="search",
        description="Section VI-A: brute-force search vs RL step budgets",
        driver="repro.experiments.search_comparison",
        columns=("num_ways", "kind", "brute_force_sequences", "brute_force_steps",
                 "rl_steps_reference"),
        grid=tuple([{"kind": "analytical", "num_ways": n} for n in (2, 4, 6, 8, 12, 16)]
                   + [{"kind": "empirical", "num_ways": 2}]),
        tags=("fast", "analysis"),
    ))


_register_builtin_experiments()
