"""The experiment registry behind ``repro.run()``.

Mirrors the scenario registry one layer up: experiments are registered once
(the built-in catalogue — every table and figure of the paper — lives in
:mod:`repro.runs.builtin`) and addressed by id::

    import repro

    repro.list_experiments()              # ["fig4", "search", "table1", ...]
    spec = repro.get_experiment("table5")
    campaign = repro.run("table5", scale="smoke", workers=4)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from repro.runs.spec import ExperimentSpec

ExperimentLike = Union[str, ExperimentSpec]

_REGISTRY: Dict[str, ExperimentSpec] = {}


def register_experiment(spec: Optional[ExperimentSpec] = None, *,
                        overwrite: bool = False, **fields: Any) -> ExperimentSpec:
    """Register an experiment and return its spec.

    Pass either a ready :class:`ExperimentSpec` or keyword fields
    (``register_experiment(experiment_id="x", driver="pkg.mod", ...)``).
    """
    if spec is not None and fields:
        raise TypeError("pass either an ExperimentSpec or keyword fields, not both")
    if spec is None:
        spec = ExperimentSpec(**fields)
    if spec.experiment_id in _REGISTRY and not overwrite:
        raise ValueError(f"experiment {spec.experiment_id!r} is already registered "
                         "(pass overwrite=True to replace it)")
    _REGISTRY[spec.experiment_id] = spec
    return spec


def unregister_experiment(experiment_id: str) -> None:
    """Remove an experiment (mainly for tests)."""
    _REGISTRY.pop(experiment_id, None)


def is_experiment_registered(experiment_id: str) -> bool:
    return experiment_id in _REGISTRY


def list_experiments(prefix: str = "") -> List[str]:
    """Sorted ids of all registered experiments (optionally filtered by prefix)."""
    return sorted(eid for eid in _REGISTRY if eid.startswith(prefix))


def get_experiment(experiment: ExperimentLike) -> ExperimentSpec:
    """Look up an experiment id (specs pass through unchanged)."""
    return resolve_experiment(experiment)


def resolve_experiment(experiment: ExperimentLike) -> ExperimentSpec:
    if isinstance(experiment, ExperimentSpec):
        return experiment
    if isinstance(experiment, str):
        if experiment not in _REGISTRY:
            raise KeyError(f"unknown experiment {experiment!r}; "
                           f"known: {list_experiments()}")
        return _REGISTRY[experiment]
    raise TypeError(f"expected an experiment id or ExperimentSpec, got {type(experiment)!r}")
