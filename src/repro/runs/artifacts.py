"""Crash-safe campaign artifact I/O: atomic writes, checksums, quarantine.

Every file a campaign persists (manifests, cell results, training memos,
checkpoints, policies) goes through the helpers here so that the artifact
tree is **valid by construction** at every instant:

* **atomicity** — writes go to a hidden temp file in the destination
  directory (``.<name>.tmp-<pid>``), are flushed and fsynced, and land via
  ``os.replace``.  A crash at any point leaves either the old file or the
  new one, never a torn hybrid; the temp file is unlinked on failure so no
  strays accumulate;
* **integrity** — every write records the content's SHA-256 in a sidecar
  (``<name>.sha256``, ``sha256sum`` format).  Loads verify it; artifacts
  predating the sidecar convention are accepted as legacy but still must
  parse/unpickle;
* **quarantine** — a corrupt or truncated artifact is never silently
  accepted *and* never crashes the campaign: the loader moves it aside to
  ``<name>.corrupt-N``, appends a record to the directory's
  ``quarantine.jsonl`` log, and raises :class:`CorruptArtifactError` so the
  caller can transparently regenerate from its last good state.

The module is deliberately a leaf (stdlib + the shared JSON dialect from
:mod:`repro.rl.stats`) so that :mod:`repro.rl.trainer` can route checkpoints
through it without an import cycle.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, List, Optional

from repro.rl.stats import dump_json

#: Temp-file naming: ``.<name>.tmp-<pid>`` in the destination directory (same
#: filesystem, so ``os.replace`` is atomic).  ``stray_tmp_files`` globs this.
TMP_GLOB = ".*.tmp-*"
#: Quarantined artifacts: ``<name>.corrupt-N`` next to where the file lived.
CORRUPT_GLOB = "*.corrupt-*"
#: Per-directory quarantine log (append-only JSONL, diagnostic only).
QUARANTINE_LOG = "quarantine.jsonl"
#: Checksum sidecar suffix: ``result.json`` -> ``result.json.sha256``.
CHECKSUM_SUFFIX = ".sha256"


class CorruptArtifactError(RuntimeError):
    """A persisted artifact failed verification (and has been quarantined)."""

    def __init__(self, path: Path, reason: str, quarantined: Optional[Path] = None):
        super().__init__(f"corrupt artifact {path}: {reason}"
                         + (f" (quarantined to {quarantined.name})" if quarantined else ""))
        self.path = Path(path)
        self.reason = reason
        self.quarantined = quarantined


def checksum_path(path: Path) -> Path:
    return Path(path).with_name(Path(path).name + CHECKSUM_SUFFIX)


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry so an ``os.replace`` survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # platforms/filesystems without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _tmp_path(path: Path) -> Path:
    return path.with_name(f".{path.name}.tmp-{os.getpid()}")


def _replace_atomically(path: Path, data: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_path(path)
    try:
        with open(tmp, "wb") as stream:
            stream.write(data)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_dir(path.parent)


# ----------------------------------------------------------------- writing
def atomic_write_bytes(path: Path, data: bytes, checksum: bool = True) -> None:
    """Atomically write ``data`` to ``path`` and record its SHA-256 sidecar."""
    path = Path(path)
    _replace_atomically(path, data)
    if checksum:
        _replace_atomically(checksum_path(path),
                            f"{_digest(data)}  {path.name}\n".encode())


def atomic_write_text(path: Path, text: str, checksum: bool = True) -> None:
    atomic_write_bytes(path, text.encode("utf-8"), checksum=checksum)


def atomic_write_json(path: Path, payload: Any, indent: Optional[int] = None,
                      checksum: bool = True) -> None:
    """Atomically write ``payload`` through the shared JSON dialect."""
    atomic_write_text(path, dump_json(payload, indent=indent), checksum=checksum)


def atomic_write_pickle(path: Path, obj: Any, checksum: bool = True) -> None:
    atomic_write_bytes(path, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL),
                       checksum=checksum)


def remove_artifact(path: Path) -> None:
    """Unlink an artifact together with its checksum sidecar."""
    path = Path(path)
    path.unlink(missing_ok=True)
    checksum_path(path).unlink(missing_ok=True)


# ------------------------------------------------------------ verification
def verify_artifact(path: Path) -> Optional[bool]:
    """True/False for a checksummed artifact, None when no sidecar exists."""
    path = Path(path)
    sidecar = checksum_path(path)
    if not sidecar.exists():
        return None
    try:
        recorded = sidecar.read_text().split()[0]
    except (OSError, IndexError):
        return False
    return _digest(path.read_bytes()) == recorded


def quarantine(path: Path, reason: str) -> Path:
    """Move a corrupt artifact aside and log it; returns the quarantine path."""
    path = Path(path)
    index = 0
    while True:
        target = path.with_name(f"{path.name}.corrupt-{index}")
        if not target.exists():
            break
        index += 1
    os.replace(path, target)
    checksum_path(path).unlink(missing_ok=True)
    log = path.parent / QUARANTINE_LOG
    record = dump_json({"artifact": path.name, "quarantined_as": target.name,
                        "reason": reason})
    with open(log, "a", encoding="utf-8") as stream:
        stream.write(record + "\n")
    return target


def _load_verified(path: Path) -> bytes:
    path = Path(path)
    data = path.read_bytes()
    if verify_artifact(path) is False:
        quarantined = quarantine(path, "checksum mismatch")
        raise CorruptArtifactError(path, "checksum mismatch", quarantined)
    return data


def load_bytes(path: Path) -> bytes:
    """Read an artifact, verifying its checksum sidecar when present."""
    return _load_verified(path)


def load_text(path: Path) -> str:
    return _load_verified(path).decode("utf-8")


def load_json(path: Path) -> Any:
    """Read + parse a JSON artifact; corrupt or truncated files quarantine."""
    path = Path(path)
    data = _load_verified(path)
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        quarantined = quarantine(path, f"unparseable JSON: {exc}")
        raise CorruptArtifactError(path, f"unparseable JSON: {exc}", quarantined)


def load_pickle(path: Path) -> Any:
    """Read + unpickle an artifact; corrupt or truncated files quarantine."""
    path = Path(path)
    data = _load_verified(path)
    try:
        return pickle.loads(data)
    except Exception as exc:  # pickle raises a zoo of exception types
        quarantined = quarantine(path, f"unpicklable: {exc}")
        raise CorruptArtifactError(path, f"unpicklable: {exc}", quarantined)


# ------------------------------------------------------------- tree hygiene
def stray_tmp_files(root: Path) -> List[Path]:
    """Leftover temp files under ``root`` (empty after any clean shutdown)."""
    return sorted(Path(root).rglob(TMP_GLOB))


def quarantined_files(root: Path) -> List[Path]:
    """Live quarantined artifacts under ``root`` awaiting operator attention."""
    return sorted(Path(root).rglob(CORRUPT_GLOB))


def clear_quarantine(directory: Path) -> int:
    """Drop a directory's quarantined files (after the cell recovered).

    The ``quarantine.jsonl`` log is kept — recovery removes the corpses, not
    the record that corruption happened.
    """
    removed = 0
    for corpse in sorted(Path(directory).glob(CORRUPT_GLOB)):
        corpse.unlink()
        removed += 1
    return removed


def quarantine_log_entries(root: Path) -> List[dict]:
    """Every quarantine event recorded under ``root`` (diagnostic history)."""
    entries: List[dict] = []
    for log in sorted(Path(root).rglob(QUARANTINE_LOG)):
        for line in log.read_text().splitlines():
            if line.strip():
                entries.append(json.loads(line))
    return entries
