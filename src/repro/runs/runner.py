"""The campaign runner behind ``repro.run()``.

A *campaign* is one experiment × one scale × one seed, expanded into
independent *cells* (one per table row).  The runner:

* writes a **persistent run artifact** under ``out_dir`` (default
  ``runs/<experiment>-<scale>[-seed<seed>]``)::

      runs/table5-smoke/
        manifest.json                 # spec + scale + seed + cell grid
        results.json                  # all rows, written when complete
        cells/
          c00-lru/
            result.json               # the finished row + timing
            run0.result.json          # memoized TrainingResult
            run0.history.jsonl        # per-update training metrics
            run0.extraction.json      # extracted attack sequences
            run0.policy.pkl           # trained policy (for re-evaluation)
            run0.checkpoint.pkl       # only while the training is in flight

* executes cells **serially or across a multiprocessing pool**
  (``workers=N``).  Cells are seeded deterministically and share no state, so
  serial and parallel execution produce identical rows;

* **resumes**: re-invoking ``repro.run()`` on an existing out_dir skips cells
  whose ``result.json`` exists, and in-flight PPO trainings continue from
  their checkpoints — bit-identical to a never-interrupted campaign.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.experiments.common import ExperimentScale, ScaleLike, resolve_scale
from repro.rl.stats import dump_json
from repro.runs.context import CampaignInterrupted, CellContext
from repro.runs.registry import ExperimentLike, resolve_experiment
from repro.runs.spec import ExperimentSpec

MANIFEST_FORMAT = "repro-campaign"
MANIFEST_VERSION = 1

# Deterministic fault injection for the CI kill/resume job (see CellContext).
INTERRUPT_ENV_VAR = "REPRO_RUN_INTERRUPT_AFTER_UPDATES"


@dataclass
class CampaignResult:
    """What ``repro.run()`` returns: the rows plus the artifact locations."""

    spec: ExperimentSpec
    scale: ExperimentScale
    seed: int
    out_dir: Path
    rows: List[Dict]
    cells: List[Dict] = field(default_factory=list)
    workers: int = 1

    @property
    def experiment_id(self) -> str:
        return self.spec.experiment_id

    @property
    def completed(self) -> int:
        return sum(1 for cell in self.cells if cell["status"] in ("completed", "cached"))

    @property
    def resumed(self) -> int:
        """Cells whose finished row was loaded from a previous invocation."""
        return sum(1 for cell in self.cells if cell["status"] == "cached")

    def format_results(self) -> str:
        return self.spec.format_rows(self.rows)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment_id,
            "scale": self.scale.name,
            "seed": self.seed,
            "out_dir": str(self.out_dir),
            "workers": self.workers,
            "cells": self.cells,
            "rows": self.rows,
        }


def campaign_id(experiment_id: str, scale: ExperimentScale, seed: int) -> str:
    """Deterministic campaign directory name (no timestamps, so resume finds it)."""
    name = f"{experiment_id}-{scale.name}"
    if seed:
        name += f"-seed{seed}"
    return name


def cell_slug(index: int, params: Dict) -> str:
    """Short stable directory name for one cell."""
    values = "-".join(str(v) for v in params.values() if isinstance(v, (str, int, float)))
    values = "".join(ch if ch.isalnum() or ch in "-._" else "_" for ch in values)
    return f"c{index:02d}" + (f"-{values[:40]}" if values else "")


def _cell_dir(out_dir: Path, index: int, params: Dict) -> Path:
    return out_dir / "cells" / cell_slug(index, params)


def _manifest_payload(spec: ExperimentSpec, scale: ExperimentScale, seed: int,
                      cells: List[Dict]) -> Dict[str, Any]:
    return {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "experiment": spec.to_dict(),
        "scale": scale.to_dict(),
        "seed": seed,
        "cells": [{"index": index, "slug": cell_slug(index, params), "params": params}
                  for index, params in enumerate(cells)],
    }


def _check_manifest(existing: Dict, fresh: Dict, out_dir: Path) -> None:
    """Refuse to resume into a directory holding a *different* campaign."""
    for key in ("experiment", "scale", "seed", "cells"):
        if existing.get(key) != fresh[key]:
            raise ValueError(
                f"{out_dir} already holds a different campaign ({key} differs); "
                "pass a fresh out_dir or delete the old artifact")


def _execute_cell(spec_data: Dict, scale_data: Dict, seed: int, index: int,
                  params: Dict, cell_dir: str, checkpoint_every: int,
                  interrupt_after_updates: Optional[int]) -> Dict:
    """Run one cell to completion (resuming in-flight training if any).

    Takes and returns plain data so it can cross a multiprocessing boundary.
    """
    spec = ExperimentSpec.from_dict(spec_data)
    scale = ExperimentScale.from_dict(scale_data)
    cell_path = Path(cell_dir)
    result_file = cell_path / "result.json"
    if result_file.exists():
        row = json.loads(result_file.read_text())["row"]
        return {"index": index, "row": row, "status": "cached"}
    cell_path.mkdir(parents=True, exist_ok=True)
    ctx = CellContext(cell_path, checkpoint_every=checkpoint_every,
                      interrupt_after_updates=interrupt_after_updates)
    started = time.perf_counter()
    row = spec.run_cell(params, scale, seed=seed, ctx=ctx)
    payload = {
        "experiment": spec.experiment_id,
        "scale": scale.name,
        "seed": seed,
        "index": index,
        "params": params,
        "row": row,
        "elapsed_seconds": time.perf_counter() - started,
    }
    result_file.write_text(dump_json(payload, indent=2))
    # Round-trip the row through the same JSON path that resume uses, so
    # serial, parallel, and resumed campaigns return identical rows.
    return {"index": index, "row": json.loads(result_file.read_text())["row"],
            "status": "completed"}


def _cell_worker(payload: Dict) -> Dict:
    """Pool entry point: never raises; errors travel back as data."""
    try:
        return _execute_cell(**payload)
    except CampaignInterrupted as error:
        return {"index": payload["index"], "status": "interrupted", "error": str(error)}
    except Exception:
        return {"index": payload["index"], "status": "failed",
                "error": traceback.format_exc()}


def run(experiment: ExperimentLike, scale: Optional[ScaleLike] = None,
        seed: Optional[int] = None, workers: int = 1,
        out_dir: Optional[os.PathLike] = None, root: os.PathLike = "runs",
        checkpoint_every: int = 2,
        interrupt_after_updates: Optional[int] = None) -> CampaignResult:
    """Run (or resume) an experiment campaign and return its rows.

    Parameters
    ----------
    experiment:
        Registered experiment id or an :class:`ExperimentSpec`.
    scale:
        ``"smoke"`` / ``"bench"`` / ``"paper"`` or an
        :class:`~repro.experiments.common.ExperimentScale`; defaults to the
        spec's ``default_scale``.
    seed:
        Campaign seed (defaults to the spec's ``base_seed``).  Every cell
        derives its training seeds from it exactly like the legacy
        ``tableN.run(seed=...)`` functions.
    workers:
        Number of processes for cell execution.  ``workers=1`` runs in-process;
        results are row-for-row identical either way.
    out_dir / root:
        Artifact location.  Default: ``<root>/<experiment>-<scale>[-seedN]``.
    checkpoint_every:
        Save a resumable trainer checkpoint every N PPO updates.
    interrupt_after_updates:
        Fault injection for tests/CI: abort the campaign right after the
        checkpoint at that update is written (also settable through the
        ``REPRO_RUN_INTERRUPT_AFTER_UPDATES`` env var).
    """
    spec = resolve_experiment(experiment)
    scale = resolve_scale(scale if scale is not None else spec.default_scale)
    seed = spec.base_seed if seed is None else int(seed)
    if interrupt_after_updates is None and os.environ.get(INTERRUPT_ENV_VAR):
        interrupt_after_updates = int(os.environ[INTERRUPT_ENV_VAR])

    out_dir = (Path(out_dir) if out_dir is not None
               else Path(root) / campaign_id(spec.experiment_id, scale, seed))
    out_dir.mkdir(parents=True, exist_ok=True)

    cells = spec.cells(scale)
    manifest = _manifest_payload(spec, scale, seed, cells)
    manifest_file = out_dir / "manifest.json"
    if manifest_file.exists():
        _check_manifest(json.loads(manifest_file.read_text()), manifest, out_dir)
    else:
        manifest_file.write_text(dump_json(manifest, indent=2))

    payloads = [{
        "spec_data": spec.to_dict(),
        "scale_data": scale.to_dict(),
        "seed": seed,
        "index": index,
        "params": params,
        "cell_dir": str(_cell_dir(out_dir, index, params)),
        "checkpoint_every": checkpoint_every,
        "interrupt_after_updates": interrupt_after_updates,
    } for index, params in enumerate(cells)]

    # Cached cells cost one JSON read; only dispatch real work to the pool.
    pending, cached = [], []
    for payload in payloads:
        target = pending if not (Path(payload["cell_dir"]) / "result.json").exists() else cached
        target.append(payload)
    outcomes: Dict[int, Dict] = {}
    for payload in cached:
        outcomes[payload["index"]] = _execute_cell(**payload)

    if len(pending) <= 1 or workers <= 1:
        for payload in pending:
            outcomes[payload["index"]] = _execute_cell(**payload)
    else:
        with multiprocessing.Pool(processes=min(workers, len(pending))) as pool:
            for outcome in pool.imap_unordered(_cell_worker, pending):
                outcomes[outcome["index"]] = outcome
    _raise_on_failures(outcomes)

    ordered = [outcomes[index] for index in range(len(cells))]
    rows = [outcome["row"] for outcome in ordered]
    cell_summaries = [{"index": index, "params": cells[index],
                       "slug": cell_slug(index, cells[index]),
                       "status": ordered[index]["status"]}
                      for index in range(len(cells))]
    (out_dir / "results.json").write_text(dump_json({
        "experiment": spec.experiment_id, "scale": scale.name, "seed": seed,
        "rows": rows,
    }, indent=2))
    return CampaignResult(spec=spec, scale=scale, seed=seed, out_dir=out_dir,
                          rows=rows, cells=cell_summaries, workers=workers)


def _raise_on_failures(outcomes: Dict[int, Dict]) -> None:
    interrupted = [o for o in outcomes.values() if o.get("status") == "interrupted"]
    failed = [o for o in outcomes.values() if o.get("status") == "failed"]
    if interrupted:
        raise CampaignInterrupted(interrupted[0]["error"])
    if failed:
        details = "\n\n".join(o["error"] for o in failed)
        raise RuntimeError(f"{len(failed)} campaign cell(s) failed:\n{details}")


# --------------------------------------------------------------- inspection
def campaign_status(out_dir: os.PathLike) -> Optional[Dict[str, Any]]:
    """Status summary for one campaign directory (None if not a campaign)."""
    out_dir = Path(out_dir)
    manifest_file = out_dir / "manifest.json"
    if not manifest_file.exists():
        return None
    manifest = json.loads(manifest_file.read_text())
    if manifest.get("format") != MANIFEST_FORMAT:
        return None
    cells = manifest.get("cells", [])
    done = in_flight = 0
    for cell in cells:
        cell_dir = out_dir / "cells" / cell["slug"]
        if (cell_dir / "result.json").exists():
            done += 1
        elif any(cell_dir.glob("*.checkpoint.pkl")) or any(cell_dir.glob("*.result.json")):
            # An in-flight checkpoint, or memoized finished trainings of a
            # multi-run cell interrupted between trainings.
            in_flight += 1
    return {
        "campaign": out_dir.name,
        "out_dir": str(out_dir),
        "experiment": manifest["experiment"]["experiment_id"],
        "scale": manifest["scale"]["name"],
        "seed": manifest["seed"],
        "cells": len(cells),
        "completed": done,
        "in_flight": in_flight,
        "status": ("complete" if done == len(cells)
                   else "in-flight" if (done or in_flight) else "pending"),
    }


def list_campaigns(root: os.PathLike = "runs") -> List[Dict[str, Any]]:
    """Status of every campaign artifact under ``root``."""
    root = Path(root)
    if not root.exists():
        return []
    statuses = []
    for child in sorted(root.iterdir()):
        status = campaign_status(child)
        if status is not None:
            statuses.append(status)
    return statuses


def load_rows(experiment: ExperimentLike, scale: Optional[ScaleLike] = None,
              seed: Optional[int] = None, root: os.PathLike = "runs",
              out_dir: Optional[os.PathLike] = None) -> List[Dict]:
    """Rows of a finished (or partially finished) campaign artifact."""
    spec = resolve_experiment(experiment)
    scale = resolve_scale(scale if scale is not None else spec.default_scale)
    seed = spec.base_seed if seed is None else int(seed)
    out_dir = (Path(out_dir) if out_dir is not None
               else Path(root) / campaign_id(spec.experiment_id, scale, seed))
    manifest_file = out_dir / "manifest.json"
    if not manifest_file.exists():
        raise FileNotFoundError(f"no campaign artifact at {out_dir}")
    manifest = json.loads(manifest_file.read_text())
    rows = []
    for cell in manifest.get("cells", []):
        result_file = out_dir / "cells" / cell["slug"] / "result.json"
        if result_file.exists():
            rows.append(json.loads(result_file.read_text())["row"])
    return rows
