"""The campaign runner behind ``repro.run()``.

A *campaign* is one experiment × one scale × one seed, expanded into
independent *cells* (one per table row).  The runner:

* writes a **persistent run artifact** under ``out_dir`` (default
  ``runs/<experiment>-<scale>[-seed<seed>]``)::

      runs/table5-smoke/
        manifest.json                 # spec + scale + seed + cell grid
        results.json                  # all rows, written when complete
        faults/                       # fired fault-injection state (if any)
        cells/
          c00-lru/
            result.json               # the finished row + timing
            error.json                # structured failure record (if failed)
            run0.result.json          # memoized TrainingResult
            run0.history.jsonl        # per-update training metrics
            run0.extraction.json      # extracted attack sequences
            run0.policy.pkl           # trained policy (for re-evaluation)
            run0.checkpoint.pkl       # only while the training is in flight

  Every artifact is written atomically with a SHA-256 sidecar
  (:mod:`repro.runs.artifacts`): a kill mid-write leaves the previous state,
  and a corrupt/truncated file found on load is quarantined to
  ``<name>.corrupt-N`` and its cell transparently re-run from its last good
  checkpoint;

* executes cells **serially or across a pool of worker processes**
  (``workers=N``).  Cells are seeded deterministically and share no state, so
  serial and parallel execution produce identical rows.  Failed cells do not
  abort the campaign: each gets a structured ``error.json`` record, bounded
  in-process retries with deterministic exponential backoff
  (``max_attempts`` / ``retry_backoff``), and — opt-in via ``timeout`` — a
  per-cell wall-clock limit enforced by a watchdog that kills and reclaims
  hung workers.  ``strict=True`` (the default, for CI parity) raises an
  aggregated error afterwards; ``strict=False`` returns partial rows with
  per-cell status instead;

* **resumes**: re-invoking ``repro.run()`` on an existing out_dir skips cells
  whose ``result.json`` exists, re-attempts failed/timed-out cells, and
  in-flight PPO trainings continue from their checkpoints — bit-identical to
  a never-interrupted campaign;

* **injects faults** on request: a :class:`~repro.runs.faults.FaultPlan`
  (``fault_plan=`` argument, ``REPRO_RUN_FAULT_PLAN`` env var, or
  ``--fault-plan`` on the CLI) deterministically kills cells at checkpoint
  boundaries, tears or bit-flips just-written artifacts, and stalls workers
  past the watchdog — subsuming the legacy
  ``REPRO_RUN_INTERRUPT_AFTER_UPDATES`` hook.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro import telemetry
from repro.experiments.common import ExperimentScale, ScaleLike, resolve_scale
from repro.runs.artifacts import (
    CorruptArtifactError,
    atomic_write_json,
    clear_quarantine,
    load_json,
    quarantine,
    quarantined_files,
)
from repro.runs.context import CampaignInterrupted, CellContext
from repro.runs.faults import FaultInjector, FaultPlan, resolve_fault_plan
from repro.runs.registry import ExperimentLike, resolve_experiment
from repro.runs.spec import ExperimentSpec

MANIFEST_FORMAT = "repro-campaign"
MANIFEST_VERSION = 1

# Legacy deterministic fault injection (now a one-kill FaultPlan; see faults.py).
INTERRUPT_ENV_VAR = "REPRO_RUN_INTERRUPT_AFTER_UPDATES"

#: Cell outcome statuses the runner reports.
CELL_STATUSES = ("completed", "cached", "failed", "timeout", "interrupted")

#: Seconds a terminated worker gets to exit before an uncatchable kill.
_KILL_GRACE_SECONDS = 2.0


@dataclass
class CampaignResult:
    """What ``repro.run()`` returns: the rows plus the artifact locations.

    With ``strict=False`` the campaign may be *partial*: ``rows`` holds None
    at the positions of failed/timed-out cells, and each entry of ``cells``
    carries the cell's ``status`` plus its structured ``error`` record.
    """

    spec: ExperimentSpec
    scale: ExperimentScale
    seed: int
    out_dir: Path
    rows: List[Optional[Dict]]
    cells: List[Dict] = field(default_factory=list)
    workers: int = 1
    strict: bool = True

    @property
    def experiment_id(self) -> str:
        return self.spec.experiment_id

    @property
    def completed(self) -> int:
        return sum(1 for cell in self.cells if cell["status"] in ("completed", "cached"))

    @property
    def resumed(self) -> int:
        """Cells whose finished row was loaded from a previous invocation."""
        return sum(1 for cell in self.cells if cell["status"] == "cached")

    @property
    def failed(self) -> int:
        return sum(1 for cell in self.cells
                   if cell["status"] in ("failed", "timeout", "interrupted"))

    @property
    def partial(self) -> bool:
        return self.completed < len(self.cells)

    @property
    def errors(self) -> List[Dict]:
        """The per-cell error records of every non-completed cell."""
        return [cell for cell in self.cells
                if cell["status"] in ("failed", "timeout", "interrupted")]

    def format_results(self) -> str:
        return self.spec.format_rows(self.rows)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment_id,
            "scale": self.scale.name,
            "seed": self.seed,
            "out_dir": str(self.out_dir),
            "workers": self.workers,
            "strict": self.strict,
            "cells": self.cells,
            "rows": self.rows,
        }


def campaign_id(experiment_id: str, scale: ExperimentScale, seed: int) -> str:
    """Deterministic campaign directory name (no timestamps, so resume finds it)."""
    name = f"{experiment_id}-{scale.name}"
    if seed:
        name += f"-seed{seed}"
    return name


def cell_slug(index: int, params: Dict) -> str:
    """Short stable directory name for one cell."""
    values = "-".join(str(v) for v in params.values() if isinstance(v, (str, int, float)))
    values = "".join(ch if ch.isalnum() or ch in "-._" else "_" for ch in values)
    return f"c{index:02d}" + (f"-{values[:40]}" if values else "")


def _cell_dir(out_dir: Path, index: int, params: Dict) -> Path:
    return out_dir / "cells" / cell_slug(index, params)


def _manifest_payload(spec: ExperimentSpec, scale: ExperimentScale, seed: int,
                      cells: List[Dict]) -> Dict[str, Any]:
    return {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "experiment": spec.to_dict(),
        "scale": scale.to_dict(),
        "seed": seed,
        "cells": [{"index": index, "slug": cell_slug(index, params), "params": params}
                  for index, params in enumerate(cells)],
    }


def _check_manifest(existing: Dict, fresh: Dict, out_dir: Path) -> None:
    """Refuse to resume into a directory holding a *different* campaign."""
    for key in ("experiment", "scale", "seed", "cells"):
        if existing.get(key) != fresh[key]:
            raise ValueError(
                f"{out_dir} already holds a different campaign ({key} differs); "
                "pass a fresh out_dir or delete the old artifact")


# ----------------------------------------------------------- cell execution
def _load_cached_row(result_file: Path) -> Optional[Dict]:
    """The verified cached row, or None after quarantining a corrupt file."""
    if not result_file.exists():
        return None
    try:
        payload = load_json(result_file)
    except CorruptArtifactError:
        telemetry.counter("runner.cells.quarantined").inc()
        return None
    row = payload.get("row") if isinstance(payload, dict) else None
    if row is None:
        quarantine(result_file, "result.json without a row")
        telemetry.counter("runner.cells.quarantined").inc()
        return None
    return row


def _execute_cell(spec_data: Dict, scale_data: Dict, seed: int, index: int,
                  params: Dict, cell_dir: str, out_dir: str, checkpoint_every: int,
                  interrupt_after_updates: Optional[int],
                  fault_plan: Optional[Dict] = None, **_budget: Any) -> Dict:
    """Run one cell to completion (resuming in-flight training if any).

    Takes and returns plain data so it can cross a multiprocessing boundary.
    """
    spec = ExperimentSpec.from_dict(spec_data)
    scale = ExperimentScale.from_dict(scale_data)
    cell_path = Path(cell_dir)
    result_file = cell_path / "result.json"
    cached = _load_cached_row(result_file)
    if cached is not None:
        return {"index": index, "row": cached, "status": "cached"}
    cell_path.mkdir(parents=True, exist_ok=True)
    injector = None
    if fault_plan is not None:
        injector = FaultInjector(FaultPlan.from_dict(fault_plan), Path(out_dir), index)
        injector.on_cell_start()
    ctx = CellContext(cell_path, checkpoint_every=checkpoint_every,
                      interrupt_after_updates=interrupt_after_updates,
                      injector=injector)
    started = time.perf_counter()
    row = spec.run_cell(params, scale, seed=seed, ctx=ctx)
    payload = {
        "experiment": spec.experiment_id,
        "scale": scale.name,
        "seed": seed,
        "index": index,
        "params": params,
        "row": row,
        "elapsed_seconds": time.perf_counter() - started,
    }
    atomic_write_json(result_file, payload, indent=2)
    # Round-trip the row through the same JSON path that resume uses, so
    # serial, parallel, and resumed campaigns return identical rows.
    row = load_json(result_file)["row"]
    # The cell recovered: retire its failure record and quarantined corpses
    # (the quarantine.jsonl log keeps the history).
    (cell_path / "error.json").unlink(missing_ok=True)
    (cell_path / "error.json.sha256").unlink(missing_ok=True)
    clear_quarantine(cell_path)
    if injector is not None:
        injector.on_artifact_written("result", result_file)
    return {"index": index, "row": row, "status": "completed"}


def _error_record(index: int, error: BaseException, attempt: int,
                  elapsed: float, status: str = "failed") -> Dict:
    return {
        "index": index,
        "status": status,
        "error_type": type(error).__name__,
        "error": f"{type(error).__name__}: {error}",
        "traceback": traceback.format_exc(),
        "attempt": attempt,
        "elapsed_seconds": elapsed,
    }


def _prior_attempts(cell_dir: Path) -> int:
    """Cumulative attempt count recorded by previous invocations."""
    error_file = Path(cell_dir) / "error.json"
    if not error_file.exists():
        return 0
    try:
        return int(load_json(error_file).get("attempt", 0))
    except (CorruptArtifactError, TypeError, ValueError):
        return 0


def _attempt_cell(payload: Dict) -> Dict:
    """Run one cell with the bounded retry/backoff budget.

    Returns an outcome dict (never raises for ordinary failures).  Control
    flow — ``KeyboardInterrupt``/``SystemExit`` — is re-raised so Ctrl-C
    tears the campaign down promptly; an (injected or real) kill comes back
    as an ``interrupted`` outcome for the caller to surface.
    """
    index = payload["index"]
    cell_dir = Path(payload["cell_dir"])
    max_attempts = max(1, int(payload.get("max_attempts", 1)))
    backoff = float(payload.get("retry_backoff", 0.0))
    prior = _prior_attempts(cell_dir)
    run_label = Path(payload.get("out_dir", "")).name
    record: Dict = {}
    try:
        for attempt in range(1, max_attempts + 1):
            started = time.perf_counter()
            telemetry.counter("runner.cell.attempts").inc()
            if attempt > 1:
                telemetry.counter("runner.cell.retries").inc()
            try:
                with telemetry.span("runner.cell", run_id=run_label,
                                    cell=index, attempt=prior + attempt):
                    outcome = _execute_cell(**payload)
                telemetry.counter(
                    "runner.cells." + outcome.get("status", "completed")).inc()
                return outcome
            except (KeyboardInterrupt, SystemExit):
                raise
            except CampaignInterrupted as error:
                # A (simulated) kill: a real crash would persist nothing, so
                # no error.json — the cell's checkpoint is what resume picks
                # up.
                telemetry.counter("runner.cells.interrupted").inc()
                return _error_record(index, error, prior + attempt,
                                     time.perf_counter() - started,
                                     status="interrupted")
            except Exception as error:
                telemetry.counter("runner.cells.failed").inc()
                record = _error_record(index, error, prior + attempt,
                                       time.perf_counter() - started)
                atomic_write_json(cell_dir / "error.json", record, indent=2)
                if attempt < max_attempts:
                    time.sleep(backoff * (2 ** (attempt - 1)))
        return record
    finally:
        # Local runs persist telemetry per cell: with a worker pool each
        # cell runs in its own (short-lived) process, so this is the only
        # point where the child's registry can reach the catalogue.  Queue
        # workers omit catalog_file from their payloads — their drain loop
        # owns a flusher (remote workers must never touch the catalogue).
        catalog_file = payload.get("catalog_file")
        if catalog_file:
            telemetry.flush_to_catalog(Path(catalog_file))


def _cell_worker(payload: Dict) -> Dict:
    """Worker entry point: ordinary errors travel back as data.

    ``KeyboardInterrupt``/``SystemExit`` are deliberately re-raised — turning
    them into a generic "failed" record would swallow Ctrl-C and leave the
    pool draining cells nobody wants anymore.
    """
    try:
        return _attempt_cell(payload)
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as error:  # defensive: _attempt_cell already catches
        return _error_record(payload["index"], error, _prior_attempts(
            Path(payload["cell_dir"])) + 1, 0.0)


def _managed_worker(payload: Dict, outcome_queue) -> None:
    """Child-process entry: ship the outcome back over the queue."""
    try:
        outcome = _cell_worker(payload)
    except (KeyboardInterrupt, SystemExit):
        raise
    outcome_queue.put(outcome)


def _drain_outcomes(outcome_queue, outcomes: Dict[int, Dict],
                    timeout: float, until_index: Optional[int] = None) -> None:
    """Pull every queued outcome; optionally wait up to ``timeout`` for one
    specific index (a worker that just exited)."""
    deadline = time.perf_counter() + timeout
    while True:
        try:
            outcome = outcome_queue.get(
                timeout=max(0.0, deadline - time.perf_counter()))
        except queue_module.Empty:
            return
        outcomes[outcome["index"]] = outcome
        if until_index is not None and outcome["index"] == until_index:
            return


def _run_worker_pool(pending: List[Dict], workers: int,
                     timeout: Optional[float]) -> Dict[int, Dict]:
    """Execute cells across managed worker processes with a watchdog.

    One process per cell (cells are coarse units of work), at most
    ``workers`` alive at a time.  When ``timeout`` is set, a cell running
    past its wall-clock budget is killed, recorded as ``timeout``, and its
    worker slot reclaimed.  Ctrl-C terminates every live worker before
    re-raising.
    """
    ctx = multiprocessing.get_context()
    outcome_queue = ctx.Queue()
    outcomes: Dict[int, Dict] = {}
    waiting = list(pending)
    running: Dict[int, Dict] = {}  # index -> {process, payload, deadline}
    try:
        while waiting or running:
            while waiting and len(running) < workers:
                payload = waiting.pop(0)
                process = ctx.Process(target=_managed_worker,
                                      args=(payload, outcome_queue))
                process.start()
                running[payload["index"]] = {
                    "process": process, "payload": payload,
                    "deadline": (time.perf_counter() + timeout
                                 if timeout is not None else None),
                }
            _drain_outcomes(outcome_queue, outcomes, timeout=0.05)
            now = time.perf_counter()
            for index in list(running):
                entry = running[index]
                process = entry["process"]
                if index in outcomes:
                    process.join()
                    del running[index]
                    continue
                if not process.is_alive():
                    # The worker exited: its outcome (if it posted one) may
                    # still be in flight through the queue's feeder pipe.
                    process.join()
                    _drain_outcomes(outcome_queue, outcomes, timeout=0.2,
                                    until_index=index)
                    if index not in outcomes:
                        outcomes[index] = _worker_death_record(entry)
                    del running[index]
                    continue
                if entry["deadline"] is not None and now > entry["deadline"]:
                    process.terminate()
                    process.join(_KILL_GRACE_SECONDS)
                    if process.is_alive():
                        process.kill()
                        process.join()
                    outcomes[index] = _timeout_record(entry, timeout)
                    del running[index]
    except (KeyboardInterrupt, SystemExit):
        for entry in running.values():
            entry["process"].terminate()
        for entry in running.values():
            entry["process"].join(_KILL_GRACE_SECONDS)
            if entry["process"].is_alive():
                entry["process"].kill()
        raise
    finally:
        outcome_queue.close()
    return outcomes


def _timeout_record(entry: Dict, timeout: Optional[float]) -> Dict:
    """Record a watchdog kill (written by the parent; the child is gone)."""
    payload = entry["payload"]
    record = {
        "index": payload["index"],
        "status": "timeout",
        "error_type": "CellTimeout",
        "error": (f"CellTimeout: cell {payload['index']} exceeded the "
                  f"{timeout:g}s wall-clock budget and was killed"),
        "traceback": "",
        "attempt": _prior_attempts(Path(payload["cell_dir"])) + 1,
        "elapsed_seconds": timeout,
    }
    Path(payload["cell_dir"]).mkdir(parents=True, exist_ok=True)
    atomic_write_json(Path(payload["cell_dir"]) / "error.json", record, indent=2)
    return record


def _worker_death_record(entry: Dict) -> Dict:
    """Record a worker that died without reporting (hard crash / OOM kill)."""
    payload = entry["payload"]
    exitcode = entry["process"].exitcode
    record = {
        "index": payload["index"],
        "status": "failed",
        "error_type": "WorkerDied",
        "error": f"WorkerDied: worker exited with code {exitcode} before reporting",
        "traceback": "",
        "attempt": _prior_attempts(Path(payload["cell_dir"])) + 1,
        "elapsed_seconds": None,
    }
    Path(payload["cell_dir"]).mkdir(parents=True, exist_ok=True)
    atomic_write_json(Path(payload["cell_dir"]) / "error.json", record, indent=2)
    return record


def cell_payloads(spec: ExperimentSpec, scale: ExperimentScale, seed: int,
                  out_dir: Path, cells: List[Dict], checkpoint_every: int = 2,
                  fault_plan: Optional[FaultPlan] = None,
                  max_attempts: int = 1,
                  retry_backoff: float = 0.25,
                  catalog_file: Optional[Path] = None) -> List[Dict]:
    """One plain-data execution payload per cell.

    This is the unit of work both execution backends share: ``repro.run()``
    dispatches payloads to its worker pool, and the campaign service
    (:mod:`repro.store.worker`) enqueues the very same payloads as catalogue
    jobs — which is why a queue drain is bit-identical to a local run.

    ``catalog_file`` is set only by local runs: it tells the (possibly
    child-process) cell where to flush its telemetry.  Queue payloads leave
    it unset — a drain worker's own flusher reports instead, through
    whichever transport the worker is using.
    """
    return [{
        "spec_data": spec.to_dict(),
        "scale_data": scale.to_dict(),
        "seed": seed,
        "index": index,
        "params": params,
        "cell_dir": str(_cell_dir(out_dir, index, params)),
        "out_dir": str(out_dir),
        "checkpoint_every": checkpoint_every,
        "interrupt_after_updates": None,  # legacy hook rides the fault plan
        "fault_plan": fault_plan.to_dict() if fault_plan is not None else None,
        "max_attempts": max_attempts,
        "retry_backoff": retry_backoff,
        "catalog_file": str(catalog_file) if catalog_file is not None else None,
    } for index, params in enumerate(cells)]


def _record_campaign_in_catalog(catalog_file: Optional[Path], out_dir: Path,
                                spec: ExperimentSpec, scale: ExperimentScale,
                                seed: int, cells: List[Dict],
                                plan: Optional[FaultPlan],
                                outcomes: Dict[int, Dict]) -> None:
    """Mirror a campaign's outcomes into the SQLite catalogue.

    The artifact tree already landed (atomically) by the time this runs; the
    catalogue is the queryable index over it, kept in lock-step by recording
    every run through here and through the queue workers.
    """
    if catalog_file is None:
        return
    from repro.store.catalog import Catalog  # late: repro.store imports us

    with Catalog(catalog_file) as catalog:
        catalog.record_campaign(
            out_dir.name, spec, scale.name, seed, out_dir, cells,
            slugs=[cell_slug(index, params)
                   for index, params in enumerate(cells)],
            fault_plan=plan.to_dict() if plan is not None else None,
            manifest_version=MANIFEST_VERSION)
        for index in sorted(outcomes):
            outcome = outcomes[index]
            attempts = outcome.get("attempt")
            if attempts is None:
                attempts = _prior_attempts(_cell_dir(out_dir, index,
                                                     cells[index]))
            catalog.record_cell(
                out_dir.name, index, cells[index], outcome["status"],
                row=outcome.get("row"), error=outcome.get("error"),
                attempts=int(attempts),
                elapsed_seconds=outcome.get("elapsed_seconds"))
    # Drain the parent process's registry too (cached-cell counters, spans
    # of serially executed cells) — child processes flushed their own.
    telemetry.flush_to_catalog(catalog_file)


def resolve_catalog_file(catalog: Any, out_dir: Path) -> Optional[Path]:
    """Where a campaign's catalogue lives.

    ``None`` (the default) puts ``catalog.sqlite`` next to the campaign
    directory — so every campaign under one ``--root`` shares one catalogue;
    ``False`` disables catalogue recording; anything else is an explicit
    path.
    """
    if catalog is False:
        return None
    if catalog is None:
        from repro.store.connection import catalog_path

        return catalog_path(out_dir.parent)
    return Path(catalog)


# -------------------------------------------------------------------- run()
def run(experiment: ExperimentLike, scale: Optional[ScaleLike] = None,
        seed: Optional[int] = None, workers: int = 1,
        out_dir: Optional[os.PathLike] = None, root: os.PathLike = "runs",
        checkpoint_every: int = 2,
        interrupt_after_updates: Optional[int] = None, *,
        strict: bool = True, max_attempts: int = 1, retry_backoff: float = 0.25,
        timeout: Optional[float] = None,
        fault_plan: Any = None, catalog: Any = None) -> CampaignResult:
    """Run (or resume) an experiment campaign and return its rows.

    Parameters
    ----------
    experiment:
        Registered experiment id or an :class:`ExperimentSpec`.
    scale:
        ``"smoke"`` / ``"bench"`` / ``"paper"`` or an
        :class:`~repro.experiments.common.ExperimentScale`; defaults to the
        spec's ``default_scale``.
    seed:
        Campaign seed (defaults to the spec's ``base_seed``).  Every cell
        derives its training seeds from it exactly like the legacy
        ``tableN.run(seed=...)`` functions.
    workers:
        Number of processes for cell execution.  ``workers=1`` runs in-process
        (unless ``timeout`` is set, which needs killable workers); results are
        row-for-row identical either way.
    out_dir / root:
        Artifact location.  Default: ``<root>/<experiment>-<scale>[-seedN]``.
    checkpoint_every:
        Save a resumable trainer checkpoint every N PPO updates.
    strict:
        True (default): raise after the campaign if any cell failed, timed
        out, or was interrupted — with *every* affected cell aggregated into
        one message.  False: return partial rows (None at failed positions)
        plus structured per-cell error records; a later ``repro.run()`` on
        the same out_dir re-attempts only the non-completed cells.
    max_attempts / retry_backoff:
        Bounded in-process retries per cell with deterministic exponential
        backoff (``retry_backoff * 2**(attempt-1)`` seconds between
        attempts).  Attempt counts accumulate across invocations in the
        cell's ``error.json``.
    timeout:
        Opt-in per-cell wall-clock budget in seconds, enforced by a watchdog
        that kills and reclaims hung worker processes (cells then report
        status ``timeout``).
    fault_plan:
        A :class:`~repro.runs.faults.FaultPlan` (or its dict/JSON/path form)
        of deterministic faults to inject; also settable through the
        ``REPRO_RUN_FAULT_PLAN`` env var.  Subsumes the legacy
        ``interrupt_after_updates`` hook (still accepted, also via
        ``REPRO_RUN_INTERRUPT_AFTER_UPDATES``).
    catalog:
        Where to mirror the campaign in the SQLite catalogue
        (:mod:`repro.store`): ``None`` (default) uses
        ``<out_dir's parent>/catalog.sqlite``, ``False`` disables
        recording, a path selects an explicit catalogue file.
    """
    spec = resolve_experiment(experiment)
    scale = resolve_scale(scale if scale is not None else spec.default_scale)
    seed = spec.base_seed if seed is None else int(seed)
    if interrupt_after_updates is None and os.environ.get(INTERRUPT_ENV_VAR):
        interrupt_after_updates = int(os.environ[INTERRUPT_ENV_VAR])
    plan = resolve_fault_plan(fault_plan, interrupt_after_updates)

    out_dir = (Path(out_dir) if out_dir is not None
               else Path(root) / campaign_id(spec.experiment_id, scale, seed))
    out_dir.mkdir(parents=True, exist_ok=True)

    cells = spec.cells(scale)
    manifest = _manifest_payload(spec, scale, seed, cells)
    manifest_file = out_dir / "manifest.json"
    existing_manifest = None
    if manifest_file.exists():
        try:
            existing_manifest = load_json(manifest_file)
        except CorruptArtifactError:
            existing_manifest = None  # quarantined; rewrite below
    if existing_manifest is not None:
        _check_manifest(existing_manifest, manifest, out_dir)
    else:
        atomic_write_json(manifest_file, manifest, indent=2)

    catalog_file = resolve_catalog_file(catalog, out_dir)
    payloads = cell_payloads(spec, scale, seed, out_dir, cells,
                             checkpoint_every=checkpoint_every,
                             fault_plan=plan, max_attempts=max_attempts,
                             retry_backoff=retry_backoff,
                             catalog_file=catalog_file)

    # Cached cells cost one JSON read; only dispatch real work to workers.
    # A corrupt cached result quarantines here and the cell re-runs.
    pending, outcomes = [], {}
    for payload in payloads:
        cached = _load_cached_row(Path(payload["cell_dir"]) / "result.json")
        if cached is not None:
            outcomes[payload["index"]] = {"index": payload["index"],
                                          "row": cached, "status": "cached"}
        else:
            pending.append(payload)

    use_workers = len(pending) > 1 and workers > 1
    if timeout is not None and pending:
        use_workers = True  # the watchdog needs killable worker processes
    try:
        if use_workers:
            pool_outcomes = _run_worker_pool(
                pending, max(1, min(workers, len(pending))), timeout)
            outcomes.update(pool_outcomes)
        else:
            for payload in pending:
                outcome = _attempt_cell(payload)
                outcomes[payload["index"]] = outcome
                if strict and outcome.get("status") == "interrupted":
                    # A (simulated) crash: stop exactly where a real kill would.
                    raise CampaignInterrupted(outcome["error"])
    finally:
        # The catalogue mirrors whatever the artifact tree holds — including
        # the partial state of an interrupted or strict-failing campaign.
        _record_campaign_in_catalog(catalog_file, out_dir, spec, scale, seed,
                                    cells, plan, outcomes)
    if strict:
        _raise_on_failures(outcomes)

    ordered = [outcomes[index] for index in range(len(cells))]
    rows = [outcome.get("row") for outcome in ordered]
    cell_summaries = []
    for index in range(len(cells)):
        summary = {"index": index, "params": cells[index],
                   "slug": cell_slug(index, cells[index]),
                   "status": ordered[index]["status"]}
        if ordered[index]["status"] not in ("completed", "cached"):
            summary["error"] = ordered[index].get("error")
            summary["attempt"] = ordered[index].get("attempt")
        cell_summaries.append(summary)
    if all(row is not None for row in rows):
        atomic_write_json(out_dir / "results.json", {
            "experiment": spec.experiment_id, "scale": scale.name, "seed": seed,
            "rows": rows,
        }, indent=2)
    return CampaignResult(spec=spec, scale=scale, seed=seed, out_dir=out_dir,
                          rows=rows, cells=cell_summaries, workers=workers,
                          strict=strict)


def _raise_on_failures(outcomes: Dict[int, Dict]) -> None:
    """Aggregate every non-completed cell into one strict-mode error."""
    interrupted = sorted((o for o in outcomes.values()
                          if o.get("status") == "interrupted"),
                         key=lambda o: o["index"])
    failed = sorted((o for o in outcomes.values()
                     if o.get("status") in ("failed", "timeout")),
                    key=lambda o: o["index"])
    if interrupted:
        lines = [f"cell {o['index']}: {o['error']}" for o in interrupted]
        lines += [f"cell {o['index']} ({o['status']}): {o['error']}" for o in failed]
        raise CampaignInterrupted(
            f"{len(interrupted)} cell(s) interrupted"
            + (f", {len(failed)} failed" if failed else "") + ":\n"
            + "\n".join(lines))
    if failed:
        details = "\n\n".join(
            f"cell {o['index']} ({o['status']}, attempt {o.get('attempt')}): "
            + (o.get("traceback") or o["error"]) for o in failed)
        raise RuntimeError(f"{len(failed)} campaign cell(s) failed:\n{details}")


# --------------------------------------------------------------- inspection
def campaign_status(out_dir: os.PathLike) -> Optional[Dict[str, Any]]:
    """Status summary for one campaign directory (None if not a campaign)."""
    out_dir = Path(out_dir)
    manifest_file = out_dir / "manifest.json"
    if not manifest_file.exists():
        return None
    try:
        manifest = load_json(manifest_file)
    except CorruptArtifactError:
        return None
    if manifest.get("format") != MANIFEST_FORMAT:
        return None
    cells = manifest.get("cells", [])
    done = in_flight = failed = attempts = 0
    cell_attempts: Dict[int, int] = {}
    for cell in cells:
        cell_dir = out_dir / "cells" / cell["slug"]
        prior = _prior_attempts(cell_dir)
        if prior:
            cell_attempts[cell["index"]] = prior
            attempts += prior
        if (cell_dir / "result.json").exists():
            done += 1
        elif (cell_dir / "error.json").exists():
            failed += 1
        elif any(cell_dir.glob("*.checkpoint.pkl")) or any(cell_dir.glob("*.result.json")):
            # An in-flight checkpoint, or memoized finished trainings of a
            # multi-run cell interrupted between trainings.
            in_flight += 1
    quarantined = len(quarantined_files(out_dir))
    return {
        "campaign": out_dir.name,
        "out_dir": str(out_dir),
        "experiment": manifest["experiment"]["experiment_id"],
        "scale": manifest["scale"]["name"],
        "seed": manifest["seed"],
        "cells": len(cells),
        "completed": done,
        "in_flight": in_flight,
        "failed": failed,
        "attempts": attempts,
        "cell_attempts": cell_attempts,
        "quarantined": quarantined,
        "status": ("complete" if done == len(cells)
                   else "failed" if failed
                   else "in-flight" if (done or in_flight) else "pending"),
    }


def list_campaigns(root: os.PathLike = "runs") -> List[Dict[str, Any]]:
    """Status of every campaign artifact under ``root``."""
    root = Path(root)
    if not root.exists():
        return []
    statuses = []
    for child in sorted(root.iterdir()):
        status = campaign_status(child)
        if status is not None:
            statuses.append(status)
    return statuses


def load_rows(experiment: ExperimentLike, scale: Optional[ScaleLike] = None,
              seed: Optional[int] = None, root: os.PathLike = "runs",
              out_dir: Optional[os.PathLike] = None) -> List[Dict]:
    """Rows of a finished (or partially finished) campaign artifact."""
    spec = resolve_experiment(experiment)
    scale = resolve_scale(scale if scale is not None else spec.default_scale)
    seed = spec.base_seed if seed is None else int(seed)
    out_dir = (Path(out_dir) if out_dir is not None
               else Path(root) / campaign_id(spec.experiment_id, scale, seed))
    manifest_file = out_dir / "manifest.json"
    if not manifest_file.exists():
        raise FileNotFoundError(f"no campaign artifact at {out_dir}")
    manifest = load_json(manifest_file)
    rows = []
    for cell in manifest.get("cells", []):
        row = _load_cached_row(out_dir / "cells" / cell["slug"] / "result.json")
        if row is not None:
            rows.append(row)
    return rows
