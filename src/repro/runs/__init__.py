"""Experiment registry + campaign runner: the ``repro.run()`` API.

This package is the campaign-level sibling of :mod:`repro.scenarios`: where
the scenario registry makes *environments* first-class, addressable objects,
the experiment registry does the same for *training campaigns* — every table
and figure of the paper becomes a registered :class:`ExperimentSpec` whose
cells execute (serially or across a worker pool) with persistent, resumable
run artifacts::

    import repro

    repro.list_experiments()
    campaign = repro.run("table5", scale="smoke", workers=4)
    print(campaign.format_results())
    print(campaign.out_dir)            # runs/table5-smoke/...

or from the command line::

    python -m repro run table5 --scale smoke --workers 4
    python -m repro status
    python -m repro results table5 --scale smoke --format json
"""

from repro.runs.artifacts import (
    CorruptArtifactError,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_pickle,
    atomic_write_text,
    quarantined_files,
    stray_tmp_files,
)
from repro.runs.context import CampaignInterrupted, CellContext
from repro.runs.faults import (
    Fault,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    NetworkChaosPlan,
    NetworkFault,
    resolve_network_chaos_plan,
)
from repro.runs.registry import (
    ExperimentLike,
    get_experiment,
    is_experiment_registered,
    list_experiments,
    register_experiment,
    resolve_experiment,
    unregister_experiment,
)
from repro.runs.runner import (
    CampaignResult,
    campaign_id,
    campaign_status,
    list_campaigns,
    load_rows,
    run,
)
from repro.runs.spec import ExperimentSpec

# Register the built-in catalogue (all tables/figures of the paper).
import repro.runs.builtin  # noqa: E402,F401  (registration side effect)

__all__ = [
    "CampaignInterrupted",
    "CampaignResult",
    "CellContext",
    "CorruptArtifactError",
    "ExperimentLike",
    "ExperimentSpec",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "NetworkChaosPlan",
    "NetworkFault",
    "resolve_network_chaos_plan",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_pickle",
    "atomic_write_text",
    "campaign_id",
    "campaign_status",
    "get_experiment",
    "is_experiment_registered",
    "list_campaigns",
    "list_experiments",
    "load_rows",
    "quarantined_files",
    "register_experiment",
    "resolve_experiment",
    "run",
    "stray_tmp_files",
    "unregister_experiment",
]
