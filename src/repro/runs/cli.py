"""``python -m repro`` — the campaign command line.

Subcommands
-----------
``run``      run (or resume) an experiment campaign and print its rows
``list``     list registered experiments (``--scenarios`` for environments)
``status``   show completion state of every campaign artifact under a root
``results``  print the rows of an existing campaign artifact

Examples::

    python -m repro run table5 --scale smoke --workers 4
    python -m repro run table1 --scale smoke --format json
    python -m repro status --root runs
    python -m repro results table5 --scale smoke --format table
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.common import SCALES
from repro.rl.stats import dump_json
from repro.runs.context import CampaignInterrupted
from repro.runs.registry import get_experiment, list_experiments
from repro.runs.runner import list_campaigns, load_rows, run


def _add_scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=sorted(SCALES), default=None,
                        help="training budget preset (default: the experiment's own)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, inspect, and resume the paper's experiment campaigns.")
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="run (or resume) an experiment campaign",
        description="Run an experiment campaign; re-running on the same "
                    "artifact directory skips completed cells and resumes "
                    "in-flight training from checkpoints.")
    run_parser.add_argument("experiment", help="registered experiment id (see 'list')")
    _add_scale_argument(run_parser)
    run_parser.add_argument("--seed", type=int, default=None,
                            help="campaign seed (default: the experiment's base seed)")
    run_parser.add_argument("--workers", type=int, default=1,
                            help="worker processes for parallel cell execution")
    run_parser.add_argument("--out-dir", default=None,
                            help="explicit artifact directory (overrides --root)")
    run_parser.add_argument("--root", default="runs",
                            help="artifact root directory (default: runs)")
    run_parser.add_argument("--checkpoint-every", type=int, default=2,
                            help="save a resumable checkpoint every N PPO updates")
    run_parser.add_argument("--format", choices=("table", "json", "none"),
                            default="table", help="how to print the resulting rows")
    run_parser.add_argument("--lenient", action="store_true",
                            help="strict=False: return partial rows + per-cell "
                                 "error records instead of raising on failure")
    run_parser.add_argument("--max-attempts", type=int, default=1,
                            help="in-process retries per cell (deterministic "
                                 "exponential backoff between attempts)")
    run_parser.add_argument("--retry-backoff", type=float, default=0.25,
                            help="base backoff seconds (doubles per attempt)")
    run_parser.add_argument("--timeout", type=float, default=None,
                            help="per-cell wall-clock budget in seconds, "
                                 "enforced by a watchdog that kills hung workers")
    run_parser.add_argument("--fault-plan", default=None,
                            help="chaos injection: a FaultPlan JSON file path or "
                                 "inline JSON (also via REPRO_RUN_FAULT_PLAN)")

    list_parser = commands.add_parser("list", help="list registered experiments")
    list_parser.add_argument("--scenarios", action="store_true",
                             help="list registered environment scenarios instead")

    status_parser = commands.add_parser(
        "status", help="show completion state of campaign artifacts")
    status_parser.add_argument("--root", default="runs",
                               help="artifact root directory (default: runs)")

    results_parser = commands.add_parser(
        "results", help="print the rows of an existing campaign artifact")
    results_parser.add_argument("experiment", help="registered experiment id")
    _add_scale_argument(results_parser)
    results_parser.add_argument("--seed", type=int, default=None)
    results_parser.add_argument("--root", default="runs")
    results_parser.add_argument("--out-dir", default=None,
                                help="explicit artifact directory (overrides --root)")
    results_parser.add_argument("--format", choices=("table", "json"), default="table")
    return parser


def _command_run(args: argparse.Namespace) -> int:
    try:
        campaign = run(args.experiment, scale=args.scale, seed=args.seed,
                       workers=args.workers, out_dir=args.out_dir, root=args.root,
                       checkpoint_every=args.checkpoint_every,
                       strict=not args.lenient, max_attempts=args.max_attempts,
                       retry_backoff=args.retry_backoff, timeout=args.timeout,
                       fault_plan=args.fault_plan)
    except CampaignInterrupted as error:
        print(f"campaign interrupted: {error}", file=sys.stderr)
        print("re-run the same command to resume from the checkpoint",
              file=sys.stderr)
        return 3
    except RuntimeError as error:
        print(f"campaign failed: {error}", file=sys.stderr)
        print("re-run to re-attempt the failed cells, or pass --lenient "
              "for partial rows", file=sys.stderr)
        return 1
    if args.format == "table":
        print(campaign.format_results())
    elif args.format == "json":
        print(dump_json(campaign.to_dict(), indent=2))
    if args.format != "json":
        resumed = f" ({campaign.resumed} cells reused)" if campaign.resumed else ""
        print(f"\n{campaign.completed}/{len(campaign.cells)} cells complete{resumed}; "
              f"artifacts in {campaign.out_dir}")
        for cell in campaign.errors:
            print(f"cell {cell['index']} ({cell['slug']}): {cell['status']} — "
                  f"{cell.get('error')}", file=sys.stderr)
    return 0 if not campaign.errors else 4


def _command_list(args: argparse.Namespace) -> int:
    if args.scenarios:
        import repro

        for scenario_id in repro.list_scenarios():
            print(scenario_id)
        return 0
    for experiment_id in list_experiments():
        spec = get_experiment(experiment_id)
        cells = f"{len(spec.grid)} cells" if spec.grid else "scale-dependent cells"
        print(f"{experiment_id:<10} {cells:<22} {spec.description}")
    return 0


def _command_status(args: argparse.Namespace) -> int:
    campaigns = list_campaigns(args.root)
    if not campaigns:
        print(f"no campaign artifacts under {args.root}/")
        return 0
    header = (f"{'campaign':<28} {'experiment':<14} {'scale':<6} {'cells':<9} "
              f"{'failed':<7} {'quarantined':<12} status")
    print(header)
    print("-" * len(header))
    for status in campaigns:
        cells = f"{status['completed']}/{status['cells']}"
        print(f"{status['campaign']:<28} {status['experiment']:<14} "
              f"{status['scale']:<6} {cells:<9} {status['failed']:<7} "
              f"{status['quarantined']:<12} {status['status']}")
    return 0


def _command_results(args: argparse.Namespace) -> int:
    spec = get_experiment(args.experiment)
    try:
        rows = load_rows(spec, scale=args.scale, seed=args.seed,
                         root=args.root, out_dir=args.out_dir)
    except FileNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 1
    if args.format == "json":
        print(dump_json(rows, indent=2))
    else:
        print(spec.format_rows(rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {"run": _command_run, "list": _command_list,
                "status": _command_status, "results": _command_results}
    return handlers[args.command](args)
