"""``python -m repro`` — the campaign command line.

Subcommands
-----------
``run``      run (or resume) an experiment campaign and print its rows
``list``     list registered experiments (``--scenarios`` for environments)
``status``   show completion state of campaigns (catalogue-backed when a
             ``catalog.sqlite`` exists under the root; tree scan otherwise)
``results``  print the rows of an existing campaign artifact
``submit``   register a campaign in the catalogue + enqueue its cells
``work``     drain the job queue as one cooperative worker (``--server`` for
             remote HTTP draining with no catalogue file access)
``serve``    the campaign service HTTP API (submit/status/stream/query/leases)
``proxy``    a deterministic TCP chaos proxy in front of ``repro serve``
``query``    cross-run aggregation over the catalogue (cells or bench rows)
``store``    catalogue maintenance (``store ingest`` backfills legacy trees)
``top``      live terminal dashboard: campaign progress, worker roster,
             telemetry ticker (``--once`` for a single CI-friendly frame)

Examples::

    python -m repro run table5 --scale smoke --workers 4
    python -m repro status --root runs --watch 2
    python -m repro top --server http://127.0.0.1:8642 --once
    python -m repro submit defense_matrix --scale smoke --root runs
    python -m repro work --root runs &  python -m repro work --root runs
    python -m repro serve --root runs --port 8642
    python -m repro query accuracy --by defense --format table
    python -m repro store ingest --root runs --bench BENCH_throughput.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments.common import SCALES
from repro.rl.stats import dump_json
from repro.runs.context import CampaignInterrupted
from repro.runs.registry import get_experiment, list_experiments
from repro.runs.runner import list_campaigns, load_rows, run


def _add_scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=sorted(SCALES), default=None,
                        help="training budget preset (default: the experiment's own)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, inspect, and resume the paper's experiment campaigns.")
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="run (or resume) an experiment campaign",
        description="Run an experiment campaign; re-running on the same "
                    "artifact directory skips completed cells and resumes "
                    "in-flight training from checkpoints.")
    run_parser.add_argument("experiment", help="registered experiment id (see 'list')")
    _add_scale_argument(run_parser)
    run_parser.add_argument("--seed", type=int, default=None,
                            help="campaign seed (default: the experiment's base seed)")
    run_parser.add_argument("--workers", type=int, default=1,
                            help="worker processes for parallel cell execution")
    run_parser.add_argument("--out-dir", default=None,
                            help="explicit artifact directory (overrides --root)")
    run_parser.add_argument("--root", default="runs",
                            help="artifact root directory (default: runs)")
    run_parser.add_argument("--checkpoint-every", type=int, default=2,
                            help="save a resumable checkpoint every N PPO updates")
    run_parser.add_argument("--format", choices=("table", "json", "none"),
                            default="table", help="how to print the resulting rows")
    run_parser.add_argument("--lenient", action="store_true",
                            help="strict=False: return partial rows + per-cell "
                                 "error records instead of raising on failure")
    run_parser.add_argument("--max-attempts", type=int, default=1,
                            help="in-process retries per cell (deterministic "
                                 "exponential backoff between attempts)")
    run_parser.add_argument("--retry-backoff", type=float, default=0.25,
                            help="base backoff seconds (doubles per attempt)")
    run_parser.add_argument("--timeout", type=float, default=None,
                            help="per-cell wall-clock budget in seconds, "
                                 "enforced by a watchdog that kills hung workers")
    run_parser.add_argument("--fault-plan", default=None,
                            help="chaos injection: a FaultPlan JSON file path or "
                                 "inline JSON (also via REPRO_RUN_FAULT_PLAN)")

    list_parser = commands.add_parser("list", help="list registered experiments")
    list_parser.add_argument("--scenarios", action="store_true",
                             help="list registered environment scenarios instead")

    status_parser = commands.add_parser(
        "status", help="show completion state of campaign artifacts")
    status_parser.add_argument("--root", default="runs",
                               help="artifact root directory (default: runs)")
    status_parser.add_argument("--no-catalog", action="store_true",
                               help="force the artifact-tree scan even when a "
                                    "catalog.sqlite exists under the root")
    status_parser.add_argument("--watch", type=float, default=None,
                               metavar="SECONDS",
                               help="reprint the status every N seconds "
                                    "until interrupted (plain output, no "
                                    "screen control)")

    submit_parser = commands.add_parser(
        "submit", help="register a campaign in the catalogue and enqueue "
                       "its cells for 'repro work' processes")
    submit_parser.add_argument("experiment", help="registered experiment id")
    _add_scale_argument(submit_parser)
    submit_parser.add_argument("--seed", type=int, default=None)
    submit_parser.add_argument("--root", default="runs")
    submit_parser.add_argument("--out-dir", default=None,
                               help="explicit artifact directory (overrides --root)")
    submit_parser.add_argument("--checkpoint-every", type=int, default=2)
    submit_parser.add_argument("--max-attempts", type=int, default=1,
                               help="in-process retries per cell attempt")
    submit_parser.add_argument("--retry-backoff", type=float, default=0.25)
    submit_parser.add_argument("--fault-plan", default=None,
                               help="chaos injection: FaultPlan JSON file or inline JSON")

    work_parser = commands.add_parser(
        "work", help="drain the job queue as one cooperative worker")
    work_parser.add_argument("--root", default="runs")
    work_parser.add_argument("--run-id", default=None,
                             help="drain only this campaign (default: any)")
    work_parser.add_argument("--worker-id", default=None,
                             help="stable worker identity (default: host-pid)")
    work_parser.add_argument("--lease-ttl", type=int, default=60,
                             help="lease seconds before a silent worker's cell "
                                  "is reclaimable (heartbeats extend it)")
    work_parser.add_argument("--max-job-attempts", type=int, default=3,
                             help="queue-level claims per cell before it is "
                                  "marked failed")
    work_parser.add_argument("--poll", type=float, default=0.5,
                             help="seconds between claims while others hold leases")
    work_parser.add_argument("--watch", action="store_true",
                             help="keep polling for new submissions instead of "
                                  "exiting when the queue drains")
    work_parser.add_argument("--max-cells", type=int, default=None,
                             help="stop after executing this many cells")
    work_parser.add_argument("--catalog", default=None,
                             help="explicit catalogue file (default: "
                                  "<root>/catalog.sqlite)")
    work_parser.add_argument("--server", default=None,
                             help="drain over HTTP from this 'repro serve' "
                                  "URL instead of the local catalogue "
                                  "(artifacts land under --root)")
    work_parser.add_argument("--client-timeout", type=float, default=30.0,
                             help="per-request deadline in seconds "
                                  "(remote mode)")
    work_parser.add_argument("--client-retries", type=int, default=6,
                             help="retry budget per request after the first "
                                  "attempt (remote mode)")
    work_parser.add_argument("--client-backoff", type=float, default=0.25,
                             help="base retry backoff seconds, doubling per "
                                  "retry up to 8s (remote mode)")
    work_parser.add_argument("--net-chaos", default=None,
                             help="deterministic network fault injection: a "
                                  "NetworkChaosPlan JSON file or inline JSON "
                                  "(also via REPRO_NET_CHAOS_PLAN; remote "
                                  "mode only)")

    serve_parser = commands.add_parser(
        "serve", help="run the campaign service HTTP API")
    serve_parser.add_argument("--root", default="runs")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8642,
                              help="TCP port (0 picks a free one)")

    proxy_parser = commands.add_parser(
        "proxy", help="run a deterministic TCP chaos proxy in front of "
                      "'repro serve'")
    proxy_parser.add_argument("--upstream", required=True,
                              help="upstream server as host:port")
    proxy_parser.add_argument("--host", default="127.0.0.1")
    proxy_parser.add_argument("--port", type=int, default=0,
                              help="listen port (0 picks a free one)")
    proxy_parser.add_argument("--plan", default=None,
                              help="NetworkChaosPlan JSON file or inline JSON "
                                   "(also via REPRO_NET_CHAOS_PLAN)")

    query_parser = commands.add_parser(
        "query", help="aggregate a metric across all catalogued runs")
    query_parser.add_argument("metric", nargs="?", default=None,
                              help="metric key to aggregate (omit with --list-keys)")
    query_parser.add_argument("--by", default=None,
                              help="group key: 'run' (default), any cell "
                                   "param/row key, or a bench dimension")
    query_parser.add_argument("--experiment", default=None,
                              help="restrict to one experiment id")
    query_parser.add_argument("--scale", default=None,
                              help="restrict to one scale name")
    query_parser.add_argument("--bench", action="store_true",
                              help="aggregate the bench table instead of cell metrics")
    query_parser.add_argument("--benchmark", default=None,
                              help="restrict bench rows to one benchmark")
    query_parser.add_argument("--scenario", default=None,
                              help="restrict bench rows to one scenario")
    query_parser.add_argument("--list-keys", action="store_true",
                              help="list available metric/bench keys and exit")
    query_parser.add_argument("--format", choices=("table", "json", "csv"),
                              default="table")
    query_parser.add_argument("--root", default="runs")
    query_parser.add_argument("--catalog", default=None,
                              help="explicit catalogue file (default: "
                                   "<root>/catalog.sqlite)")

    store_parser = commands.add_parser(
        "store", help="catalogue maintenance")
    store_commands = store_parser.add_subparsers(dest="store_command",
                                                 required=True)
    ingest_parser = store_commands.add_parser(
        "ingest", help="backfill the catalogue from legacy runs/ trees "
                       "and BENCH_*.json files")
    ingest_parser.add_argument("--root", default="runs",
                               help="runs tree to ingest (default: runs)")
    ingest_parser.add_argument("--bench", action="append", default=[],
                               help="BENCH_*.json trajectory file to ingest "
                                    "(repeatable; re-ingest replaces its rows)")
    ingest_parser.add_argument("--catalog", default=None,
                               help="explicit catalogue file (default: "
                                    "<root>/catalog.sqlite)")

    top_parser = commands.add_parser(
        "top", help="live dashboard: campaign progress, worker roster, "
                    "telemetry ticker")
    top_parser.add_argument("--root", default="runs",
                            help="runs tree whose catalogue to read "
                                 "(ignored with --server)")
    top_parser.add_argument("--catalog", default=None,
                            help="explicit catalogue file (default: "
                                 "<root>/catalog.sqlite)")
    top_parser.add_argument("--server", default=None,
                            help="read from this 'repro serve' URL instead "
                                 "of a local catalogue")
    top_parser.add_argument("--interval", type=float, default=2.0,
                            help="seconds between refreshes (default: 2)")
    top_parser.add_argument("--once", action="store_true",
                            help="print one frame and exit (CI / pipes)")
    top_parser.add_argument("--client-timeout", type=float, default=10.0,
                            help="per-request deadline in seconds "
                                 "(--server mode)")

    results_parser = commands.add_parser(
        "results", help="print the rows of an existing campaign artifact")
    results_parser.add_argument("experiment", help="registered experiment id")
    _add_scale_argument(results_parser)
    results_parser.add_argument("--seed", type=int, default=None)
    results_parser.add_argument("--root", default="runs")
    results_parser.add_argument("--out-dir", default=None,
                                help="explicit artifact directory (overrides --root)")
    results_parser.add_argument("--format", choices=("table", "json"), default="table")
    return parser


def _command_run(args: argparse.Namespace) -> int:
    try:
        campaign = run(args.experiment, scale=args.scale, seed=args.seed,
                       workers=args.workers, out_dir=args.out_dir, root=args.root,
                       checkpoint_every=args.checkpoint_every,
                       strict=not args.lenient, max_attempts=args.max_attempts,
                       retry_backoff=args.retry_backoff, timeout=args.timeout,
                       fault_plan=args.fault_plan)
    except CampaignInterrupted as error:
        print(f"campaign interrupted: {error}", file=sys.stderr)
        print("re-run the same command to resume from the checkpoint",
              file=sys.stderr)
        return 3
    except RuntimeError as error:
        print(f"campaign failed: {error}", file=sys.stderr)
        print("re-run to re-attempt the failed cells, or pass --lenient "
              "for partial rows", file=sys.stderr)
        return 1
    if args.format == "table":
        print(campaign.format_results())
    elif args.format == "json":
        print(dump_json(campaign.to_dict(), indent=2))
    if args.format != "json":
        resumed = f" ({campaign.resumed} cells reused)" if campaign.resumed else ""
        print(f"\n{campaign.completed}/{len(campaign.cells)} cells complete{resumed}; "
              f"artifacts in {campaign.out_dir}")
        for cell in campaign.errors:
            print(f"cell {cell['index']} ({cell['slug']}): {cell['status']} — "
                  f"{cell.get('error')}", file=sys.stderr)
    return 0 if not campaign.errors else 4


def _command_list(args: argparse.Namespace) -> int:
    if args.scenarios:
        import repro

        for scenario_id in repro.list_scenarios():
            print(scenario_id)
        return 0
    for experiment_id in list_experiments():
        spec = get_experiment(experiment_id)
        cells = f"{len(spec.grid)} cells" if spec.grid else "scale-dependent cells"
        print(f"{experiment_id:<10} {cells:<22} {spec.description}")
    return 0


def _command_status(args: argparse.Namespace) -> int:
    if args.watch is None:
        return _status_once(args)
    # --watch N: plain reprint loop — no screen control, so the output stays
    # pipe- and scrollback-friendly (use 'repro top' for the live dashboard).
    import time

    interval = max(0.1, float(args.watch))
    try:
        while True:
            code = _status_once(args)
            if code != 0:
                return code
            print(f"-- refreshing every {interval:g}s (Ctrl-C to stop) --",
                  flush=True)
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def _status_once(args: argparse.Namespace) -> int:
    from repro.store.connection import catalog_path

    catalog_file = catalog_path(Path(args.root))
    if catalog_file.exists() and not args.no_catalog:
        return _catalog_status(catalog_file)
    campaigns = list_campaigns(args.root)
    if not campaigns:
        print(f"no campaign artifacts under {args.root}/")
        return 0
    header = (f"{'campaign':<28} {'experiment':<14} {'scale':<6} {'cells':<9} "
              f"{'failed':<7} {'attempts':<9} {'quarantined':<12} status")
    print(header)
    print("-" * len(header))
    for status in campaigns:
        cells = f"{status['completed']}/{status['cells']}"
        print(f"{status['campaign']:<28} {status['experiment']:<14} "
              f"{status['scale']:<6} {cells:<9} {status['failed']:<7} "
              f"{status['attempts']:<9} {status['quarantined']:<12} "
              f"{status['status']}")
    return 0


def _catalog_status(catalog_file: Path) -> int:
    """``repro status`` from the catalogue (runs + per-cell attempt counts)."""
    from repro.store.catalog import Catalog

    from repro.runs.artifacts import quarantined_files

    with Catalog(catalog_file) as catalog:
        runs = catalog.list_runs()
        draining_workers = catalog.active_workers_by_run()
    if not runs:
        print(f"catalogue {catalog_file} holds no runs yet")
        return 0
    # The workers column appears only while someone is actually draining —
    # a finished catalogue prints the same table it always did.
    show_workers = bool(draining_workers)
    workers_header = f"{'workers':<8} " if show_workers else ""
    header = (f"{'campaign':<28} {'experiment':<14} {'scale':<6} {'cells':<9} "
              f"{'failed':<7} {'attempts':<9} {workers_header}"
              f"{'quarantined':<12} status")
    print(header)
    print("-" * len(header))
    for record in runs:
        cells = f"{record['completed'] or 0}/{record['cells']}"
        run_dir = catalog_file.parent / record["run_id"]
        quarantined = len(quarantined_files(run_dir)) if run_dir.is_dir() else 0
        workers_cell = (f"{draining_workers.get(record['run_id'], 0):<8} "
                        if show_workers else "")
        print(f"{record['run_id']:<28} {record['experiment']:<14} "
              f"{record['scale']:<6} {cells:<9} {record['failed'] or 0:<7} "
              f"{record['attempts']:<9} {workers_cell}{quarantined:<12} "
              f"{record['status']}")
    print(f"\n(catalogue: {catalog_file}; pass --no-catalog for the tree scan)")
    return 0


def _command_results(args: argparse.Namespace) -> int:
    spec = get_experiment(args.experiment)
    try:
        rows = load_rows(spec, scale=args.scale, seed=args.seed,
                         root=args.root, out_dir=args.out_dir)
    except FileNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 1
    if args.format == "json":
        print(dump_json(rows, indent=2))
    else:
        print(spec.format_rows(rows))
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    from repro.store.worker import submit_campaign

    try:
        submission = submit_campaign(
            args.experiment, scale=args.scale, seed=args.seed, root=args.root,
            out_dir=args.out_dir, checkpoint_every=args.checkpoint_every,
            max_attempts=args.max_attempts, retry_backoff=args.retry_backoff,
            fault_plan=args.fault_plan)
    except (KeyError, ValueError) as error:
        print(f"submit failed: {error}", file=sys.stderr)
        return 1
    print(f"submitted {submission.run_id}: {submission.enqueued} job(s) "
          f"enqueued over {submission.cells} cell(s); artifacts in "
          f"{submission.out_dir}")
    print("drain with: python -m repro work --root "
          f"{Path(submission.out_dir).parent}")
    return 0


def _command_work(args: argparse.Namespace) -> int:
    from repro.store.client import RetryableTransportError, StoreClientError
    from repro.store.worker import work

    try:
        summary = work(root=args.root, run_id=args.run_id,
                       worker_id=args.worker_id, lease_ttl=args.lease_ttl,
                       max_job_attempts=args.max_job_attempts,
                       poll_seconds=args.poll, watch=args.watch,
                       max_cells=args.max_cells, catalog_file=args.catalog,
                       server=args.server,
                       client_timeout=args.client_timeout,
                       client_retries=args.client_retries,
                       client_backoff=args.client_backoff,
                       chaos_plan=args.net_chaos)
    except RetryableTransportError as error:
        print(f"worker gave up: {error}", file=sys.stderr)
        return 5
    except StoreClientError as error:
        print(f"worker protocol error: {error}", file=sys.stderr)
        return 2
    print(dump_json(summary.to_dict(), indent=2))
    if summary.interrupted:
        print("worker interrupted by signal; lease released", file=sys.stderr)
        return 3
    return 0 if summary.failed == 0 else 4


def _command_serve(args: argparse.Namespace) -> int:
    from repro.store.server import serve

    serve(Path(args.root), host=args.host, port=args.port)
    return 0


def _command_proxy(args: argparse.Namespace) -> int:
    from repro.runs.faults import NetworkChaosPlan, resolve_network_chaos_plan
    from repro.store.chaos import run_proxy

    host, _, port = args.upstream.rpartition(":")
    if not host or not port.isdigit():
        print(f"--upstream must be host:port, got {args.upstream!r}",
              file=sys.stderr)
        return 2
    plan = resolve_network_chaos_plan(args.plan)
    if plan is None:
        plan = NetworkChaosPlan(faults=())
    run_proxy((host, int(port)), plan, host=args.host, port=args.port)
    return 0


def _command_top(args: argparse.Namespace) -> int:
    from repro.telemetry.dashboard import LocalSource, ServerSource, run_dashboard

    if args.server is not None:
        from repro.store.client import StoreClient

        client = StoreClient(args.server, worker_id="repro-top",
                             timeout=args.client_timeout, max_retries=2)
        source = ServerSource(client)
    else:
        from repro.store.connection import catalog_path

        catalog_file = (Path(args.catalog) if args.catalog is not None
                        else catalog_path(Path(args.root)))
        source = LocalSource(catalog_file)
    return run_dashboard(source, interval=args.interval, once=args.once)


def _command_query(args: argparse.Namespace) -> int:
    from repro.store.catalog import Catalog
    from repro.store.connection import catalog_path
    from repro.store.query import (
        aggregate_bench,
        aggregate_metric,
        format_rows,
        list_bench_keys,
        list_metric_keys,
    )

    catalog_file = (Path(args.catalog) if args.catalog is not None
                    else catalog_path(Path(args.root)))
    if not catalog_file.exists():
        print(f"no catalogue at {catalog_file}; run a campaign or "
              "'repro store ingest' first", file=sys.stderr)
        return 1
    with Catalog(catalog_file) as catalog:
        if args.list_keys:
            keys = (list_bench_keys(catalog) if args.bench
                    else list_metric_keys(catalog))
            print(format_rows(keys, args.format))
            return 0
        if args.metric is None:
            print("a metric is required (or pass --list-keys)", file=sys.stderr)
            return 2
        try:
            if args.bench:
                rows = aggregate_bench(catalog, args.metric,
                                       by=args.by or "num_envs",
                                       benchmark=args.benchmark,
                                       scenario=args.scenario)
            else:
                rows = aggregate_metric(catalog, args.metric,
                                        by=args.by or "run",
                                        experiment=args.experiment,
                                        scale=args.scale)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
    title = f"{args.metric} by {args.by or ('num_envs' if args.bench else 'run')}"
    print(format_rows(rows, args.format, title=title))
    return 0


def _command_store(args: argparse.Namespace) -> int:
    from repro.store.ingest import ingest

    summary = ingest(root=args.root, bench_files=args.bench,
                     catalog_file=args.catalog)
    print(f"ingested {summary['runs']} run(s), {summary['cells']} cell "
          f"record(s), {summary['bench_rows']} bench row(s) into "
          f"{summary['catalog']}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {"run": _command_run, "list": _command_list,
                "status": _command_status, "results": _command_results,
                "submit": _command_submit, "work": _command_work,
                "serve": _command_serve, "proxy": _command_proxy,
                "query": _command_query, "store": _command_store,
                "top": _command_top}
    return handlers[args.command](args)
