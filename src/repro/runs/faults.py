"""Deterministic chaos injection for campaign runs.

A :class:`FaultPlan` is a frozen, JSON-round-trippable description of the
faults to inject into one campaign — the generalization of the old
``REPRO_RUN_INTERRUPT_AFTER_UPDATES`` single-kill hook into a real harness.
Four fault kinds are supported:

``kill``
    Raise :class:`InjectedFault` (a :class:`CampaignInterrupted`) right after
    the checkpoint at ``at_update`` is written — the moral equivalent of
    ``kill -9`` at a checkpoint boundary — or right after a named artifact
    kind is written when ``at_update`` is None.
``torn-write``
    Truncate the just-written artifact to a deterministic prefix (a crash
    mid-``write``), then kill.  The stale checksum sidecar survives, so the
    next load detects the tear and quarantines it.
``bit-flip``
    Flip one deterministic bit of the just-written artifact (silent media
    corruption), then kill by default so the corruption is observed on
    resume.
``stall``
    Sleep ``delay_seconds`` at cell start — long enough to trip the
    runner's per-cell watchdog timeout, which kills and reclaims the hung
    worker.

Every fault names the cell it targets (``cell=None`` matches any cell, as
the legacy interrupt hook did) and fires **once** by default: the injector
records fired faults under ``<out_dir>/faults/`` so a resumed campaign does
not re-inject them — which is exactly what makes "run under a fault plan,
then resume to completion" deterministic.  Plans travel three ways:
``repro.run(fault_plan=...)``, the ``REPRO_RUN_FAULT_PLAN`` environment
variable (inline JSON or a file path), and ``python -m repro run
--fault-plan``.

Network chaos
-------------
The multi-host campaign drain (``repro work --server``) gets its own plan
type: a :class:`NetworkChaosPlan` describes the failures the *transport*
injects, by request index rather than by artifact, with kinds

``reset``
    Connection reset before the request is delivered — the server never
    sees it (always safe to retry).
``http-500``
    A synthetic 5xx response without touching the server (retryable).
``stall``
    Delay the request ``delay_seconds`` — a slow network/server; against
    the TCP proxy this trips the client's per-request deadline.
``drop-response``
    Deliver the request, then lose the response — the dangerous half-open
    case: the mutation *was* applied, the client must retry with the same
    idempotency key, and the server must replay rather than re-apply.
``duplicate``
    Deliver the same request twice — the network-duplication case the
    idempotency-key dedup must absorb.

Two enforcement points consume these plans deterministically:
:class:`repro.store.client.ChaosTransport` (in-process, wraps the
``StoreClient`` transport) and :class:`repro.store.chaos.ChaosProxy` (a real
TCP proxy for subprocess/CI drains).  Each fault names the request index it
fires at, counted per fault over the requests matching its ``op`` filter,
so a given plan always perturbs the same protocol steps.  Plans travel as
``work(chaos_plan=...)``, the ``REPRO_NET_CHAOS_PLAN`` environment variable
(inline JSON or a file path), and ``python -m repro work --net-chaos`` /
``python -m repro proxy --plan``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.runs.artifacts import atomic_write_json
from repro.runs.context import CampaignInterrupted

#: Environment variable carrying a fault plan (inline JSON or a file path).
FAULT_PLAN_ENV_VAR = "REPRO_RUN_FAULT_PLAN"

#: Environment variable carrying a network chaos plan (JSON or file path).
NET_CHAOS_ENV_VAR = "REPRO_NET_CHAOS_PLAN"

FAULT_KINDS = ("kill", "torn-write", "bit-flip", "stall")

#: Transport-level fault kinds injected by the network chaos layer.
NETWORK_FAULT_KINDS = ("reset", "http-500", "stall", "drop-response",
                       "duplicate")

#: Artifact kinds a fault can target, as the runner/context report them.
ARTIFACT_KINDS = ("checkpoint", "result", "training-result", "history",
                  "extraction", "policy", "manifest", "results")


class InjectedFault(CampaignInterrupted):
    """An injected crash: handled exactly like a real mid-campaign kill."""


@dataclass(frozen=True)
class Fault:
    """One injected fault.

    Fields
    ------
    kind:
        ``"kill"`` / ``"torn-write"`` / ``"bit-flip"`` / ``"stall"``.
    cell:
        Target cell index; None matches every cell.
    artifact:
        Artifact kind the fault targets (see :data:`ARTIFACT_KINDS`).
    at_update:
        For ``artifact="checkpoint"``: the PPO update whose checkpoint
        boundary triggers the fault (a save is forced there if the regular
        cadence would skip it).  None means "on the next write of
        ``artifact``".
    delay_seconds:
        ``stall`` only: how long the cell hangs.
    then_kill:
        For ``torn-write``/``bit-flip``: whether the corruption is followed
        by a kill (a crash mid-write) or stays silent until the next load.
    once:
        Fire a single time across the campaign's whole life (recorded in the
        artifact tree); False re-fires on every match, which is how the
        legacy ``interrupt_after_updates`` behaved.
    """

    kind: str
    cell: Optional[int] = None
    artifact: str = "checkpoint"
    at_update: Optional[int] = None
    delay_seconds: float = 0.0
    then_kill: bool = True
    once: bool = True

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")
        if self.artifact not in ARTIFACT_KINDS:
            raise ValueError(
                f"unknown artifact kind {self.artifact!r}; choose from {ARTIFACT_KINDS}")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Fault":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown Fault fields: {sorted(unknown)}")
        return cls(**dict(data))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable set of faults to inject into one campaign."""

    faults: Tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(
            fault if isinstance(fault, Fault) else Fault.from_dict(fault)
            for fault in self.faults))

    def to_dict(self) -> Dict[str, Any]:
        return {"faults": [fault.to_dict() for fault in self.faults],
                "seed": self.seed}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        known = {"faults", "seed"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(faults=tuple(Fault.from_dict(f) for f in data.get("faults", ())),
                   seed=int(data.get("seed", 0)))

    def to_json(self, **json_kwargs: Any) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, **json_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def interrupt_after_updates(cls, updates: int) -> "FaultPlan":
        """The legacy hook: every cell is killed at its ``updates`` boundary."""
        return cls(faults=(Fault(kind="kill", cell=None, artifact="checkpoint",
                                 at_update=int(updates), once=False),))


@dataclass(frozen=True)
class NetworkFault:
    """One transport-level fault.

    Fields
    ------
    kind:
        One of :data:`NETWORK_FAULT_KINDS`.
    at_request:
        0-based index of the request this fault fires at, counted **per
        fault** over the requests matching its ``op`` filter — so two
        faults with the same filter and different indices hit different
        requests deterministically.
    op:
        Substring matched against the request path (``"complete"`` targets
        ``POST /api/jobs/complete``); None matches every request.
    delay_seconds:
        ``stall`` only: how long the request is delayed.
    """

    kind: str
    at_request: int = 0
    op: Optional[str] = None
    delay_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in NETWORK_FAULT_KINDS:
            raise ValueError(f"unknown network fault kind {self.kind!r};"
                             f" choose from {NETWORK_FAULT_KINDS}")
        if self.at_request < 0:
            raise ValueError("at_request must be a non-negative request index")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NetworkFault":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown NetworkFault fields: {sorted(unknown)}")
        return cls(**dict(data))


@dataclass(frozen=True)
class NetworkChaosPlan:
    """A serializable set of transport faults for one campaign drain."""

    faults: Tuple[NetworkFault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(
            fault if isinstance(fault, NetworkFault)
            else NetworkFault.from_dict(fault) for fault in self.faults))

    def to_dict(self) -> Dict[str, Any]:
        return {"faults": [fault.to_dict() for fault in self.faults],
                "seed": self.seed}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NetworkChaosPlan":
        known = {"faults", "seed"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown NetworkChaosPlan fields: {sorted(unknown)}")
        return cls(faults=tuple(NetworkFault.from_dict(f)
                                for f in data.get("faults", ())),
                   seed=int(data.get("seed", 0)))

    def to_json(self, **json_kwargs: Any) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, **json_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "NetworkChaosPlan":
        return cls.from_dict(json.loads(text))


def resolve_network_chaos_plan(
        chaos_plan: Any = None,
        environ: Optional[Mapping[str, str]] = None) -> Optional[NetworkChaosPlan]:
    """Normalize the chaos-plan channels: argument, then env var, then None.

    Accepts a :class:`NetworkChaosPlan`, a mapping, inline JSON text, or a
    path to a JSON file — mirroring :func:`resolve_fault_plan`.
    """
    environ = os.environ if environ is None else environ
    if chaos_plan is None and environ.get(NET_CHAOS_ENV_VAR):
        chaos_plan = environ[NET_CHAOS_ENV_VAR]
    if chaos_plan is None:
        return None
    if isinstance(chaos_plan, NetworkChaosPlan):
        return chaos_plan
    if isinstance(chaos_plan, Mapping):
        return NetworkChaosPlan.from_dict(chaos_plan)
    text = str(chaos_plan).strip()
    if not text.startswith("{"):
        text = Path(text).read_text()
    return NetworkChaosPlan.from_json(text)


def resolve_fault_plan(fault_plan: Any = None,
                       interrupt_after_updates: Optional[int] = None,
                       environ: Optional[Mapping[str, str]] = None) -> Optional[FaultPlan]:
    """Normalize the three fault-plan channels into one plan (or None).

    Precedence: explicit ``fault_plan`` argument, then the
    ``REPRO_RUN_FAULT_PLAN`` environment variable (inline JSON or a path to
    a JSON file), then the legacy ``interrupt_after_updates`` hook.
    """
    environ = os.environ if environ is None else environ
    if fault_plan is None and environ.get(FAULT_PLAN_ENV_VAR):
        fault_plan = environ[FAULT_PLAN_ENV_VAR]
    if fault_plan is not None:
        if isinstance(fault_plan, FaultPlan):
            return fault_plan
        if isinstance(fault_plan, Mapping):
            return FaultPlan.from_dict(fault_plan)
        text = str(fault_plan).strip()
        if not text.startswith("{"):
            text = Path(text).read_text()
        return FaultPlan.from_json(text)
    if interrupt_after_updates is not None:
        return FaultPlan.interrupt_after_updates(interrupt_after_updates)
    return None


class FaultInjector:
    """Applies one cell's share of a :class:`FaultPlan` at runtime hooks.

    Fired once-only faults are recorded as files under
    ``<out_dir>/faults/`` (atomic writes, safe across pool workers), so the
    injector is crash- and resume-consistent: a fault that killed the
    campaign stays fired when the campaign is re-run on the same artifact
    directory.
    """

    def __init__(self, plan: FaultPlan, out_dir: Optional[Path], cell_index: int):
        self.plan = plan
        self.cell_index = int(cell_index)
        self._state_dir = Path(out_dir) / "faults" if out_dir is not None else None
        self._fired_in_memory: set = set()

    # ------------------------------------------------------------- matching
    def _matches_cell(self, fault: Fault) -> bool:
        return fault.cell is None or fault.cell == self.cell_index

    def _fired(self, index: int) -> bool:
        if self._state_dir is not None:
            return (self._state_dir / f"fired-{index:02d}.json").exists()
        return index in self._fired_in_memory

    def _record(self, index: int, fault: Fault, **detail: Any) -> None:
        if not fault.once:
            return
        if self._state_dir is not None:
            atomic_write_json(self._state_dir / f"fired-{index:02d}.json",
                              {"fault": fault.to_dict(), "cell": self.cell_index,
                               **detail}, checksum=False)
        else:
            self._fired_in_memory.add(index)

    def _pending(self, kinds: Iterable[str], artifact: Optional[str] = None,
                 at_update: Optional[int] = None) -> List[Tuple[int, Fault]]:
        matched = []
        for index, fault in enumerate(self.plan.faults):
            if fault.kind not in kinds or not self._matches_cell(fault):
                continue
            if artifact is not None and fault.artifact != artifact:
                continue
            if fault.at_update != at_update:
                continue
            if fault.once and self._fired(index):
                continue
            matched.append((index, fault))
        return matched

    # ---------------------------------------------------------------- hooks
    def on_cell_start(self) -> None:
        """Stall faults: hang the cell long enough to trip the watchdog."""
        for index, fault in self._pending(("stall",), at_update=None):
            self._record(index, fault, hook="cell-start")
            time.sleep(fault.delay_seconds)

    def wants_checkpoint(self, update: int) -> bool:
        """Whether a checkpoint save must be forced at this update boundary."""
        return bool(self._pending(("kill", "torn-write", "bit-flip"),
                                  artifact="checkpoint", at_update=update))

    def on_checkpoint_saved(self, update: int, path: Path) -> None:
        """Kill/corrupt at a checkpoint boundary.

        ``at_update`` faults fire at their exact boundary (the save is forced
        there via :meth:`wants_checkpoint`); ``at_update=None`` checkpoint
        faults fire at the next regular-cadence save.
        """
        kinds = ("kill", "torn-write", "bit-flip")
        matched = (self._pending(kinds, artifact="checkpoint", at_update=update)
                   + self._pending(kinds, artifact="checkpoint", at_update=None))
        self._inject(matched, path, f"checkpoint boundary at update {update}")

    def on_artifact_written(self, artifact: str, path: Path) -> None:
        """Kill/corrupt right after an artifact of ``artifact`` kind lands."""
        self._inject(self._pending(("kill", "torn-write", "bit-flip"),
                                   artifact=artifact, at_update=None),
                     path, f"after writing {artifact} artifact")

    # ------------------------------------------------------------ injection
    def _inject(self, matched: List[Tuple[int, Fault]], path: Path,
                where: str) -> None:
        kill_message = None
        for index, fault in matched:
            self._record(index, fault, hook=where, path=str(path))
            if fault.kind == "torn-write":
                self._truncate(path)
            elif fault.kind == "bit-flip":
                self._flip_bit(path)
            if fault.kind == "kill" or fault.then_kill:
                kill_message = (f"injected {fault.kind} fault at {where} "
                                f"(cell {self.cell_index}, {Path(path).name})")
        if kill_message is not None:
            raise InjectedFault(kill_message)

    def _truncate(self, path: Path) -> None:
        """Deterministically tear the file: keep a seed-derived prefix."""
        path = Path(path)
        size = path.stat().st_size
        keep = 1 + (size // 2 + self.plan.seed) % max(1, size - 1)
        with open(path, "r+b") as stream:
            stream.truncate(keep)

    def _flip_bit(self, path: Path) -> None:
        """Deterministically flip one seed-derived bit of the file."""
        path = Path(path)
        size = path.stat().st_size
        bit = (self.plan.seed * 2654435761 + size) % max(1, size * 8)
        offset, mask = bit // 8, 1 << (bit % 8)
        with open(path, "r+b") as stream:
            stream.seek(offset)
            byte = stream.read(1)[0]
            stream.seek(offset)
            stream.write(bytes((byte ^ mask,)))
