"""Per-cell execution context: checkpoints, artifacts, and fault injection.

A :class:`CellContext` is handed to a driver's ``run_cell()`` (and threaded
into :func:`repro.experiments.common.train_agent`) when the cell runs inside a
campaign.  It owns the cell's artifact directory and provides:

* **checkpointing** — a trainer callback that saves a resumable
  :class:`~repro.rl.trainer.PPOTrainer` checkpoint every
  ``checkpoint_every`` updates;
* **memoization** — a finished training persists its
  :class:`~repro.rl.trainer.TrainingResult` (JSON), training history (JSONL),
  extracted attack sequences (JSON), and policy (pickle), so a resumed cell
  skips completed trainings entirely;
* **fault injection** — ``interrupt_after_updates`` kills the campaign right
  after a checkpoint is written, which is how the resume tests (and the CI
  kill/resume job) simulate a crash deterministically.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.rl.stats import dump_json, json_ready
from repro.rl.trainer import PPOTrainer, TrainingResult


class CampaignInterrupted(RuntimeError):
    """Raised by the fault-injection hook after a checkpoint has been saved."""


@dataclass
class CellContext:
    """Artifact directory + checkpoint policy for one running campaign cell."""

    cell_dir: Path
    checkpoint_every: int = 2
    interrupt_after_updates: Optional[int] = None

    def __post_init__(self) -> None:
        self.cell_dir = Path(self.cell_dir)

    # ------------------------------------------------------------------ paths
    def checkpoint_path(self, name: str = "train") -> Path:
        return self.cell_dir / f"{name}.checkpoint.pkl"

    def result_path(self, name: str = "train") -> Path:
        return self.cell_dir / f"{name}.result.json"

    def history_path(self, name: str = "train") -> Path:
        return self.cell_dir / f"{name}.history.jsonl"

    def extraction_path(self, name: str = "train") -> Path:
        return self.cell_dir / f"{name}.extraction.json"

    def policy_path(self, name: str = "train") -> Path:
        return self.cell_dir / f"{name}.policy.pkl"

    def meta_path(self, name: str = "train") -> Path:
        return self.cell_dir / f"{name}.meta.json"

    # ------------------------------------------------------------- guardrails
    def ensure_training_meta(self, name: str, meta: dict) -> None:
        """Bind this cell's artifacts to one set of training parameters.

        The campaign runner guards whole campaigns through the manifest, but a
        CellContext can also be used standalone (see
        ``examples/real_hardware_exploration.py``); this check refuses to
        resume a checkpoint or reuse a memoized result that was produced under
        different parameters (e.g. a different scale).
        """
        meta = json_ready(meta)
        path = self.meta_path(name)
        if path.exists():
            existing = json.loads(path.read_text())
            if existing != meta:
                raise ValueError(
                    f"{self.cell_dir} holds artifacts for training {name!r} with "
                    f"different parameters ({existing} != {meta}); use a fresh "
                    "directory or delete the old artifacts")
            return
        self.cell_dir.mkdir(parents=True, exist_ok=True)
        path.write_text(dump_json(meta))

    # ------------------------------------------------------------ checkpoints
    def checkpoint_callback(self, path: Path):
        """A trainer on-update callback that checkpoints (and maybe faults)."""

        def callback(trainer: PPOTrainer, update: int, _metrics) -> None:
            if (self.interrupt_after_updates is not None
                    and update >= self.interrupt_after_updates):
                trainer.save_checkpoint(path)
                raise CampaignInterrupted(
                    f"injected interrupt after update {update} (checkpoint at {path})")
            if self.checkpoint_every and update % self.checkpoint_every == 0:
                trainer.save_checkpoint(path)

        return callback

    # ------------------------------------------------------------ memoization
    def save_training(self, name: str, result: TrainingResult, policy) -> None:
        """Persist a finished training's artifacts and drop its checkpoint."""
        self.cell_dir.mkdir(parents=True, exist_ok=True)
        self.history_path(name).write_text(result.history.to_jsonl() + "\n")
        if result.extraction is not None:
            self.extraction_path(name).write_text(dump_json(result.extraction.to_dict()))
        with open(self.policy_path(name), "wb") as stream:
            pickle.dump(policy, stream, protocol=pickle.HIGHEST_PROTOCOL)
        # The result JSON is written last: its existence marks the training
        # as complete, so a crash between these writes stays resumable.
        self.result_path(name).write_text(result.to_json())
        checkpoint = self.checkpoint_path(name)
        if checkpoint.exists():
            checkpoint.unlink()

    def load_training(self, name: str) -> Optional[TrainingResult]:
        """A previously finished training's result, or None."""
        path = self.result_path(name)
        if not path.exists():
            return None
        return TrainingResult.from_json(path.read_text())

    def load_policy(self, name: str):
        with open(self.policy_path(name), "rb") as stream:
            return pickle.load(stream)
