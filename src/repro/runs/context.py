"""Per-cell execution context: checkpoints, artifacts, and fault injection.

A :class:`CellContext` is handed to a driver's ``run_cell()`` (and threaded
into :func:`repro.experiments.common.train_agent`) when the cell runs inside a
campaign.  It owns the cell's artifact directory and provides:

* **checkpointing** — a trainer callback that saves a resumable
  :class:`~repro.rl.trainer.PPOTrainer` checkpoint every
  ``checkpoint_every`` updates;
* **memoization** — a finished training persists its
  :class:`~repro.rl.trainer.TrainingResult` (JSON), training history (JSONL),
  extracted attack sequences (JSON), and policy (pickle), so a resumed cell
  skips completed trainings entirely;
* **crash safety** — every artifact goes through
  :mod:`repro.runs.artifacts` (atomic replace + checksum sidecar); a corrupt
  or truncated artifact found on load is quarantined and the affected
  training transparently restarts from its last good state (the memoized
  result, the checkpoint, or — if those are gone too — from scratch);
* **fault injection** — an attached
  :class:`~repro.runs.faults.FaultInjector` can kill the cell at checkpoint
  boundaries, tear or bit-flip just-written artifacts, and stall the cell,
  which is how the chaos tests (and the CI chaos-matrix job) simulate
  crashes deterministically.  The legacy ``interrupt_after_updates`` hook is
  kept as a thin alias for a one-fault kill plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.rl.stats import json_ready
from repro.rl.trainer import PPOTrainer, TrainingResult
from repro.runs.artifacts import (
    CorruptArtifactError,
    atomic_write_json,
    atomic_write_pickle,
    atomic_write_text,
    load_json,
    load_pickle,
    load_text,
    quarantine,
    remove_artifact,
    verify_artifact,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults imports us)
    from repro.runs.faults import FaultInjector


class CampaignInterrupted(RuntimeError):
    """Raised when a (real or injected) kill aborts a campaign mid-cell."""


@dataclass
class CellContext:
    """Artifact directory + checkpoint policy for one running campaign cell."""

    cell_dir: Path
    checkpoint_every: int = 2
    interrupt_after_updates: Optional[int] = None
    injector: Optional["FaultInjector"] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.cell_dir = Path(self.cell_dir)

    # ------------------------------------------------------------------ paths
    def checkpoint_path(self, name: str = "train") -> Path:
        return self.cell_dir / f"{name}.checkpoint.pkl"

    def result_path(self, name: str = "train") -> Path:
        return self.cell_dir / f"{name}.result.json"

    def history_path(self, name: str = "train") -> Path:
        return self.cell_dir / f"{name}.history.jsonl"

    def extraction_path(self, name: str = "train") -> Path:
        return self.cell_dir / f"{name}.extraction.json"

    def policy_path(self, name: str = "train") -> Path:
        return self.cell_dir / f"{name}.policy.pkl"

    def meta_path(self, name: str = "train") -> Path:
        return self.cell_dir / f"{name}.meta.json"

    # ------------------------------------------------------------- guardrails
    def ensure_training_meta(self, name: str, meta: dict) -> None:
        """Bind this cell's artifacts to one set of training parameters.

        The campaign runner guards whole campaigns through the manifest, but a
        CellContext can also be used standalone (see
        ``examples/real_hardware_exploration.py``); this check refuses to
        resume a checkpoint or reuse a memoized result that was produced under
        different parameters (e.g. a different scale).
        """
        meta = json_ready(meta)
        path = self.meta_path(name)
        if path.exists():
            try:
                existing = load_json(path)
            except CorruptArtifactError:
                existing = None  # quarantined; rewrite below
            if existing is not None:
                if existing != meta:
                    raise ValueError(
                        f"{self.cell_dir} holds artifacts for training {name!r} with "
                        f"different parameters ({existing} != {meta}); use a fresh "
                        "directory or delete the old artifacts")
                return
        atomic_write_json(path, meta)

    # ------------------------------------------------------------ checkpoints
    def checkpoint_callback(self, path: Path):
        """A trainer on-update callback that checkpoints (and maybe faults)."""

        def callback(trainer: PPOTrainer, update: int, _metrics) -> None:
            if (self.interrupt_after_updates is not None
                    and update >= self.interrupt_after_updates):
                trainer.save_checkpoint(path)
                raise CampaignInterrupted(
                    f"injected interrupt after update {update} (checkpoint at {path})")
            boundary = bool(self.checkpoint_every
                            and update % self.checkpoint_every == 0)
            if self.injector is not None and self.injector.wants_checkpoint(update):
                boundary = True
            if boundary:
                trainer.save_checkpoint(path)
                if self.injector is not None:
                    self.injector.on_checkpoint_saved(update, path)

        return callback

    def load_trainer_checkpoint(self, name: str = "train") -> Optional[PPOTrainer]:
        """The in-flight trainer for ``name``, or None.

        A corrupt or truncated checkpoint is quarantined by the loader and
        treated as absent, so the training transparently restarts from
        scratch instead of crashing the campaign.
        """
        path = self.checkpoint_path(name)
        if not path.exists():
            return None
        try:
            return PPOTrainer.load_checkpoint(path)
        except CorruptArtifactError:
            return None

    # ------------------------------------------------------------ memoization
    def save_training(self, name: str, result: TrainingResult, policy) -> None:
        """Persist a finished training's artifacts and drop its checkpoint."""
        atomic_write_text(self.history_path(name), result.history.to_jsonl() + "\n")
        self._notify("history", self.history_path(name))
        if result.extraction is not None:
            atomic_write_json(self.extraction_path(name), result.extraction.to_dict())
            self._notify("extraction", self.extraction_path(name))
        atomic_write_pickle(self.policy_path(name), policy)
        self._notify("policy", self.policy_path(name))
        # The result JSON is written last: its existence marks the training
        # as complete, so a crash between these writes stays resumable.
        atomic_write_text(self.result_path(name), result.to_json())
        self._notify("training-result", self.result_path(name))
        remove_artifact(self.checkpoint_path(name))

    def load_training(self, name: str) -> Optional[TrainingResult]:
        """A previously finished training's result, or None.

        Corruption anywhere in the memoized pair (result JSON or policy
        pickle) quarantines the damaged file and returns None — the caller
        retrains and the fresh artifacts overwrite whatever was left.
        """
        path = self.result_path(name)
        if not path.exists():
            return None
        try:
            result = TrainingResult.from_json(load_text(path))
        except (CorruptArtifactError, ValueError):
            if path.exists():  # unparseable but checksum-valid: still unusable
                quarantine(path, "unparseable TrainingResult")
            return None
        policy_path = self.policy_path(name)
        if policy_path.exists() and verify_artifact(policy_path) is False:
            quarantine(policy_path, "checksum mismatch")
            return None
        return result

    def load_policy(self, name: str):
        return load_pickle(self.policy_path(name))

    # ---------------------------------------------------------------- faults
    def _notify(self, artifact: str, path: Path) -> None:
        if self.injector is not None:
            self.injector.on_artifact_written(artifact, path)
