"""The scenario registry behind ``repro.make()``.

Scenarios are registered once (the built-in catalogue lives in
:mod:`repro.scenarios.builtin`; experiments and users can add their own) and
constructed by id::

    import repro

    env = repro.make("guessing/lru-4way", seed=3)
    env = repro.make("guessing/lru-4way", **{"cache.num_ways": 8})
    factory = repro.make_factory("covert/prime-probe", episode_length=64)

``register`` also supports spec inheritance, deriving a new scenario from a
registered base::

    repro.register(base="guessing/lru-4way", scenario_id="guessing/lru-8way",
                   **{"cache.num_ways": 8, "attacker_addr_e": 8})
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

from repro.scenarios.spec import ScenarioSpec

ScenarioLike = Union[str, ScenarioSpec]

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register(spec: Optional[ScenarioSpec] = None, *, base: Optional[ScenarioLike] = None,
             scenario_id: Optional[str] = None, overwrite: bool = False,
             **fields: Any) -> ScenarioSpec:
    """Register a scenario and return its spec.

    Three calling styles:

    * ``register(spec)`` — register a ready-made :class:`ScenarioSpec`;
    * ``register(scenario_id="x/y", env=..., cache=..., ...)`` — build the
      spec from keyword fields;
    * ``register(base="x/y", scenario_id="x/z", **overrides)`` — inherit from
      a registered (or given) base spec and apply overrides.
    """
    if spec is not None and (base is not None or fields):
        raise TypeError("pass either a ScenarioSpec or base/fields, not both")
    if spec is None:
        if base is not None:
            base_spec = resolve(base)
            if scenario_id is None:
                raise TypeError("deriving from a base requires scenario_id")
            spec = base_spec.derive(scenario_id, **fields)
        else:
            if scenario_id is None:
                raise TypeError("register() requires a spec or a scenario_id")
            spec = ScenarioSpec(scenario_id=scenario_id, **fields)
    if spec.scenario_id in _REGISTRY and not overwrite:
        raise ValueError(f"scenario {spec.scenario_id!r} is already registered "
                         "(pass overwrite=True to replace it)")
    _REGISTRY[spec.scenario_id] = spec
    return spec


def unregister(scenario_id: str) -> None:
    """Remove a scenario (mainly for tests)."""
    _REGISTRY.pop(scenario_id, None)


def is_registered(scenario_id: str) -> bool:
    return scenario_id in _REGISTRY


def list_scenarios(prefix: str = "") -> List[str]:
    """Sorted ids of all registered scenarios (optionally filtered by prefix)."""
    return sorted(sid for sid in _REGISTRY if sid.startswith(prefix))


def get_spec(scenario: ScenarioLike) -> ScenarioSpec:
    """Look up a scenario id (specs pass through unchanged)."""
    return resolve(scenario)


def resolve(scenario: ScenarioLike) -> ScenarioSpec:
    if isinstance(scenario, ScenarioSpec):
        return scenario
    if isinstance(scenario, str):
        if scenario not in _REGISTRY:
            raise KeyError(f"unknown scenario {scenario!r}; "
                           f"known: {list_scenarios()}")
        return _REGISTRY[scenario]
    raise TypeError(f"expected a scenario id or ScenarioSpec, got {type(scenario)!r}")


def make(scenario: ScenarioLike, seed: Optional[int] = None,
         detector: Optional[Any] = None, **overrides: Any) -> Any:
    """Build the environment for a scenario, with optional overrides.

    ``seed`` seeds the env (falling back to the spec's own seed); ``detector``
    is handed to ``svm_detection`` wrappers; every other keyword is a spec
    override (flat config fields, dotted paths, or whole spec fields — see
    :meth:`ScenarioSpec.with_overrides`).
    """
    spec = resolve(scenario)
    if overrides:
        spec = spec.with_overrides(**overrides)
    runtime = {"detector": detector} if detector is not None else {}
    return spec.build(seed=seed, runtime=runtime)


class SpecFactory:
    """A picklable ``factory(seed) -> env`` for a resolved scenario spec.

    Being a plain object (rather than a closure) lets trainers that hold a
    factory be checkpointed with ``pickle`` and rebuilt in another process.
    The resolved spec is exposed as ``.spec`` so consumers (``VecEnv``'s
    batched fast path) can introspect what will be built.
    """

    __slots__ = ("spec", "runtime")

    def __init__(self, spec: ScenarioSpec, runtime: Optional[Dict[str, Any]] = None) -> None:
        self.spec = spec
        self.runtime = dict(runtime or {})

    def __call__(self, seed: int) -> Any:
        return self.spec.build(seed=seed, runtime=dict(self.runtime))

    def __repr__(self) -> str:
        return f"SpecFactory({self.spec.scenario_id!r})"


def make_factory(scenario: ScenarioLike, detector: Optional[Any] = None,
                 **overrides: Any) -> Callable[[int], Any]:
    """A picklable ``factory(seed) -> env`` for trainers and vectorized envs."""
    spec = resolve(scenario)
    if overrides:
        spec = spec.with_overrides(**overrides)
    runtime = {"detector": detector} if detector is not None else {}
    return SpecFactory(spec, runtime)


def as_env_factory(source: Union[ScenarioLike, Callable[[int], Any]],
                   **overrides: Any) -> Callable[[int], Any]:
    """Normalize an env source (factory callable, scenario id, or spec) to a factory."""
    if callable(source) and not isinstance(source, ScenarioSpec):
        if overrides:
            raise TypeError("overrides only apply to scenario ids/specs, not factories")
        return source
    return make_factory(source, **overrides)
