"""The built-in scenario catalogue.

Registers every environment the experiments, examples, and benchmarks use:

* ``guessing/*`` — single-secret guessing games (Table V/VI/VII settings,
  the quickstart game);
* ``known/*`` — the Table I known-attack configurations;
* ``table4/cfg01`` .. ``table4/cfg17`` — the Table IV configuration sweep;
* ``covert/*`` — fixed-length multi-guess covert-channel episodes, with
  CC-Hunter / Cyclone detector wrappers as declarative variants;
* ``defended/*`` — curated base scenarios hardened with each built-in
  secure-cache defense (see :mod:`repro.defenses`);
* ``blackbox/*`` — one scenario per simulated machine (Tables III and X).

Importing :mod:`repro.scenarios` runs this module, so ``repro.make()`` always
sees the full catalogue.
"""

from __future__ import annotations

from repro.hardware.machines import MACHINES
from repro.scenarios.registry import register
from repro.scenarios.spec import ScenarioSpec


def machine_scenario_id(machine_key: str) -> str:
    """Registry id of the blackbox scenario for a machine key ("name:level")."""
    slug = machine_key.lower().replace(" ", "-").replace(":", "-")
    return f"blackbox/{slug}"


def _register_guessing_family() -> None:
    # Table V / VI setting: 4-way fully-associative set, attacker fills the
    # set (addresses 0..ways), victim accesses address 0 or nothing.
    for policy in ("lru", "plru", "rrip", "random"):
        register(ScenarioSpec(
            scenario_id=f"guessing/{policy}-4way",
            description=(f"4-way fully-associative {policy.upper()} set; victim "
                         "accesses 0 or nothing (Table V/VI setting)"),
            cache={"num_sets": 1, "num_ways": 4, "rep_policy": policy},
            env_kwargs={"attacker_addr_s": 0, "attacker_addr_e": 4,
                        "victim_addr_s": 0, "victim_addr_e": 0,
                        "victim_no_access_enable": True,
                        "window_size": 12, "max_steps": 12},
        ))

    # Same game on the structure-of-arrays backend: single envs run on the
    # SoA engine, and the spec field documents the backend selector (VecEnv
    # batches any SoA-capable guessing scenario automatically, so the plain
    # scenarios above already train on the batched engine).
    register(base="guessing/lru-4way", scenario_id="guessing/lru-4way-soa",
             description=("4-way fully-associative LRU set on the SoA cache "
                          "engine (bit-identical to guessing/lru-4way, no "
                          "event log)"),
             backend="soa")

    # Table VII layout: disjoint attacker (1-5) / victim (0) ranges, so the
    # defenses below actually isolate something.  The PL-cache variant rides
    # the defense registry (defense="plcache" locks the victim range).
    register(ScenarioSpec(
        scenario_id="guessing/plcache-baseline-4way",
        description=("Table VII baseline: 4-way PLRU set, disjoint attacker "
                     "(1-5) / victim (0) ranges, no defense"),
        cache={"num_sets": 1, "num_ways": 4, "rep_policy": "plru"},
        env_kwargs={"attacker_addr_s": 1, "attacker_addr_e": 5,
                    "victim_addr_s": 0, "victim_addr_e": 0,
                    "victim_no_access_enable": True,
                    "window_size": 12, "max_steps": 12},
    ))
    register(base="guessing/plcache-baseline-4way",
             scenario_id="guessing/plcache-plru-4way",
             description=("4-way PLRU PL cache with victim line 0 pre-installed "
                          "and locked (Table VII defense setting)"),
             defense="plcache")
    register(base="guessing/plcache-baseline-4way",
             scenario_id="guessing/lru-4way-disjoint",
             description=("4-way fully-associative LRU set with disjoint "
                          "attacker (1-5) / victim (0) ranges"),
             **{"cache.rep_policy": "lru"})

    # Set-associative prime+probe setting with disjoint ranges: the multi-set
    # row of the defense matrix (set-index remapping only matters when there
    # is more than one set to remap).
    # The attacker owns 5 of 8 lines: a partial footprint, so set-index
    # remapping genuinely breaks its eviction sets (flooding the whole cache
    # would leak under any mapping).
    register(ScenarioSpec(
        scenario_id="guessing/sa-4set-2way",
        description=("4-set 2-way LRU cache; victim accesses 0 or nothing, "
                     "attacker owns 4-8 (set-associative prime+probe with a "
                     "partial cache footprint)"),
        cache={"num_sets": 4, "num_ways": 2},
        env_kwargs={"attacker_addr_s": 4, "attacker_addr_e": 8,
                    "victim_addr_s": 0, "victim_addr_e": 0,
                    "victim_no_access_enable": True,
                    "window_size": 16, "max_steps": 16},
    ))

    # The README / examples quickstart: smallest interesting guessing game.
    register(ScenarioSpec(
        scenario_id="guessing/quickstart",
        description=("2-set direct-mapped cache; victim's secret is address 0 "
                     "or 1, attacker owns 2-3 (minimal prime+probe game)"),
        cache={"num_sets": 2, "num_ways": 1},
        env_kwargs={"attacker_addr_s": 2, "attacker_addr_e": 3,
                    "victim_addr_s": 0, "victim_addr_e": 1,
                    "victim_no_access_enable": False,
                    "window_size": 8, "max_steps": 8},
    ))


def _register_known_attacks() -> None:
    # Table I: one configuration per known attack category.
    register(ScenarioSpec(
        scenario_id="known/prime-probe",
        description="Direct-mapped 4-set cache, disjoint attacker range (prime+probe)",
        cache={"num_sets": 4, "num_ways": 1},
        env_kwargs={"attacker_addr_s": 4, "attacker_addr_e": 7,
                    "victim_addr_s": 0, "victim_addr_e": 3,
                    "victim_no_access_enable": False,
                    "window_size": 24, "warmup_accesses": 0},
    ))
    register(ScenarioSpec(
        scenario_id="known/flush-reload",
        description="Shared attacker/victim range with clflush (flush+reload)",
        cache={"num_sets": 4, "num_ways": 1},
        env_kwargs={"attacker_addr_s": 0, "attacker_addr_e": 3,
                    "victim_addr_s": 0, "victim_addr_e": 3,
                    "victim_no_access_enable": False, "flush_enable": True,
                    "window_size": 24, "warmup_accesses": 0},
    ))
    register(ScenarioSpec(
        scenario_id="known/evict-reload",
        description="Attacker covers the victim's range without flush (evict+reload)",
        cache={"num_sets": 4, "num_ways": 1},
        env_kwargs={"attacker_addr_s": 0, "attacker_addr_e": 7,
                    "victim_addr_s": 0, "victim_addr_e": 3,
                    "victim_no_access_enable": False,
                    "window_size": 32, "warmup_accesses": 0},
    ))
    register(ScenarioSpec(
        scenario_id="known/lru-state",
        description="Fully-associative LRU set, address-based LRU-state attack",
        cache={"num_sets": 1, "num_ways": 4},
        env_kwargs={"attacker_addr_s": 0, "attacker_addr_e": 4,
                    "victim_addr_s": 0, "victim_addr_e": 0,
                    "victim_no_access_enable": True,
                    "window_size": 16, "warmup_accesses": 0},
    ))


def _register_table4() -> None:
    def env_kwargs(victim, attacker, flush, no_access, window, hierarchy=False):
        kwargs = {"attacker_addr_s": attacker[0], "attacker_addr_e": attacker[1],
                  "victim_addr_s": victim[0], "victim_addr_e": victim[1],
                  "flush_enable": flush, "victim_no_access_enable": no_access,
                  "window_size": window, "max_steps": window}
        if hierarchy:
            kwargs["hierarchy"] = True
        return kwargs

    dm = lambda sets, **kw: {"num_sets": sets, "num_ways": 1, **kw}
    fa = lambda ways, **kw: {"num_sets": 1, "num_ways": ways, **kw}
    sa = lambda sets, ways, **kw: {"num_sets": sets, "num_ways": ways, **kw}

    entries = [
        (1, "DM 4-set, victim 0-3, attacker 4-7",
         dm(4), None, env_kwargs((0, 3), (4, 7), False, False, 20)),
        (2, "DM 4-set + next-line prefetcher",
         dm(4, prefetcher="nextline"), None, env_kwargs((0, 3), (4, 7), False, False, 20)),
        (3, "DM 4-set, shared 0-3, flush",
         dm(4), None, env_kwargs((0, 3), (0, 3), True, False, 20)),
        (4, "DM 4-set, attacker 0-7, no flush",
         dm(4), None, env_kwargs((0, 3), (0, 7), False, False, 24)),
        (5, "FA 4-way, victim 0/E, attacker 4-7",
         fa(4), None, env_kwargs((0, 0), (4, 7), False, True, 14)),
        (6, "FA 4-way, victim 0/E, shared 0-3, flush",
         fa(4), None, env_kwargs((0, 0), (0, 3), True, True, 14)),
        (7, "FA 4-way, victim 0/E, attacker 0-7",
         fa(4), None, env_kwargs((0, 0), (0, 7), False, True, 16)),
        (8, "FA 4-way, victim 0-3, shared 0-3, flush",
         fa(4), None, env_kwargs((0, 3), (0, 3), True, False, 16)),
        (9, "FA 4-way, victim 0-3, attacker 0-7, flush",
         fa(4), None, env_kwargs((0, 3), (0, 7), True, False, 20)),
        (10, "DM 8-set, shared 0-7, flush",
         dm(8), None, env_kwargs((0, 7), (0, 7), True, False, 36)),
        (11, "FA 8-way, victim 0/E, shared 0-7, flush",
         fa(8), None, env_kwargs((0, 0), (0, 7), True, True, 24)),
        (12, "FA 8-way, victim 0/E, attacker 0-15",
         fa(8), None, env_kwargs((0, 0), (0, 15), False, True, 28)),
        (13, "FA 8-way + next-line prefetcher, attacker 0-15",
         fa(8, prefetcher="nextline"), None, env_kwargs((0, 0), (0, 15), False, True, 28)),
        (14, "FA 8-way + stream prefetcher, attacker 0-15",
         fa(8, prefetcher="stream"), None, env_kwargs((0, 0), (0, 15), False, True, 28)),
        (15, "SA 2-way 4-set, victim 0-3, attacker 4-11",
         sa(4, 2), None, env_kwargs((0, 3), (4, 11), False, False, 28)),
        (16, "2-level: private DM L1s, shared 2-way 4-set L2",
         dm(4), sa(4, 2), env_kwargs((0, 3), (4, 11), False, False, 28, hierarchy=True)),
        (17, "2-level: private DM L1s, shared 2-way 8-set L2",
         dm(8), sa(8, 2), env_kwargs((0, 7), (8, 23), False, False, 48, hierarchy=True)),
    ]
    for number, description, cache, l2_cache, kwargs in entries:
        register(ScenarioSpec(
            scenario_id=f"table4/cfg{number:02d}",
            description=f"Table IV config {number}: {description}",
            cache=cache, l2_cache=l2_cache, env_kwargs=kwargs,
        ))


def _register_covert_family() -> None:
    # Sec. V-D covert channel: prime+probe over a direct-mapped cache in
    # fixed-length multi-guess episodes.  The paper's setting is 4 sets and
    # 160-step episodes; experiments shrink both via overrides.
    register(ScenarioSpec(
        scenario_id="covert/prime-probe",
        env="covert",
        description=("Multi-guess covert channel: direct-mapped cache, disjoint "
                     "attacker/victim ranges, fixed 160-step episodes"),
        cache={"num_sets": 4, "num_ways": 1},
        env_kwargs={"attacker_addr_s": 4, "attacker_addr_e": 7,
                    "victim_addr_s": 0, "victim_addr_e": 3,
                    "victim_no_access_enable": False,
                    "window_size": 16},
        rewards={"step_reward": -0.01, "no_guess_reward": -1.0},
        episode_length=160,
    ))
    register(base="covert/prime-probe", scenario_id="covert/prime-probe-cchunter",
             description=("Covert channel with CC-Hunter's autocorrelation L2 "
                          "penalty in the reward"),
             wrappers=({"type": "autocorrelation_penalty", "penalty_scale": -2.0},))
    register(base="covert/prime-probe", scenario_id="covert/prime-probe-svm",
             description=("Covert channel with a Cyclone-style SVM detector in "
                          "the loop (pass the trained detector to make())"),
             wrappers=({"type": "svm_detection"},))


#: The curated defended/* grid: base-scenario slug -> (base id, defense ids).
DEFENDED_BASES = {
    "lru-4way": "guessing/lru-4way-disjoint",
    "plru-4way": "guessing/plcache-baseline-4way",
    "sa-4set-2way": "guessing/sa-4set-2way",
}
DEFENDED_DEFENSES = ("plcache", "keyed-remap", "skew", "way-partition",
                     "random-fill")


def _register_defended_family() -> None:
    # defended/<base>-<defense>: every curated base scenario crossed with
    # every built-in defense — the rows of the defense_matrix experiment.
    for base_slug, base_id in DEFENDED_BASES.items():
        for defense_id in DEFENDED_DEFENSES:
            register(base=base_id,
                     scenario_id=f"defended/{base_slug}-{defense_id}",
                     description=(f"{base_id} hardened with the {defense_id} "
                                  "defense (see repro.list_defenses())"),
                     defense=defense_id)


def _register_blackbox_machines() -> None:
    for key, spec in sorted(MACHINES.items()):
        # Tree PLRU (the hidden policy of the 12-way RocketLake L1Ds) only
        # instantiates for power-of-two associativity; those machines exist
        # for the covert-channel timing model, not as guessing-game targets.
        if spec.hidden_policy == "plru" and spec.num_ways & (spec.num_ways - 1):
            continue
        register(ScenarioSpec(
            scenario_id=machine_scenario_id(key),
            env="blackbox",
            machine=key,
            description=(f"Blackbox {spec.name} {spec.cache_level} "
                         f"({spec.num_ways} ways, hidden replacement policy, "
                         "measurement noise)"),
        ))


def register_builtin_scenarios() -> None:
    """Populate the registry (idempotent: skips when already registered)."""
    from repro.scenarios.registry import is_registered

    if is_registered("guessing/lru-4way"):
        return
    _register_guessing_family()
    _register_known_attacks()
    _register_table4()
    _register_covert_family()
    _register_defended_family()
    _register_blackbox_machines()


register_builtin_scenarios()
