"""Declarative, serializable scenario descriptions.

A :class:`ScenarioSpec` is a frozen value object that fully describes one
environment the RL agent can be trained in: the cache (or blackbox machine),
the guessing-game configuration, the reward shaping, an optional secure-cache
defense (see :mod:`repro.defenses`), and a declarative pipeline of detection
wrappers.  Specs round-trip losslessly through ``to_dict``/``from_dict`` and
JSON, so scenarios can be logged, sharded across workers, or shipped to
remote actors without pickling code.

``ScenarioSpec.build(seed)`` materializes the environment; the registry in
:mod:`repro.scenarios.registry` resolves scenario ids to specs and is the
normal way to construct environments (``repro.make("guessing/lru-4way")``).
"""

from __future__ import annotations

import copy
import dataclasses
import json
from dataclasses import dataclass, field, fields, replace
from typing import (TYPE_CHECKING, Any, Callable, Dict, Mapping, Optional,
                    Tuple, Union)

from repro.cache.config import CacheConfig
from repro.env.config import EnvConfig, RewardConfig

if TYPE_CHECKING:
    from repro.defenses.spec import CompiledDefense, DefenseSpec

ENV_TYPES = ("guessing", "covert", "blackbox")

# Field names used to route flat override keys to the right nested mapping.
_ENV_FIELDS = frozenset(f.name for f in fields(EnvConfig)) - {"cache", "l2_cache", "rewards"}
_REWARD_FIELDS = frozenset(f.name for f in fields(RewardConfig))
_CACHE_FIELDS = frozenset(f.name for f in fields(CacheConfig))
_MACHINE_FIELDS = frozenset({"attacker_addresses"})


def _frozen_mapping(value: Optional[Mapping]) -> Optional[Dict]:
    if value is None:
        return None
    return dict(value)


def _normalize_defense(defense: Any) -> Optional[Union[str, Dict]]:
    """Normalize the ``defense`` field to JSON-safe plain data (id or dict)."""
    if defense is None or isinstance(defense, str):
        return defense
    if hasattr(defense, "to_dict"):  # a DefenseSpec instance
        return defense.to_dict()
    if isinstance(defense, Mapping):
        return dict(defense)
    raise TypeError(f"defense must be a registered id, a mapping, or a "
                    f"DefenseSpec; got {type(defense)!r}")


@dataclass(frozen=True)
class ScenarioSpec:
    """Frozen description of one environment scenario.

    Fields
    ------
    scenario_id:
        Registry key, conventionally ``"family/variant"``.
    env:
        ``"guessing"`` (single-secret episodes), ``"covert"`` (fixed-length
        multi-guess episodes), or ``"blackbox"`` (simulated real machine).
    cache / l2_cache:
        :class:`~repro.cache.config.CacheConfig` keyword mappings (``l2_cache``
        only for two-level hierarchies).  Ignored for blackbox scenarios.
    env_kwargs:
        :class:`~repro.env.config.EnvConfig` keywords other than ``cache``,
        ``l2_cache``, and ``rewards`` (address ranges, window size, seed, ...).
    rewards:
        :class:`~repro.env.config.RewardConfig` keyword overrides.
    defense:
        Secure-cache defense protecting the victim: a registered defense id
        (``"plcache"``, ``"keyed-remap"``, ...), an inline
        :class:`~repro.defenses.DefenseSpec` mapping, or ``None``.  The
        defense compiles into cache-config / lock / wrapper fragments at
        build time (see :mod:`repro.defenses`).
    episode_length:
        Covert-env episode length (``env == "covert"`` only).
    machine / machine_kwargs:
        Blackbox machine key (``"name:level"``) and extra keywords
        (``attacker_addresses``) for ``env == "blackbox"``.
    wrappers:
        Declarative wrapper pipeline, applied innermost-first.  Each entry is a
        mapping with a ``"type"`` key (see :data:`WRAPPER_BUILDERS`) plus
        builder-specific parameters.
    """

    scenario_id: str
    env: str = "guessing"
    description: str = ""
    cache: Optional[Dict] = None
    l2_cache: Optional[Dict] = None
    env_kwargs: Dict = field(default_factory=dict)
    rewards: Dict = field(default_factory=dict)
    defense: Optional[Union[str, Dict]] = None
    episode_length: Optional[int] = None
    machine: Optional[str] = None
    machine_kwargs: Dict = field(default_factory=dict)
    wrappers: Tuple[Dict, ...] = ()

    def __post_init__(self) -> None:
        if self.env not in ENV_TYPES:
            raise ValueError(f"unknown env type {self.env!r}; choose from {ENV_TYPES}")
        if self.env == "blackbox" and not self.machine:
            raise ValueError("blackbox scenarios require a machine key ('name:level')")
        # Normalize mutable/sequence fields so equality and serialization are
        # stable regardless of how the spec was constructed.
        object.__setattr__(self, "cache", _frozen_mapping(self.cache))
        object.__setattr__(self, "l2_cache", _frozen_mapping(self.l2_cache))
        object.__setattr__(self, "env_kwargs", dict(self.env_kwargs))
        object.__setattr__(self, "rewards", dict(self.rewards))
        object.__setattr__(self, "machine_kwargs", dict(self.machine_kwargs))
        object.__setattr__(self, "defense", _normalize_defense(self.defense))
        if self.defense is not None and self.env == "blackbox":
            raise ValueError("defenses apply to simulated caches, not blackbox "
                             "machines")
        wrappers = tuple(dict(w) for w in self.wrappers)
        for wrapper in wrappers:
            if "type" not in wrapper:
                raise ValueError(f"wrapper spec {wrapper!r} is missing its 'type' key")
            if wrapper["type"] not in WRAPPER_BUILDERS:
                raise ValueError(f"unknown wrapper type {wrapper['type']!r}; "
                                 f"known: {sorted(WRAPPER_BUILDERS)}")
        object.__setattr__(self, "wrappers", wrappers)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data dict (JSON-safe) that losslessly round-trips via from_dict."""
        data = dataclasses.asdict(self)
        if isinstance(self.defense, dict):
            data["defense"] = copy.deepcopy(self.defense)
        data["wrappers"] = [copy.deepcopy(dict(w)) for w in self.wrappers]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        payload = dict(data)
        # Backward compatibility: specs serialized before the defense layer
        # carried PL locks as a bespoke field; fold them into the generic
        # defense (an explicit defense wins over the legacy key).
        locked = payload.pop("pl_locked_addresses", None)
        if locked and payload.get("defense") is None:
            payload["defense"] = {"defense_id": "plcache", "kind": "plcache",
                                  "params": {"locked_addresses": [int(a) for a in locked]}}
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown ScenarioSpec fields: {sorted(unknown)}")
        return cls(**payload)

    def to_json(self, **json_kwargs: Any) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, **json_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # -------------------------------------------------------------- overrides
    def with_overrides(self, **overrides: Any) -> "ScenarioSpec":
        """Return a new spec with overrides applied.

        Three kinds of keys are accepted:

        * spec field names (``cache``, ``env_kwargs``, ``wrappers``, ...) —
          mapping-valued fields merge into the existing mapping, everything
          else replaces the field;
        * dotted paths into mapping fields (``{"cache.rep_policy": "plru"}``);
        * flat config field names, routed automatically: :class:`EnvConfig`
          fields to ``env_kwargs``, :class:`RewardConfig` fields to
          ``rewards``, :class:`CacheConfig` fields to ``cache``, and blackbox
          machine fields to ``machine_kwargs``.
        """
        spec_fields = {f.name for f in fields(self)}
        mapping_fields = {"cache", "l2_cache", "env_kwargs", "rewards", "machine_kwargs"}
        updates: Dict[str, Any] = {}

        def merge(target_field: str, key: str, value: Any) -> None:
            current = updates.get(target_field)
            if current is None:
                current = dict(getattr(self, target_field) or {})
                updates[target_field] = current
            current[key] = value

        for key, value in overrides.items():
            if "." in key:
                target_field, _, sub_key = key.partition(".")
                if target_field not in mapping_fields:
                    raise KeyError(f"cannot apply dotted override {key!r}: "
                                   f"{target_field!r} is not a mapping field")
                merge(target_field, sub_key, value)
            elif key in spec_fields:
                if key in mapping_fields and isinstance(value, Mapping):
                    for sub_key, sub_value in value.items():
                        merge(key, sub_key, sub_value)
                else:
                    updates[key] = value
            elif key in _ENV_FIELDS:
                merge("env_kwargs", key, value)
            elif key in _REWARD_FIELDS:
                merge("rewards", key, value)
            elif key in _CACHE_FIELDS:
                merge("cache", key, value)
            elif key in _MACHINE_FIELDS:
                merge("machine_kwargs", key, value)
            else:
                raise KeyError(f"unknown scenario override {key!r}")
        return replace(self, **updates)

    def derive(self, scenario_id: str, **overrides: Any) -> "ScenarioSpec":
        """Spec inheritance: a renamed copy with overrides applied."""
        return self.with_overrides(**overrides)._rename(scenario_id)

    def _rename(self, scenario_id: str) -> "ScenarioSpec":
        return replace(self, scenario_id=scenario_id)

    # ----------------------------------------------------------------- defense
    def resolved_defense(self) -> Optional["DefenseSpec"]:
        """The :class:`~repro.defenses.DefenseSpec` this scenario applies (or None)."""
        if self.defense is None:
            return None
        from repro.defenses import resolve_defense

        return resolve_defense(self.defense)

    def compiled_defense(self) -> Optional["CompiledDefense"]:
        """The defense compiled against this scenario (or None)."""
        defense = self.resolved_defense()
        return None if defense is None else defense.compile(self)

    def supports_soa(self) -> bool:
        """Capability hook: can N copies collapse into the SoA batched game?

        Consults the environment class (only the plain guessing game is
        batchable), every wrapper builder's ``supports_soa`` attribute, the
        defense's :meth:`~repro.defenses.DefenseSpec.supports_soa`, and the
        compiled cache config (:func:`repro.env.batched_env.config_supports_batching`).
        """
        if not _env_class_supports_soa(self.env):
            return False
        if any(not getattr(WRAPPER_BUILDERS[w["type"]], "supports_soa", False)
               for w in self.wrappers):
            return False
        try:
            config = self.build_config()
        except (TypeError, ValueError, KeyError):
            return False
        defense = self.resolved_defense()
        if defense is not None and not defense.supports_soa(config.cache):
            return False
        from repro.env.batched_env import config_supports_batching

        return config_supports_batching(config)

    # ---------------------------------------------------------------- building
    def build_config(self, seed: Optional[int] = None) -> EnvConfig:
        """The :class:`EnvConfig` this spec describes (simulated scenarios only).

        The compiled defense's cache/env fragments are already folded in, so
        consumers of the config (backends, the SoA engine) see the defended
        cache without knowing about the defense layer.
        """
        if self.env == "blackbox":
            raise ValueError("blackbox scenarios have no standalone EnvConfig; "
                             "build() the env and read env.config instead")
        cache_kwargs = dict(self.cache or {})
        env_kwargs = dict(self.env_kwargs)
        compiled = self.compiled_defense()
        if compiled is not None:
            cache_kwargs = _merge_cache_overrides(cache_kwargs,
                                                  compiled.cache_overrides)
            env_kwargs.update(compiled.env_overrides)
        if seed is not None:
            env_kwargs["seed"] = seed
        return EnvConfig(
            cache=CacheConfig(**cache_kwargs),
            l2_cache=CacheConfig(**self.l2_cache) if self.l2_cache else None,
            rewards=RewardConfig(**self.rewards),
            **env_kwargs,
        )

    def build(self, seed: Optional[int] = None,
              runtime: Optional[Mapping[str, Any]] = None) -> Any:
        """Materialize the environment (with its wrapper pipeline applied).

        ``runtime`` carries non-serializable collaborators that wrappers may
        need — currently ``{"detector": ...}`` for ``svm_detection``.
        """
        runtime = dict(runtime or {})
        compiled: Optional["CompiledDefense"] = None
        env: Any
        if self.env == "blackbox":
            from repro.env.hardware_env import BlackboxHardwareEnv
            from repro.hardware.machines import get_machine

            assert self.machine is not None  # enforced in __post_init__
            machine_kwargs = dict(self.machine_kwargs)
            env = BlackboxHardwareEnv(
                get_machine(self.machine),
                attacker_addresses=machine_kwargs.get("attacker_addresses"),
                rewards=RewardConfig(**self.rewards) if self.rewards else None,
                window_size=machine_kwargs.get("window_size")
                or self.env_kwargs.get("window_size"),
                seed=seed if seed is not None else int(self.env_kwargs.get("seed", 0)),
            )
        else:
            config = self.build_config(seed=seed)
            compiled = self.compiled_defense()
            locked = list(compiled.locked_addresses) if compiled else None
            if self.env == "covert":
                from repro.env.covert_env import MultiGuessCovertEnv

                env = MultiGuessCovertEnv(config,
                                          episode_length=self.episode_length or 160,
                                          pl_locked_addresses=locked or None)
            else:
                from repro.env.guessing_game import CacheGuessingGameEnv

                env = CacheGuessingGameEnv(config, pl_locked_addresses=locked or None)
        wrappers = self.wrappers
        if compiled is not None and compiled.wrappers:
            wrappers = wrappers + tuple(dict(w) for w in compiled.wrappers)
        for wrapper_spec in wrappers:
            params = {k: v for k, v in wrapper_spec.items() if k != "type"}
            env = WRAPPER_BUILDERS[wrapper_spec["type"]](env, params, runtime)
        return env


def _merge_cache_overrides(cache_kwargs: Dict, overrides: Mapping) -> Dict:
    """Merge compiled-defense cache fragments, deep-merging the ``extra`` dict."""
    merged = dict(cache_kwargs)
    for key, value in overrides.items():
        if key == "extra":
            merged["extra"] = {**dict(merged.get("extra") or {}), **dict(value)}
        else:
            merged[key] = value
    return merged


def _env_class_supports_soa(env_type: str) -> bool:
    """The env class's SoA-batching capability flag (lazily imported)."""
    if env_type == "guessing":
        from repro.env.guessing_game import CacheGuessingGameEnv as env_class
    elif env_type == "covert":
        from repro.env.covert_env import MultiGuessCovertEnv as env_class
    else:
        from repro.env.hardware_env import BlackboxHardwareEnv as env_class
    return bool(getattr(env_class, "supports_soa_batching", False))


# -------------------------------------------------------- wrapper pipeline
def _build_miss_count(env: Any, params: Dict, runtime: Dict) -> Any:
    from repro.env.wrappers import MissCountDetectionWrapper

    return MissCountDetectionWrapper(env)


def _build_autocorrelation_penalty(env: Any, params: Dict, runtime: Dict) -> Any:
    from repro.env.wrappers import AutocorrelationPenaltyWrapper

    return AutocorrelationPenaltyWrapper(
        env,
        penalty_scale=params.get("penalty_scale", -1.0),
        terminate_on_detection=params.get("terminate_on_detection", False),
    )


def _build_svm_detection(env: Any, params: Dict, runtime: Dict) -> Any:
    from repro.env.wrappers import SVMDetectionWrapper

    detector = runtime.get("detector")
    if detector is None:
        raise ValueError("the svm_detection wrapper needs a trained detector; "
                         "pass it via repro.make(scenario, detector=...)")
    return SVMDetectionWrapper(env, detector, penalize=params.get("penalize", True))


WRAPPER_BUILDERS: Dict[str, Callable] = {
    "miss_count": _build_miss_count,
    "autocorrelation_penalty": _build_autocorrelation_penalty,
    "svm_detection": _build_svm_detection,
}
