"""Scenario registry: declarative environment construction for AutoCAT.

One RL formulation spans many scenarios — cache configurations, replacement
policies, PL-cache locking, detector-in-the-loop wrappers, blackbox machine
backends.  This package gives them a single declarative API:

* :class:`ScenarioSpec` — a frozen, JSON-serializable scenario description;
* :func:`register` / :func:`list_scenarios` / :func:`get_spec` — the registry;
* :func:`make` / :func:`make_factory` — ``repro.make("guessing/lru-4way")``.

Importing this package registers the built-in catalogue
(:mod:`repro.scenarios.builtin`).
"""

from repro.scenarios.spec import ScenarioSpec, WRAPPER_BUILDERS
from repro.scenarios.registry import (
    as_env_factory,
    get_spec,
    is_registered,
    list_scenarios,
    make,
    make_factory,
    register,
    resolve,
    unregister,
)
from repro.scenarios import builtin as _builtin  # noqa: F401  (registers the catalogue)
from repro.scenarios.builtin import machine_scenario_id, register_builtin_scenarios

__all__ = [
    "ScenarioSpec",
    "WRAPPER_BUILDERS",
    "as_env_factory",
    "get_spec",
    "is_registered",
    "list_scenarios",
    "machine_scenario_id",
    "make",
    "make_factory",
    "register",
    "register_builtin_scenarios",
    "resolve",
    "unregister",
]
