"""``repro proxy`` — a deterministic TCP chaos proxy for the lease protocol.

The in-process :class:`~repro.store.client.ChaosTransport` perturbs requests
before they reach a socket; this module is the other half of the network
chaos harness — a real TCP intermediary that exercises the full stack
(kernel sockets, HTTP framing, the server's threaded handler pool).  Point a
``repro work --server`` worker at the proxy and the proxy forwards each
request to the upstream ``repro serve``, injecting faults from the same
:class:`~repro.runs.faults.NetworkChaosPlan` vocabulary:

``reset``
    close the client connection with an RST (``SO_LINGER`` zero) before
    forwarding — the client sees ``ConnectionResetError`` and must retry;
``http-500``
    answer with a canned 500 without contacting the upstream;
``stall``
    sleep ``delay_seconds`` before forwarding — exercises client deadlines;
``drop-response``
    forward the request (the mutation *is* applied upstream) but reset the
    client before relaying the response — the retried request must dedup
    via its idempotency key;
``duplicate``
    forward the identical request twice on two upstream connections and
    relay the second response — the duplicated delivery must be a no-op
    replay.

Determinism: the :class:`~repro.store.client.StoreClient` sends
``Connection: close`` on every request, so requests and proxy connections
are one-to-one.  Each fault keeps its own counter of requests whose path
matches its ``op`` filter and fires exactly when that counter reaches
``at_request`` — the same plan always perturbs the same protocol step.
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.runs.faults import NetworkChaosPlan

#: Socket read deadline inside the proxy (seconds) — a hung peer cannot
#: wedge a proxy thread forever.
PROXY_IO_TIMEOUT = 30.0

_CANNED_500 = (b"HTTP/1.1 500 Internal Server Error\r\n"
               b"Content-Type: application/json\r\n"
               b"Content-Length: 40\r\n"
               b"Connection: close\r\n\r\n"
               b'{"error": "chaos: injected 500 (proxy)"}')


def _read_http_request(sock: socket.socket) -> Optional[bytes]:
    """Read one framed HTTP request (headers + Content-Length body)."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            return data or None
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            break
        rest += chunk
    return head + b"\r\n\r\n" + rest


def _request_path(request: bytes) -> str:
    try:
        return request.split(b"\r\n", 1)[0].split(b" ")[1].decode("ascii")
    except (IndexError, UnicodeDecodeError):
        return ""


def _rst_close(sock: socket.socket) -> None:
    """Close with an RST instead of a FIN (linger zero)."""
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
    except OSError:
        pass
    sock.close()


class ChaosProxy:
    """A threaded store-and-forward TCP proxy with plan-driven faults."""

    def __init__(self, upstream: Tuple[str, int], plan: NetworkChaosPlan,
                 host: str = "127.0.0.1", port: int = 0):
        self.upstream = upstream
        self.plan = plan
        self.fired: List[Dict[str, Any]] = []
        self._seen = [0] * len(plan.faults)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)

    # -------------------------------------------------------------- lifecycle
    def start(self) -> "ChaosProxy":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        try:
            # Unblock accept() by connecting to ourselves.
            with socket.create_connection(self.address, timeout=1.0):
                pass
        except OSError:
            pass
        self._listener.close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ----------------------------------------------------------------- faults
    def _matching(self, path: str) -> List[Any]:
        matched = []
        with self._lock:
            for index, fault in enumerate(self.plan.faults):
                if fault.op is not None and fault.op not in path:
                    continue
                if self._seen[index] == fault.at_request:
                    matched.append(fault)
                self._seen[index] += 1
        return matched

    # ------------------------------------------------------------ the machine
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            if self._stop.is_set():
                client.close()
                return
            threading.Thread(target=self._handle, args=(client,),
                             daemon=True).start()

    def _handle(self, client: socket.socket) -> None:
        try:
            client.settimeout(PROXY_IO_TIMEOUT)
            request = _read_http_request(client)
            if not request:
                client.close()
                return
            path = _request_path(request)
            faults = self._matching(path)
            kinds = [fault.kind for fault in faults]
            for fault in faults:
                self.fired.append({"kind": fault.kind, "path": path})
                if fault.kind == "stall":
                    self._stop.wait(fault.delay_seconds)
            if "reset" in kinds:
                _rst_close(client)
                return
            if "http-500" in kinds:
                client.sendall(_CANNED_500)
                client.close()
                return
            response = self._forward(request)
            if "duplicate" in kinds:
                # Deliver the identical request a second time; relay the
                # second response (the first is discarded, as a retrying
                # client would discard it).
                response = self._forward(request)
            if "drop-response" in kinds:
                # The upstream applied the mutation but the client never
                # hears back.
                _rst_close(client)
                return
            client.sendall(response)
            client.close()
        except OSError:
            try:
                client.close()
            except OSError:
                pass

    def _forward(self, request: bytes) -> bytes:
        with socket.create_connection(self.upstream,
                                      timeout=PROXY_IO_TIMEOUT) as upstream:
            upstream.sendall(request)
            response = b""
            while True:
                chunk = upstream.recv(65536)
                if not chunk:
                    return response
                response += chunk


def run_proxy(upstream: Tuple[str, int], plan: NetworkChaosPlan,
              host: str = "127.0.0.1", port: int = 0,
              ready_message: Optional[Any] = print) -> None:
    """Run a chaos proxy until interrupted (the ``repro proxy`` command)."""
    proxy = ChaosProxy(upstream, plan, host=host, port=port).start()
    if ready_message is not None:
        ready_message(
            f"repro proxy: {proxy.address[0]}:{proxy.address[1]} -> "
            f"{upstream[0]}:{upstream[1]} ({len(plan.faults)} faults)")
    try:
        while True:
            if proxy._stop.wait(1.0):
                return
    except KeyboardInterrupt:
        pass
    finally:
        proxy.stop()


__all__ = ["ChaosProxy", "PROXY_IO_TIMEOUT", "run_proxy"]
