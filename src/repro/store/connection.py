"""The shared SQLite connection helper — the only sanctioned SQL gateway.

Every byte of SQL the campaign service runs goes through
:class:`StoreConnection`: catalogue writes, queue claims, server reads, and
query aggregations all call :meth:`StoreConnection.execute` /
:meth:`executemany` with a **literal SQL string plus bound parameters**.
This is the module the ``artifacts.store-connection`` lint rule anchors on:

* ``sqlite3.connect`` may appear nowhere else under ``src/repro`` — the
  pragmas that make a single catalogue file safe for many processes (WAL
  journaling, a busy timeout, foreign keys) are applied here exactly once,
  so a rogue connection cannot silently opt out of them;
* SQL strings elsewhere in ``repro/store/`` must be literals, never
  concatenated or interpolated — user-controlled values (experiment ids,
  metric names, worker ids) always travel as bound parameters.

Concurrency model: one catalogue file, many short-lived connections.  WAL
mode lets readers proceed under a writer; writers serialize through SQLite's
file lock with ``busy_timeout`` backoff, and multi-statement read-modify-
write sections (queue claims, cell upserts) run inside ``BEGIN IMMEDIATE``
transactions via :meth:`StoreConnection.transaction`.

Time discipline: lease bookkeeping needs a wall clock that is comparable
*across worker processes* — Python's ``time.perf_counter()`` is not, and
``time.time()`` is banned repo-wide (``determinism.wall-clock``).  The store
therefore takes its clock from SQLite itself: :meth:`StoreConnection.now`
evaluates ``unixepoch('now')`` inside the database, so every worker sharing
a catalogue shares one clock.
"""

from __future__ import annotations

import sqlite3
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional, Sequence, Tuple

#: File name of the single-file catalogue, created next to campaign dirs.
CATALOG_NAME = "catalog.sqlite"

#: How long a writer waits on a locked database before giving up (ms).
BUSY_TIMEOUT_MS = 30_000


def catalog_path(root: Path) -> Path:
    """The catalogue file serving the campaign directories under ``root``."""
    return Path(root) / CATALOG_NAME


class StoreConnection:
    """A configured SQLite connection: WAL, busy timeout, parameterized SQL.

    Use as a context manager (closes on exit) and do all multi-statement
    writes under :meth:`transaction`::

        with StoreConnection(path) as conn:
            with conn.transaction():
                conn.execute("UPDATE jobs SET state = ? WHERE rowid = ?",
                             ("done", job_rowid))
    """

    def __init__(self, path: Path, timeout_ms: int = BUSY_TIMEOUT_MS):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._txn_depth = 0
        # The sole sanctioned sqlite3.connect in the repository (see module
        # docs; the artifacts.store-connection lint rule enforces this).
        self._conn = sqlite3.connect(self.path, timeout=timeout_ms / 1000.0,
                                     isolation_level=None)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA busy_timeout=%d" % timeout_ms)
        self._conn.execute("PRAGMA foreign_keys=ON")
        self._conn.execute("PRAGMA synchronous=NORMAL")

    # ------------------------------------------------------------ execution
    def execute(self, sql: str, params: Sequence[Any] = ()) -> sqlite3.Cursor:
        """Run one parameterized statement (SQL must be a literal string)."""
        return self._conn.execute(sql, tuple(params))

    def executemany(self, sql: str,
                    rows: Iterable[Sequence[Any]]) -> sqlite3.Cursor:
        return self._conn.executemany(sql, [tuple(row) for row in rows])

    def executescript(self, script: str) -> None:
        """Apply a DDL script (schema creation only)."""
        self._conn.executescript(script)

    def fetchall(self, sql: str, params: Sequence[Any] = ()) -> list:
        return self.execute(sql, params).fetchall()

    def fetchone(self, sql: str,
                 params: Sequence[Any] = ()) -> Optional[sqlite3.Row]:
        return self.execute(sql, params).fetchone()

    def scalar(self, sql: str, params: Sequence[Any] = ()) -> Any:
        row = self.fetchone(sql, params)
        return None if row is None else row[0]

    # ---------------------------------------------------------- transactions
    @contextmanager
    def transaction(self, immediate: bool = True) -> Iterator[None]:
        """``BEGIN [IMMEDIATE] ... COMMIT`` (rolls back on any exception).

        ``immediate=True`` (the default) takes the write lock up front, so a
        read-modify-write section (a queue claim) cannot interleave with
        another worker's.

        Re-entrant: a ``transaction()`` opened while another is active on the
        same connection joins the outer one instead of issuing a nested
        ``BEGIN`` (SQLite has no nested transactions).  The server's
        exactly-once mutation endpoints rely on this — the idempotency-key
        lookup, the queue transition, and the catalogue cell upsert all
        commit (or roll back) as one unit even though each helper guards
        itself with ``transaction()``.  An exception escaping any depth rolls
        the whole outermost transaction back.
        """
        if self._txn_depth > 0:
            self._txn_depth += 1
            try:
                yield
            finally:
                self._txn_depth -= 1
            return
        self.execute("BEGIN IMMEDIATE" if immediate else "BEGIN")
        self._txn_depth = 1
        try:
            yield
        except BaseException:
            self._txn_depth = 0
            self.execute("ROLLBACK")
            raise
        self._txn_depth = 0
        self.execute("COMMIT")

    # ---------------------------------------------------------------- clock
    def now(self) -> int:
        """The catalogue's shared wall clock (unix seconds, evaluated in SQL).

        Workers on the same catalogue compare lease deadlines against this
        clock, never against a per-process Python clock.
        """
        return int(self.scalar("SELECT CAST(strftime('%s','now') AS INTEGER)"))

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "StoreConnection":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def connect(path: Path, timeout_ms: int = BUSY_TIMEOUT_MS) -> StoreConnection:
    """Open (creating if needed) the catalogue at ``path``, schema applied."""
    from repro.store.schema import ensure_schema

    conn = StoreConnection(path, timeout_ms=timeout_ms)
    ensure_schema(conn)
    return conn
