"""Backfill the catalogue from legacy artifacts: runs trees + BENCH files.

``repro store ingest`` makes the catalogue complete for repositories (and
CI artifact downloads) that predate it:

* **runs trees** — every ``runs/<id>/`` directory with a campaign manifest
  is registered with provenance (spec hash from the manifest; the ingest is
  marked as such), and each cell is recorded from its artifacts:
  ``result.json`` becomes a completed row (+ metrics), ``error.json`` a
  failed/timed-out cell with its cumulative attempt count, anything else
  stays pending.  Re-ingesting is idempotent — recording upserts;
* **bench files** — ``BENCH_throughput.json`` / ``BENCH_train.json``
  entries flatten into the ``bench`` table (one row per numeric metric,
  tagged with scenario/variant/num_envs/dtype), so ``repro query --bench``
  covers the perf trajectory.  Rows from the same source file are replaced
  on re-ingest; live benchmark emissions (``--catalog`` on the bench
  scripts) append via :func:`record_bench_entry` instead.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.runs.artifacts import CorruptArtifactError, load_json
from repro.runs.spec import ExperimentSpec
from repro.store.catalog import Catalog, catalog_path

#: result-row keys that are dimensions, not metrics, in a bench entry.
_BENCH_DIMENSIONS = ("workload", "mode", "num_envs", "dtype", "scenario")


# ---------------------------------------------------------------- runs trees
def ingest_runs_tree(catalog: Catalog, root: Path) -> Dict[str, int]:
    """Register every campaign directory under ``root`` in the catalogue."""
    root = Path(root)
    runs = cells = 0
    if not root.exists():
        return {"runs": 0, "cells": 0}
    for child in sorted(root.iterdir()):
        if not (child / "manifest.json").exists():
            continue
        try:
            count = _ingest_campaign(catalog, child)
        except CorruptArtifactError:
            continue  # quarantined by the loader; skip the damaged campaign
        runs += 1
        cells += count
    return {"runs": runs, "cells": cells}


def _ingest_campaign(catalog: Catalog, out_dir: Path) -> int:
    manifest = load_json(out_dir / "manifest.json")
    spec = ExperimentSpec.from_dict(manifest["experiment"])
    cell_entries = manifest.get("cells", [])
    catalog.record_campaign(
        out_dir.name, spec, manifest["scale"]["name"], manifest["seed"],
        out_dir, [entry["params"] for entry in cell_entries],
        slugs=[entry["slug"] for entry in cell_entries],
        manifest_version=manifest.get("version", 1),
        ingested_from=str(out_dir))
    recorded = 0
    for entry in cell_entries:
        cell_dir = out_dir / "cells" / entry["slug"]
        outcome = _cell_outcome(cell_dir)
        if outcome is None:
            continue
        catalog.record_cell(out_dir.name, entry["index"], entry["params"],
                            **outcome)
        recorded += 1
    return recorded


def _cell_outcome(cell_dir: Path) -> Optional[Dict[str, Any]]:
    """A cell's recorded outcome from its artifacts (None while pending)."""
    result_file = cell_dir / "result.json"
    if result_file.exists():
        try:
            payload = load_json(result_file)
        except CorruptArtifactError:
            return None
        if isinstance(payload, dict) and payload.get("row") is not None:
            return {"status": "completed", "row": payload["row"],
                    "elapsed_seconds": payload.get("elapsed_seconds")}
    error_file = cell_dir / "error.json"
    if error_file.exists():
        try:
            record = load_json(error_file)
        except CorruptArtifactError:
            return None
        return {"status": record.get("status", "failed"),
                "error": record.get("error"),
                "attempts": int(record.get("attempt", 0) or 0),
                "elapsed_seconds": record.get("elapsed_seconds")}
    return None


# --------------------------------------------------------------- bench files
def record_bench_entry(catalog: Catalog, entry: Mapping[str, Any],
                       source: str) -> int:
    """Append one benchmark entry's numeric metrics to the bench table."""
    rows = _flatten_bench_entry(entry, source)
    with catalog.conn.transaction():
        catalog.conn.executemany(
            "INSERT INTO bench (benchmark, scenario, variant, num_envs,"
            " dtype, key, value, timestamp, source)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)", rows)
    return len(rows)


def ingest_bench_file(catalog: Catalog, path: Path,
                      source: Optional[str] = None) -> int:
    """(Re-)ingest a BENCH_*.json trajectory file; replaces its old rows."""
    path = Path(path)
    source = source or path.name
    data = json.loads(path.read_text())
    entries = data.get("entries", []) if isinstance(data, dict) else []
    rows: List[tuple] = []
    for entry in entries:
        rows.extend(_flatten_bench_entry(entry, source))
    with catalog.conn.transaction():
        catalog.conn.execute("DELETE FROM bench WHERE source = ?", (source,))
        catalog.conn.executemany(
            "INSERT INTO bench (benchmark, scenario, variant, num_envs,"
            " dtype, key, value, timestamp, source)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)", rows)
    return len(rows)


def _flatten_bench_entry(entry: Mapping[str, Any], source: str) -> List[tuple]:
    """``bench`` rows for one trajectory entry (both BENCH file shapes)."""
    benchmark = str(entry.get("benchmark", "unknown"))
    timestamp = entry.get("timestamp")
    entry_scenario = entry.get("scenario")
    config = entry.get("config", {}) if isinstance(entry.get("config"),
                                                   Mapping) else {}
    entry_num_envs = config.get("num_envs")
    rows: List[tuple] = []

    def add(key: str, value: Any, scenario: Any = None, variant: Any = None,
            num_envs: Any = None, dtype: Any = None) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        rows.append((benchmark, scenario or entry_scenario, variant,
                     int(num_envs) if num_envs is not None else None,
                     dtype, key, float(value), timestamp, source))

    for result in entry.get("results", []):
        if not isinstance(result, Mapping):
            continue
        variant = result.get("workload") or result.get("mode")
        num_envs = result.get("num_envs", entry_num_envs)
        for key, value in result.items():
            if key in _BENCH_DIMENSIONS:
                continue
            add(key, value, scenario=result.get("scenario"), variant=variant,
                num_envs=num_envs, dtype=result.get("dtype"))
    for key, value in entry.items():
        if key in ("results", "config", "speedups"):
            continue
        add(key, value)
    for key, value in (entry.get("speedups") or {}).items():
        add(f"speedups.{key}", value)
    return rows


# ------------------------------------------------------------------ frontend
def ingest(root: os.PathLike = "runs",
           bench_files: Sequence[os.PathLike] = (),
           catalog_file: Optional[os.PathLike] = None) -> Dict[str, Any]:
    """Backfill one catalogue from a runs root and optional BENCH files."""
    path = (Path(catalog_file) if catalog_file is not None
            else catalog_path(Path(root)))
    with Catalog(path) as catalog:
        summary = ingest_runs_tree(catalog, Path(root))
        bench_rows = 0
        for bench in bench_files:
            bench_rows += ingest_bench_file(catalog, Path(bench))
        summary["bench_rows"] = bench_rows
        summary["catalog"] = str(path)
    return summary


__all__ = [
    "ingest",
    "ingest_bench_file",
    "ingest_runs_tree",
    "record_bench_entry",
]
