"""The cooperative job queue: worker leases over catalogue cells.

A submitted campaign becomes one ``jobs`` row per cell.  N independent
``repro work`` processes drain the queue cooperatively:

* **claim** — a worker takes the lowest (run, cell) job that is ``pending``
  or whose lease has expired, inside one ``BEGIN IMMEDIATE`` transaction, so
  two workers can never hold the same cell.  Claiming an expired lease is a
  **reclaim** (the previous worker crashed or stalled) and is recorded as
  such in ``lease_events``;
* **heartbeat** — while a cell executes, the worker extends its lease every
  ``lease_ttl/3`` seconds on the catalogue's shared clock.  A worker that
  dies stops heartbeating, its lease expires, and the cell is claimable
  again — the queue-level analogue of the runner's watchdog;
* **completion/release** — a finished cell marks its job ``done`` together
  with the catalogue cell row; a failed cell goes back to ``pending`` until
  the queue-level attempt budget is exhausted, then ``failed``.

Every transition appends to ``lease_events`` (claimed / heartbeat /
completed / failed / released / reclaimed), which is what the chaos tests
assert against when they kill a worker mid-cell.

Determinism: the queue decides only *which worker* runs a cell, never *what*
the cell computes — cells are deterministic in (params, scale, seed) and
idempotent through the artifact tree (PR 7), so any interleaving of workers
produces rows bit-identical to serial execution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.rl.stats import dump_json
from repro.store.catalog import Catalog

#: Queue-level attempt budget per cell (re-claims after failures/reclaims).
DEFAULT_JOB_ATTEMPTS = 3

#: Default lease time-to-live in seconds (heartbeats extend it).
DEFAULT_LEASE_TTL = 60


@dataclass(frozen=True)
class Job:
    """One claimed queue job: the cell payload plus lease bookkeeping."""

    run_id: str
    cell_index: int
    payload: Dict[str, Any]
    attempts: int
    reclaimed_from: Optional[str] = None


class JobQueue:
    """Lease-based claim/heartbeat/complete operations over one catalogue."""

    def __init__(self, catalog: Catalog,
                 max_job_attempts: int = DEFAULT_JOB_ATTEMPTS):
        self.catalog = catalog
        self.conn = catalog.conn
        self.max_job_attempts = int(max_job_attempts)

    # ---------------------------------------------------------------- submit
    def submit(self, run_id: str,
               payloads: Sequence[Mapping[str, Any]]) -> int:
        """Enqueue one job per cell payload (existing jobs are kept as-is)."""
        with self.conn.transaction():
            cursor = self.conn.executemany(
                "INSERT OR IGNORE INTO jobs (run_id, cell_index, state,"
                " payload_json) VALUES (?, ?, 'pending', ?)",
                [(run_id, int(payload["index"]), dump_json(payload))
                 for payload in payloads])
        return cursor.rowcount if cursor.rowcount is not None else 0

    # ----------------------------------------------------------------- claim
    def claim(self, worker: str, run_id: Optional[str] = None,
              lease_ttl: int = DEFAULT_LEASE_TTL) -> Optional[Job]:
        """Atomically claim the next available job (None when nothing is)."""
        with self.conn.transaction():
            row = self.conn.fetchone(
                "SELECT run_id, cell_index, state, worker, attempts,"
                " payload_json FROM jobs WHERE (state = 'pending'"
                " OR (state = 'leased' AND lease_expires_unix <"
                "     CAST(strftime('%s','now') AS INTEGER)))"
                " AND (? IS NULL OR run_id = ?)"
                " ORDER BY run_id, cell_index LIMIT 1", (run_id, run_id))
            if row is None:
                return None
            reclaimed_from = row["worker"] if row["state"] == "leased" else None
            self.conn.execute(
                "UPDATE jobs SET state = 'leased', worker = ?,"
                " lease_expires_unix ="
                "   CAST(strftime('%s','now') AS INTEGER) + ?,"
                " attempts = attempts + 1"
                " WHERE run_id = ? AND cell_index = ?",
                (worker, int(lease_ttl), row["run_id"], row["cell_index"]))
            event = "reclaimed" if reclaimed_from is not None else "claimed"
            detail = (f"lease expired on worker {reclaimed_from}"
                      if reclaimed_from is not None else None)
            self._event(row["run_id"], row["cell_index"], worker, event,
                        detail)
        return Job(run_id=row["run_id"], cell_index=int(row["cell_index"]),
                   payload=json.loads(row["payload_json"]),
                   attempts=int(row["attempts"]) + 1,
                   reclaimed_from=reclaimed_from)

    # ------------------------------------------------------------- heartbeat
    def heartbeat(self, job: Job, worker: str,
                  lease_ttl: int = DEFAULT_LEASE_TTL) -> bool:
        """Extend the lease; False means the lease was lost (reclaimed)."""
        with self.conn.transaction():
            cursor = self.conn.execute(
                "UPDATE jobs SET lease_expires_unix ="
                "   CAST(strftime('%s','now') AS INTEGER) + ?"
                " WHERE run_id = ? AND cell_index = ? AND worker = ?"
                " AND state = 'leased'",
                (int(lease_ttl), job.run_id, job.cell_index, worker))
            alive = cursor.rowcount == 1
            if alive:
                self._event(job.run_id, job.cell_index, worker, "heartbeat",
                            None)
        return alive

    def owns(self, job: Job, worker: str) -> bool:
        """Whether ``worker`` still holds the live lease on ``job``."""
        return self.conn.scalar(
            "SELECT 1 FROM jobs WHERE run_id = ? AND cell_index = ?"
            " AND worker = ? AND state = 'leased'",
            (job.run_id, job.cell_index, worker)) is not None

    # ------------------------------------------------------------ completion
    def complete(self, job: Job, worker: str) -> bool:
        """Mark a job done (only if this worker still owns its lease)."""
        with self.conn.transaction():
            cursor = self.conn.execute(
                "UPDATE jobs SET state = 'done', lease_expires_unix = NULL"
                " WHERE run_id = ? AND cell_index = ? AND worker = ?"
                " AND state = 'leased'",
                (job.run_id, job.cell_index, worker))
            done = cursor.rowcount == 1
            if done:
                self._event(job.run_id, job.cell_index, worker, "completed",
                            None)
        return done

    def release(self, job: Job, worker: str, error: Optional[str] = None) -> str:
        """Give a failed/interrupted job back (or retire it past the budget).

        Returns the job's new state: ``"pending"`` (re-claimable) or
        ``"failed"`` (queue-level attempt budget exhausted).
        """
        state = ("failed" if job.attempts >= self.max_job_attempts
                 else "pending")
        with self.conn.transaction():
            cursor = self.conn.execute(
                "UPDATE jobs SET state = ?, worker = NULL,"
                " lease_expires_unix = NULL WHERE run_id = ?"
                " AND cell_index = ? AND worker = ? AND state = 'leased'",
                (state, job.run_id, job.cell_index, worker))
            if cursor.rowcount == 1:
                self._event(job.run_id, job.cell_index, worker,
                            "failed" if state == "failed" else "released",
                            error)
        return state

    # ------------------------------------------------------------ inspection
    def counts(self, run_id: Optional[str] = None) -> Dict[str, int]:
        """Jobs per state (optionally for one run)."""
        rows = self.conn.fetchall(
            "SELECT state, COUNT(*) AS n FROM jobs"
            " WHERE (? IS NULL OR run_id = ?) GROUP BY state",
            (run_id, run_id))
        return {row["state"]: int(row["n"]) for row in rows}

    def outstanding(self, run_id: Optional[str] = None) -> int:
        """Jobs not yet done/failed — the drain-loop exit condition."""
        counts = self.counts(run_id)
        return counts.get("pending", 0) + counts.get("leased", 0)

    def lease_events(self, run_id: Optional[str] = None) -> List[Dict[str, Any]]:
        rows = self.conn.fetchall(
            "SELECT event_id, run_id, cell_index, worker, event, detail,"
            " at_unix FROM lease_events WHERE (? IS NULL OR run_id = ?)"
            " ORDER BY event_id", (run_id, run_id))
        return [dict(row) for row in rows]

    # -------------------------------------------------------------- internal
    def _event(self, run_id: str, cell_index: int, worker: Optional[str],
               event: str, detail: Optional[str]) -> None:
        self.conn.execute(
            "INSERT INTO lease_events (run_id, cell_index, worker, event,"
            " detail, at_unix) VALUES (?, ?, ?, ?, ?,"
            " CAST(strftime('%s','now') AS INTEGER))",
            (run_id, int(cell_index), worker, event, detail))
