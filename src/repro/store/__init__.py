"""The campaign service's storage layer: catalogue, queue, serve, query.

``repro.store`` turns the ad-hoc ``runs/`` JSON trees into a long-lived,
multi-tenant, queryable system (ROADMAP open item 3):

* a **single-file SQLite catalogue** (``catalog.sqlite``, WAL mode) of
  runs, cells, metric rows, bench rows, and provenance, populated
  transactionally by the runner alongside the artifact tree and
  backfillable via ``repro store ingest``;
* a **cooperative job queue** with worker leases (heartbeat + TTL), so N
  independent ``repro work`` processes drain one campaign with rows
  bit-identical to serial execution and crashed workers' cells are
  reclaimed;
* ``repro serve`` — a stdlib HTTP JSON API for submit/status/stream — and
  ``repro query`` — cross-run aggregation ("accuracy by defense across all
  runs") with table/json/csv output.

The artifact tree stays the source of truth for resume (checkpoints, memos,
quarantine); the catalogue is the durable, queryable index over it.  All
SQL goes through :mod:`repro.store.connection` — literal statements, bound
parameters — which the ``artifacts.store-connection`` lint rule enforces.

Import layout: this package only pulls in the storage core.  The modules
that reach back into the runner (:mod:`repro.store.worker`,
:mod:`repro.store.server`, :mod:`repro.store.ingest`) are imported lazily by
their callers (the CLI, tests) to keep ``repro.runs`` -> ``repro.store``
imports cycle-free.
"""

from repro.store.catalog import Catalog, catalog_path, code_version, spec_hash
from repro.store.client import (
    ChaosTransport,
    FatalRequestError,
    RetryableTransportError,
    StoreClient,
    StoreClientError,
)
from repro.store.connection import CATALOG_NAME, StoreConnection, connect
from repro.store.query import (
    aggregate_bench,
    aggregate_metric,
    format_rows,
    list_bench_keys,
    list_metric_keys,
)
from repro.store.queue import Job, JobQueue
from repro.store.schema import SCHEMA_VERSION, ensure_schema

__all__ = [
    "CATALOG_NAME",
    "Catalog",
    "ChaosTransport",
    "FatalRequestError",
    "Job",
    "JobQueue",
    "RetryableTransportError",
    "SCHEMA_VERSION",
    "StoreClient",
    "StoreClientError",
    "StoreConnection",
    "aggregate_bench",
    "aggregate_metric",
    "catalog_path",
    "code_version",
    "connect",
    "ensure_schema",
    "format_rows",
    "list_bench_keys",
    "list_metric_keys",
    "spec_hash",
]
