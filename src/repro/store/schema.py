"""Catalogue schema: runs, cells, metrics, bench rows, provenance, queue.

One single-file SQLite database (WAL mode) holds everything the campaign
service knows:

``runs``
    One row per campaign: experiment/scale/seed, the artifact directory, the
    full :class:`~repro.runs.spec.ExperimentSpec` JSON, and a coarse status
    derived from its cells.
``provenance``
    What produced a run: code version (git commit when available), the
    SHA-256 of the spec JSON, the campaign seed, and the fault-plan hash (if
    chaos was injected) — enough to detect "same campaign id, different
    code/spec" across ingests.
``cells``
    One row per campaign cell: params, status, cumulative attempt count,
    elapsed seconds, and the finished row JSON (the same bytes that live in
    the cell's ``result.json``).
``metrics``
    The cells' rows exploded into key/value pairs (numbers in ``value_num``,
    everything else in ``value_text``), plus the cell params — this is the
    table ``repro query`` aggregates across runs.
``bench``
    The perf trajectory: every ``BENCH_throughput.json`` /
    ``BENCH_train.json`` entry flattened into (benchmark, scenario, variant,
    num_envs, dtype, key, value) rows, ingested from the checked-in files or
    recorded live by the benchmark scripts.
``jobs`` / ``lease_events``
    The cooperative work queue: one job per submitted cell with a lease
    (worker id + expiry on the catalogue's clock), and an append-only log of
    every lease transition (claimed/heartbeat/completed/failed/released/
    reclaimed) that the chaos tests assert against.
``idempotency``
    Exactly-once bookkeeping for the HTTP lease protocol (schema v2): every
    mutating request carries a client-generated idempotency key, and the
    server records ``key -> response`` in the same transaction that applies
    the mutation.  A retried request after a lost response (or a duplicated
    delivery from the network) replays the recorded response instead of
    re-applying — which is what makes a retried ``complete`` unable to
    double-apply.
``telemetry_points`` / ``telemetry_spans``
    Observability (schema v3): periodic flushes from ``repro.telemetry``.
    Points are *delta* snapshots per flush interval — counters reset after
    every snapshot, so summing ``value`` over rows gives the true total;
    gauges are last-write-wins; histograms store their preallocated bucket
    layout as JSON in ``buckets_json``.  Spans are individual
    ``time.perf_counter`` timings (name + labels + seconds).  ``at_unix``
    is stamped by the catalogue's SQL clock at persist time, never by the
    reporting process's wall clock.  The ``/api/workers`` roster joins
    these tables with ``jobs`` and ``lease_events``.

Schema changes bump :data:`SCHEMA_VERSION`; ``ensure_schema`` refuses to
open a catalogue written by a newer version, and upgrades older catalogues
in place (the DDL is idempotent, so re-applying it adds any missing
tables).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.connection import StoreConnection

SCHEMA_VERSION = 3

#: Job states in the cooperative queue.
JOB_STATES = ("pending", "leased", "done", "failed")

#: Lease transitions recorded in ``lease_events``.
LEASE_EVENTS = ("claimed", "heartbeat", "completed", "failed", "released",
                "reclaimed")

SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS runs (
    run_id      TEXT PRIMARY KEY,
    experiment  TEXT NOT NULL,
    scale       TEXT NOT NULL,
    seed        INTEGER NOT NULL,
    out_dir     TEXT NOT NULL,
    spec_json   TEXT NOT NULL,
    cells       INTEGER NOT NULL,
    status      TEXT NOT NULL DEFAULT 'pending',
    created_unix INTEGER NOT NULL,
    updated_unix INTEGER NOT NULL
);

CREATE TABLE IF NOT EXISTS provenance (
    run_id          TEXT PRIMARY KEY REFERENCES runs(run_id),
    code_version    TEXT NOT NULL,
    spec_hash       TEXT NOT NULL,
    seed            INTEGER NOT NULL,
    fault_plan_hash TEXT,
    manifest_version INTEGER NOT NULL,
    ingested_from   TEXT
);

CREATE TABLE IF NOT EXISTS cells (
    run_id      TEXT NOT NULL REFERENCES runs(run_id),
    cell_index  INTEGER NOT NULL,
    slug        TEXT NOT NULL,
    params_json TEXT NOT NULL,
    status      TEXT NOT NULL DEFAULT 'pending',
    attempts    INTEGER NOT NULL DEFAULT 0,
    elapsed_seconds REAL,
    row_json    TEXT,
    error       TEXT,
    recorded_unix INTEGER,
    PRIMARY KEY (run_id, cell_index)
);

CREATE TABLE IF NOT EXISTS metrics (
    run_id     TEXT NOT NULL,
    cell_index INTEGER NOT NULL,
    key        TEXT NOT NULL,
    value_num  REAL,
    value_text TEXT,
    PRIMARY KEY (run_id, cell_index, key)
);
CREATE INDEX IF NOT EXISTS metrics_by_key ON metrics(key);

CREATE TABLE IF NOT EXISTS bench (
    bench_id  INTEGER PRIMARY KEY AUTOINCREMENT,
    benchmark TEXT NOT NULL,
    scenario  TEXT,
    variant   TEXT,
    num_envs  INTEGER,
    dtype     TEXT,
    key       TEXT NOT NULL,
    value     REAL NOT NULL,
    timestamp TEXT,
    source    TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS bench_by_key ON bench(benchmark, key);

CREATE TABLE IF NOT EXISTS jobs (
    run_id      TEXT NOT NULL REFERENCES runs(run_id),
    cell_index  INTEGER NOT NULL,
    state       TEXT NOT NULL DEFAULT 'pending',
    worker      TEXT,
    lease_expires_unix INTEGER,
    attempts    INTEGER NOT NULL DEFAULT 0,
    payload_json TEXT NOT NULL,
    PRIMARY KEY (run_id, cell_index)
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs(state);

CREATE TABLE IF NOT EXISTS lease_events (
    event_id   INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id     TEXT NOT NULL,
    cell_index INTEGER NOT NULL,
    worker     TEXT,
    event      TEXT NOT NULL,
    detail     TEXT,
    at_unix    INTEGER NOT NULL
);

CREATE TABLE IF NOT EXISTS idempotency (
    key           TEXT PRIMARY KEY,
    endpoint      TEXT NOT NULL,
    response_json TEXT NOT NULL,
    at_unix       INTEGER NOT NULL
);

CREATE TABLE IF NOT EXISTS telemetry_points (
    point_id    INTEGER PRIMARY KEY AUTOINCREMENT,
    worker      TEXT NOT NULL,
    host        TEXT,
    pid         INTEGER,
    name        TEXT NOT NULL,
    kind        TEXT NOT NULL,
    value       REAL NOT NULL,
    count       INTEGER,
    buckets_json TEXT,
    labels_json TEXT,
    at_unix     INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS telemetry_points_by_name
    ON telemetry_points(name, at_unix);
CREATE INDEX IF NOT EXISTS telemetry_points_by_worker
    ON telemetry_points(worker, at_unix);

CREATE TABLE IF NOT EXISTS telemetry_spans (
    span_id     INTEGER PRIMARY KEY AUTOINCREMENT,
    worker      TEXT NOT NULL,
    name        TEXT NOT NULL,
    labels_json TEXT,
    seconds     REAL NOT NULL,
    at_unix     INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS telemetry_spans_by_name
    ON telemetry_spans(name, at_unix);
"""


def ensure_schema(conn: "StoreConnection") -> None:
    """Create/upgrade the schema; refuse a catalogue from the future."""
    conn.executescript(SCHEMA_SQL)
    recorded = conn.scalar("SELECT value FROM meta WHERE key = 'schema_version'")
    if recorded is None or int(recorded) < SCHEMA_VERSION:
        # Fresh catalogue, or an older one: the idempotent DDL above already
        # added any tables this version introduced, so only the version
        # stamp needs updating.
        conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) "
            "VALUES ('schema_version', ?)", (str(SCHEMA_VERSION),))
        return
    if int(recorded) > SCHEMA_VERSION:
        raise RuntimeError(
            f"catalogue {conn.path} has schema version {recorded}, newer than "
            f"this code's {SCHEMA_VERSION}; upgrade the repro package")
