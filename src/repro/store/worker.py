"""Campaign submission and the ``repro work`` drain loop.

``submit_campaign`` turns an experiment into durable queue state: it writes
the campaign's ``manifest.json`` (exactly as ``repro.run()`` would), records
the run + provenance + pending cells in the catalogue, and enqueues one job
per cell.  Nothing executes yet — execution belongs to workers.

``work()`` is one worker process: claim a job, execute its cell through the
runner's own ``_attempt_cell`` path (same artifact tree, same
strict/lenient/retry/fault semantics as ``repro.run()``), heartbeat the
lease from a background thread while the cell runs, then mark the job done
together with the catalogue cell row.  N workers on one catalogue drain a
campaign cooperatively; a killed worker's lease expires and its cell is
reclaimed and re-run from its last checkpoint, so the drained campaign is
bit-identical to a serial ``repro.run()`` of the same experiment.

The drain loop exits when the target queue has no outstanding jobs (or
immediately claims again while there are).  ``watch=True`` keeps the worker
alive polling for new submissions — the long-lived service mode behind
``repro serve``.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.experiments.common import ScaleLike, resolve_scale
from repro.runs.artifacts import atomic_write_json, load_json
from repro.runs.faults import resolve_fault_plan
from repro.runs.registry import ExperimentLike, resolve_experiment
from repro.runs.runner import (
    _attempt_cell,
    _manifest_payload,
    campaign_id,
    cell_payloads,
    cell_slug,
)
from repro.store.catalog import Catalog, catalog_path
from repro.store.queue import (
    DEFAULT_JOB_ATTEMPTS,
    DEFAULT_LEASE_TTL,
    Job,
    JobQueue,
)


@dataclass
class Submission:
    """What ``submit_campaign`` returns: where the campaign lives."""

    run_id: str
    out_dir: Path
    cells: int
    enqueued: int

    def to_dict(self) -> Dict[str, Any]:
        return {"run_id": self.run_id, "out_dir": str(self.out_dir),
                "cells": self.cells, "enqueued": self.enqueued}


def submit_campaign(experiment: ExperimentLike,
                    scale: Optional[ScaleLike] = None,
                    seed: Optional[int] = None,
                    root: os.PathLike = "runs",
                    out_dir: Optional[os.PathLike] = None,
                    checkpoint_every: int = 2,
                    max_attempts: int = 1, retry_backoff: float = 0.25,
                    fault_plan: Any = None,
                    catalog: Optional[Catalog] = None) -> Submission:
    """Register a campaign in the catalogue and enqueue its cells.

    Safe to call twice: the manifest check refuses a *different* campaign in
    the same directory, existing cell/job rows are kept, and already-finished
    cells complete instantly when a worker claims them (their ``result.json``
    is the memo).
    """
    from repro.runs.runner import _check_manifest  # late: keeps import graph flat

    spec = resolve_experiment(experiment)
    scale = resolve_scale(scale if scale is not None else spec.default_scale)
    seed = spec.base_seed if seed is None else int(seed)
    plan = resolve_fault_plan(fault_plan)
    root = Path(root)
    out_dir = (Path(out_dir) if out_dir is not None
               else root / campaign_id(spec.experiment_id, scale, seed))
    out_dir.mkdir(parents=True, exist_ok=True)

    cells = spec.cells(scale)
    manifest = _manifest_payload(spec, scale, seed, cells)
    manifest_file = out_dir / "manifest.json"
    if manifest_file.exists():
        _check_manifest(load_json(manifest_file), manifest, out_dir)
    else:
        atomic_write_json(manifest_file, manifest, indent=2)

    payloads = cell_payloads(spec, scale, seed, out_dir, cells,
                             checkpoint_every=checkpoint_every,
                             fault_plan=plan, max_attempts=max_attempts,
                             retry_backoff=retry_backoff)
    run_id = out_dir.name
    owns_catalog = catalog is None
    catalog = catalog if catalog is not None else Catalog(
        catalog_path(out_dir.parent))
    try:
        catalog.record_campaign(
            run_id, spec, scale.name, seed, out_dir, cells,
            slugs=[cell_slug(i, params) for i, params in enumerate(cells)],
            fault_plan=plan.to_dict() if plan is not None else None,
            manifest_version=manifest["version"])
        enqueued = JobQueue(catalog).submit(run_id, payloads)
    finally:
        if owns_catalog:
            catalog.close()
    return Submission(run_id=run_id, out_dir=out_dir, cells=len(cells),
                      enqueued=enqueued)


@dataclass
class WorkerSummary:
    """One worker's account of a drain loop."""

    worker_id: str
    completed: int = 0
    failed: int = 0
    released: int = 0
    reclaimed: int = 0
    cells: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"worker_id": self.worker_id, "completed": self.completed,
                "failed": self.failed, "released": self.released,
                "reclaimed": self.reclaimed, "cells": self.cells}


class _Heartbeat:
    """Background lease renewal while a cell executes.

    Runs on its own catalogue connection (SQLite connections are
    thread-bound); only touches the lease row, never the cell's computation,
    so worker results stay deterministic.
    """

    def __init__(self, path: Path, job: Job, worker_id: str, lease_ttl: int):
        self._path = path
        self._job = job
        self._worker_id = worker_id
        self._ttl = int(lease_ttl)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        interval = max(1.0, self._ttl / 3.0)
        with Catalog(self._path) as catalog:
            queue = JobQueue(catalog)
            while not self._stop.wait(interval):
                if not queue.heartbeat(self._job, self._worker_id, self._ttl):
                    return  # lease lost; the claim's new owner re-runs the cell

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _finalize_run(catalog: Catalog, out_dir: Path) -> None:
    """Write ``results.json`` once every cell of a drained run completed.

    Rows come from the cells' ``result.json`` files (the artifact tree is
    the source of truth), matching ``repro.run()`` byte-for-byte.  Multiple
    workers may race here; the content is deterministic and the write
    atomic, so the race is harmless.
    """
    from repro.runs.runner import _load_cached_row

    manifest = load_json(out_dir / "manifest.json")
    rows = [_load_cached_row(out_dir / "cells" / cell["slug"] / "result.json")
            for cell in manifest["cells"]]
    if any(row is None for row in rows):
        return
    atomic_write_json(out_dir / "results.json", {
        "experiment": manifest["experiment"]["experiment_id"],
        "scale": manifest["scale"]["name"], "seed": manifest["seed"],
        "rows": rows,
    }, indent=2)


def work(root: os.PathLike = "runs", run_id: Optional[str] = None,
         worker_id: Optional[str] = None,
         lease_ttl: int = DEFAULT_LEASE_TTL,
         max_job_attempts: int = DEFAULT_JOB_ATTEMPTS,
         poll_seconds: float = 0.5, watch: bool = False,
         max_cells: Optional[int] = None,
         catalog_file: Optional[os.PathLike] = None) -> WorkerSummary:
    """Drain the queue at ``root`` (optionally one campaign) as one worker."""
    worker_id = worker_id or default_worker_id()
    path = Path(catalog_file) if catalog_file is not None else catalog_path(
        Path(root))
    summary = WorkerSummary(worker_id=worker_id)
    with Catalog(path) as catalog:
        queue = JobQueue(catalog, max_job_attempts=max_job_attempts)
        while True:
            if max_cells is not None and len(summary.cells) >= max_cells:
                break
            job = queue.claim(worker_id, run_id=run_id, lease_ttl=lease_ttl)
            if job is None:
                if watch or queue.outstanding(run_id):
                    # Another worker holds a live lease (or new work may
                    # arrive): wait instead of abandoning the drain.
                    time.sleep(poll_seconds)
                    continue
                break
            if job.reclaimed_from is not None:
                summary.reclaimed += 1
            with _Heartbeat(path, job, worker_id, lease_ttl):
                outcome = _attempt_cell(dict(job.payload))
            status = outcome.get("status", "failed")
            cell_dir = Path(job.payload["cell_dir"])
            record = {"index": job.cell_index, "run_id": job.run_id,
                      "status": status, "attempts": job.attempts}
            if status in ("completed", "cached"):
                if queue.complete(job, worker_id):
                    catalog.record_cell(
                        job.run_id, job.cell_index, job.payload["params"],
                        status, row=outcome.get("row"),
                        attempts=outcome.get("attempt", job.attempts),
                        elapsed_seconds=_elapsed_from(cell_dir))
                    summary.completed += 1
                # else: the lease was reclaimed while we ran; the new owner
                # re-executes the (idempotent) cell and records it.
            else:
                new_state = queue.release(job, worker_id,
                                          error=outcome.get("error"))
                catalog.record_cell(
                    job.run_id, job.cell_index, job.payload["params"],
                    status, error=outcome.get("error"),
                    attempts=outcome.get("attempt", job.attempts))
                if new_state == "failed":
                    summary.failed += 1
                else:
                    summary.released += 1
                record["error"] = outcome.get("error")
            summary.cells.append(record)
            if queue.outstanding(job.run_id) == 0:
                _finalize_run(catalog, Path(job.payload["out_dir"]))
    return summary


def _elapsed_from(cell_dir: Path) -> Optional[float]:
    """The cell's recorded wall-clock seconds (from its result.json)."""
    try:
        payload = load_json(cell_dir / "result.json")
    except Exception:
        return None
    value = payload.get("elapsed_seconds") if isinstance(payload, dict) else None
    return float(value) if isinstance(value, (int, float)) else None


__all__ = [
    "Submission",
    "WorkerSummary",
    "default_worker_id",
    "submit_campaign",
    "work",
]
