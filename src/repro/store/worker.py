"""Campaign submission and the ``repro work`` drain loop (local + remote).

``submit_campaign`` turns an experiment into durable queue state: it writes
the campaign's ``manifest.json`` (exactly as ``repro.run()`` would), records
the run + provenance + pending cells in the catalogue, and enqueues one job
per cell.  Nothing executes yet — execution belongs to workers.

``work()`` is one worker process: claim a job, execute its cell through the
runner's own ``_attempt_cell`` path (same artifact tree, same
strict/lenient/retry/fault semantics as ``repro.run()``), heartbeat the
lease from a background thread while the cell runs, then mark the job done
together with the catalogue cell row.  N workers on one catalogue drain a
campaign cooperatively; a killed worker's lease expires and its cell is
reclaimed and re-run, so the drained campaign is bit-identical to a serial
``repro.run()`` of the same experiment.

Two queue backends share that loop:

* **local** (the default): the worker opens the catalogue file directly —
  same-host draining, exactly as in PR 8;
* **remote** (``server="http://host:port"``): the worker speaks the lease
  protocol over HTTP through :class:`~repro.store.client.StoreClient` —
  deadline, bounded deterministic retries, idempotency keys — and never
  touches the catalogue.  Cell artifacts land under a *local* root
  (payload paths are remapped per host); the finished row is uploaded with
  ``complete`` and the **server** materializes ``results.json`` from the
  catalogue.  Cells are deterministic in (params, scale, seed), so a cell
  reclaimed across hosts recomputes the identical row without any shared
  filesystem.

Signals: SIGTERM/SIGINT interrupt the drain loop cleanly — the worker
releases its current lease (recorded as ``released`` in ``lease_events``,
job back to ``pending``), marks its summary ``interrupted``, and the CLI
exits non-zero.  No cell is ever left leased to a dead worker longer than
the signal handling takes.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro import telemetry
from repro.experiments.common import ScaleLike, resolve_scale
from repro.runs.artifacts import atomic_write_json, load_json
from repro.runs.faults import resolve_fault_plan, resolve_network_chaos_plan
from repro.runs.registry import ExperimentLike, resolve_experiment
from repro.runs.runner import (
    _attempt_cell,
    _manifest_payload,
    campaign_id,
    cell_payloads,
    cell_slug,
)
from repro.store.catalog import Catalog, catalog_path
from repro.store.client import (
    DEFAULT_BACKOFF_SECONDS,
    DEFAULT_MAX_RETRIES,
    DEFAULT_TIMEOUT_SECONDS,
    ChaosTransport,
    FatalRequestError,
    RetryableTransportError,
    StoreClient,
)
from repro.store.queue import (
    DEFAULT_JOB_ATTEMPTS,
    DEFAULT_LEASE_TTL,
    Job,
    JobQueue,
)


@dataclass
class Submission:
    """What ``submit_campaign`` returns: where the campaign lives."""

    run_id: str
    out_dir: Path
    cells: int
    enqueued: int

    def to_dict(self) -> Dict[str, Any]:
        return {"run_id": self.run_id, "out_dir": str(self.out_dir),
                "cells": self.cells, "enqueued": self.enqueued}


def submit_campaign(experiment: ExperimentLike,
                    scale: Optional[ScaleLike] = None,
                    seed: Optional[int] = None,
                    root: os.PathLike = "runs",
                    out_dir: Optional[os.PathLike] = None,
                    checkpoint_every: int = 2,
                    max_attempts: int = 1, retry_backoff: float = 0.25,
                    fault_plan: Any = None,
                    catalog: Optional[Catalog] = None) -> Submission:
    """Register a campaign in the catalogue and enqueue its cells.

    Safe to call twice: the manifest check refuses a *different* campaign in
    the same directory, existing cell/job rows are kept, and already-finished
    cells complete instantly when a worker claims them (their ``result.json``
    is the memo).
    """
    from repro.runs.runner import _check_manifest  # late: keeps import graph flat

    spec = resolve_experiment(experiment)
    scale = resolve_scale(scale if scale is not None else spec.default_scale)
    seed = spec.base_seed if seed is None else int(seed)
    plan = resolve_fault_plan(fault_plan)
    root = Path(root)
    out_dir = (Path(out_dir) if out_dir is not None
               else root / campaign_id(spec.experiment_id, scale, seed))
    out_dir.mkdir(parents=True, exist_ok=True)

    cells = spec.cells(scale)
    manifest = _manifest_payload(spec, scale, seed, cells)
    manifest_file = out_dir / "manifest.json"
    if manifest_file.exists():
        _check_manifest(load_json(manifest_file), manifest, out_dir)
    else:
        atomic_write_json(manifest_file, manifest, indent=2)

    payloads = cell_payloads(spec, scale, seed, out_dir, cells,
                             checkpoint_every=checkpoint_every,
                             fault_plan=plan, max_attempts=max_attempts,
                             retry_backoff=retry_backoff)
    run_id = out_dir.name
    owns_catalog = catalog is None
    catalog = catalog if catalog is not None else Catalog(
        catalog_path(out_dir.parent))
    try:
        catalog.record_campaign(
            run_id, spec, scale.name, seed, out_dir, cells,
            slugs=[cell_slug(i, params) for i, params in enumerate(cells)],
            fault_plan=plan.to_dict() if plan is not None else None,
            manifest_version=manifest["version"])
        enqueued = JobQueue(catalog).submit(run_id, payloads)
    finally:
        if owns_catalog:
            catalog.close()
    return Submission(run_id=run_id, out_dir=out_dir, cells=len(cells),
                      enqueued=enqueued)


@dataclass
class WorkerSummary:
    """One worker's account of a drain loop."""

    worker_id: str
    completed: int = 0
    failed: int = 0
    released: int = 0
    reclaimed: int = 0
    interrupted: bool = False
    cells: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"worker_id": self.worker_id, "completed": self.completed,
                "failed": self.failed, "released": self.released,
                "reclaimed": self.reclaimed,
                "interrupted": self.interrupted, "cells": self.cells}


class WorkerSignalled(BaseException):
    """SIGTERM/SIGINT reached the drain loop.

    A ``BaseException`` so the runner's ``except Exception`` retry paths
    cannot swallow it — the signal must reach the loop that releases the
    lease.
    """

    def __init__(self, signum: int):
        self.signum = signum
        self.name = signal.Signals(signum).name
        super().__init__(f"worker received {self.name}")


class _SignalGuard:
    """Convert SIGTERM/SIGINT into :class:`WorkerSignalled` for one scope.

    Only installs handlers on the main thread (``signal.signal`` refuses
    anywhere else — tests drive ``work()`` from helper threads); restores
    the previous handlers on exit.
    """

    def __init__(self) -> None:
        self._previous: List[Any] = []
        self._installed = False

    def __enter__(self) -> "_SignalGuard":
        if threading.current_thread() is threading.main_thread():
            def raise_signalled(signum: int, _frame: Any) -> None:
                raise WorkerSignalled(signum)

            for signum in (signal.SIGTERM, signal.SIGINT):
                self._previous.append(
                    (signum, signal.signal(signum, raise_signalled)))
            self._installed = True
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._installed:
            for signum, previous in self._previous:
                signal.signal(signum, previous)


class _Heartbeat:
    """Background lease renewal while a cell executes (local backend).

    Runs on its own catalogue connection (SQLite connections are
    thread-bound); only touches the lease row, never the cell's computation,
    so worker results stay deterministic.
    """

    def __init__(self, path: Path, job: Job, worker_id: str, lease_ttl: int):
        self._path = path
        self._job = job
        self._worker_id = worker_id
        self._ttl = int(lease_ttl)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        interval = max(1.0, self._ttl / 3.0)
        gap_seconds = telemetry.histogram("worker.heartbeat.gap_seconds")
        last = time.perf_counter()
        with Catalog(self._path) as catalog:
            queue = JobQueue(catalog)
            while not self._stop.wait(interval):
                if not queue.heartbeat(self._job, self._worker_id, self._ttl):
                    telemetry.counter("worker.heartbeat.lost").inc()
                    return  # lease lost; the claim's new owner re-runs the cell
                now = time.perf_counter()
                gap_seconds.record(now - last)
                last = now

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


class _RemoteHeartbeat:
    """Background lease renewal over HTTP (remote backend).

    Uses a dedicated **chaos-free** client: heartbeats fire on a timer, so
    letting them consume chaos request indices would make the drain
    protocol's fault schedule nondeterministic.  A transport error here is
    tolerated (the lease may lapse and be reclaimed — exactly the semantics
    a dead network should have); a fatal protocol error stops the thread.
    """

    def __init__(self, client: StoreClient, job: Job, lease_ttl: int):
        self._client = client
        self._job = job
        self._ttl = int(lease_ttl)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        interval = max(1.0, self._ttl / 3.0)
        gap_seconds = telemetry.histogram("worker.heartbeat.gap_seconds")
        last = time.perf_counter()
        while not self._stop.wait(interval):
            try:
                if not self._client.heartbeat(self._job.run_id,
                                              self._job.cell_index,
                                              self._ttl):
                    telemetry.counter("worker.heartbeat.lost").inc()
                    return  # lease lost to a reclaim
            except RetryableTransportError:
                # Server unreachable; keep trying until told to stop.  The
                # gap histogram only advances on success, so the next
                # successful beat records the true outage-spanning gap.
                continue
            except FatalRequestError:
                return
            now = time.perf_counter()
            gap_seconds.record(now - last)
            last = now

    def __enter__(self) -> "_RemoteHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _finalize_run(catalog: Catalog, out_dir: Path) -> None:
    """Write ``results.json`` once every cell of a drained run completed.

    Rows come from the cells' ``result.json`` files (the artifact tree is
    the source of truth), matching ``repro.run()`` byte-for-byte.  Multiple
    workers may race here; the content is deterministic and the write
    atomic, so the race is harmless.
    """
    from repro.runs.runner import _load_cached_row

    manifest = load_json(out_dir / "manifest.json")
    rows = [_load_cached_row(out_dir / "cells" / cell["slug"] / "result.json")
            for cell in manifest["cells"]]
    if any(row is None for row in rows):
        return
    atomic_write_json(out_dir / "results.json", {
        "experiment": manifest["experiment"]["experiment_id"],
        "scale": manifest["scale"]["name"], "seed": manifest["seed"],
        "rows": rows,
    }, indent=2)


class _LocalBackend:
    """Queue access through the catalogue file (same-host draining)."""

    def __init__(self, path: Path, worker_id: str, max_job_attempts: int):
        self.path = Path(path)
        self.worker_id = worker_id
        self.catalog = Catalog(self.path)
        self.queue = JobQueue(self.catalog, max_job_attempts=max_job_attempts)

    def claim(self, run_id: Optional[str], lease_ttl: int) -> Optional[Job]:
        return self.queue.claim(self.worker_id, run_id=run_id,
                                lease_ttl=lease_ttl)

    def heartbeat_channel(self, job: Job, lease_ttl: int) -> Any:
        return _Heartbeat(self.path, job, self.worker_id, lease_ttl)

    def localize(self, job: Job) -> Dict[str, Any]:
        return dict(job.payload)

    def complete(self, job: Job, status: str, row: Optional[Mapping[str, Any]],
                 attempts: int, elapsed: Optional[float]) -> bool:
        if not self.queue.complete(job, self.worker_id):
            return False
        self.catalog.record_cell(job.run_id, job.cell_index,
                                 job.payload["params"], status, row=row,
                                 attempts=attempts, elapsed_seconds=elapsed)
        return True

    def release(self, job: Job, status: str, error: Optional[str],
                attempts: int) -> str:
        state = self.queue.release(job, self.worker_id, error=error)
        self.catalog.record_cell(job.run_id, job.cell_index,
                                 job.payload["params"], status, error=error,
                                 attempts=attempts)
        return state

    def outstanding(self, run_id: Optional[str]) -> int:
        return self.queue.outstanding(run_id)

    def finalize(self, job: Job) -> None:
        if self.queue.outstanding(job.run_id) == 0:
            _finalize_run(self.catalog, Path(job.payload["out_dir"]))

    def telemetry_sink(self, worker_id: str) -> Any:
        return telemetry.CatalogSink(self.path, worker=worker_id)

    def close(self) -> None:
        self.catalog.close()


class _RemoteBackend:
    """Queue access over HTTP through :class:`StoreClient`.

    Payload paths are remapped under ``local_root`` (artifacts land on the
    *worker's* host); the server finalizes ``results.json`` from uploaded
    rows, so :meth:`finalize` is a no-op here.
    """

    def __init__(self, server: str, worker_id: str, local_root: Path,
                 max_job_attempts: int, timeout: float, retries: int,
                 backoff: float, chaos_plan: Any = None):
        self.worker_id = worker_id
        self.local_root = Path(local_root)
        self.max_job_attempts = int(max_job_attempts)
        seed = zlib.crc32(worker_id.encode("utf-8"))
        self.client = StoreClient(server, worker_id=worker_id,
                                  timeout=timeout, max_retries=retries,
                                  backoff=backoff, retry_seed=seed)
        if chaos_plan is not None and chaos_plan.faults:
            self.client.transport = ChaosTransport(self.client.transport,
                                                   chaos_plan)
        # Heartbeats go through their own chaos-free client so their
        # timer-driven requests never consume chaos request indices.
        self.heartbeat_client = StoreClient(server, worker_id=worker_id,
                                            timeout=timeout,
                                            max_retries=retries,
                                            backoff=backoff,
                                            retry_seed=seed ^ 0xBEEF)

    def claim(self, run_id: Optional[str], lease_ttl: int) -> Optional[Job]:
        record = self.client.claim(run_id=run_id, lease_ttl=lease_ttl,
                                   max_job_attempts=self.max_job_attempts)
        if record is None:
            return None
        return Job(run_id=record["run_id"],
                   cell_index=int(record["cell_index"]),
                   payload=dict(record["payload"]),
                   attempts=int(record["attempts"]),
                   reclaimed_from=record.get("reclaimed_from"))

    def heartbeat_channel(self, job: Job, lease_ttl: int) -> Any:
        return _RemoteHeartbeat(self.heartbeat_client, job, lease_ttl)

    def localize(self, job: Job) -> Dict[str, Any]:
        """Remap the payload's artifact paths onto this worker's host."""
        payload = dict(job.payload)
        slug = Path(payload["cell_dir"]).name
        out_dir = self.local_root / job.run_id
        payload["out_dir"] = str(out_dir)
        payload["cell_dir"] = str(out_dir / "cells" / slug)
        return payload

    def complete(self, job: Job, status: str, row: Optional[Mapping[str, Any]],
                 attempts: int, elapsed: Optional[float]) -> bool:
        response = self.client.complete(
            job.run_id, job.cell_index, status=status, row=row,
            params=job.payload["params"], attempts=attempts,
            elapsed_seconds=elapsed)
        return bool(response.get("applied"))

    def release(self, job: Job, status: str, error: Optional[str],
                attempts: int) -> str:
        response = self.client.release(job.run_id, job.cell_index,
                                       status=status, error=error,
                                       params=job.payload["params"],
                                       attempts=attempts)
        return str(response.get("state", "pending"))

    def outstanding(self, run_id: Optional[str]) -> int:
        return self.client.outstanding(run_id)

    def finalize(self, job: Job) -> None:
        pass  # the server materializes results.json from catalogue rows

    def telemetry_sink(self, worker_id: str) -> Any:
        # Telemetry reports ride the chaos-free heartbeat client: flushes
        # fire on a timer, so letting them consume chaos request indices
        # would make the drain protocol's fault schedule nondeterministic.
        return telemetry.ClientSink(self.heartbeat_client, worker=worker_id)

    def close(self) -> None:
        pass


def work(root: os.PathLike = "runs", run_id: Optional[str] = None,
         worker_id: Optional[str] = None,
         lease_ttl: int = DEFAULT_LEASE_TTL,
         max_job_attempts: int = DEFAULT_JOB_ATTEMPTS,
         poll_seconds: float = 0.5, watch: bool = False,
         max_cells: Optional[int] = None,
         catalog_file: Optional[os.PathLike] = None,
         server: Optional[str] = None,
         local_root: Optional[os.PathLike] = None,
         client_timeout: float = DEFAULT_TIMEOUT_SECONDS,
         client_retries: int = DEFAULT_MAX_RETRIES,
         client_backoff: float = DEFAULT_BACKOFF_SECONDS,
         chaos_plan: Any = None) -> WorkerSummary:
    """Drain the queue (optionally one campaign) as one worker.

    ``server=None`` drains through the catalogue file at ``root`` /
    ``catalog_file``; ``server="http://host:port"`` drains over HTTP with
    artifacts under ``local_root`` (default: ``root``).  ``chaos_plan`` (or
    the ``REPRO_NET_CHAOS_PLAN`` env var) wraps the remote transport in
    deterministic fault injection — drain-protocol calls only, never
    heartbeats.
    """
    worker_id = worker_id or default_worker_id()
    summary = WorkerSummary(worker_id=worker_id)
    if server is not None:
        backend: Any = _RemoteBackend(
            server, worker_id,
            local_root=Path(local_root if local_root is not None else root),
            max_job_attempts=max_job_attempts, timeout=client_timeout,
            retries=client_retries, backoff=client_backoff,
            chaos_plan=resolve_network_chaos_plan(chaos_plan))
    else:
        path = (Path(catalog_file) if catalog_file is not None
                else catalog_path(Path(root)))
        backend = _LocalBackend(path, worker_id,
                                max_job_attempts=max_job_attempts)
    claim_seconds = telemetry.histogram("worker.claim.seconds")
    flusher = telemetry.TelemetryFlusher(backend.telemetry_sink(worker_id))
    flusher.start()
    job: Optional[Job] = None
    try:
        with _SignalGuard():
            while True:
                if max_cells is not None and len(summary.cells) >= max_cells:
                    break
                claim_started = time.perf_counter()
                job = backend.claim(run_id, lease_ttl)
                claim_seconds.record(time.perf_counter() - claim_started)
                if job is None:
                    if watch or backend.outstanding(run_id):
                        # Another worker holds a live lease (or new work may
                        # arrive): wait instead of abandoning the drain.
                        time.sleep(poll_seconds)
                        continue
                    break
                telemetry.counter("worker.claims.total").inc()
                if job.reclaimed_from is not None:
                    summary.reclaimed += 1
                    telemetry.counter("worker.claims.reclaimed").inc()
                payload = backend.localize(job)
                with backend.heartbeat_channel(job, lease_ttl):
                    outcome = _attempt_cell(payload)
                status = outcome.get("status", "failed")
                record = {"index": job.cell_index, "run_id": job.run_id,
                          "status": status, "attempts": job.attempts}
                attempts = outcome.get("attempt", job.attempts)
                if status in ("completed", "cached"):
                    if backend.complete(job, status, outcome.get("row"),
                                        attempts,
                                        _elapsed_from(Path(payload["cell_dir"]))):
                        summary.completed += 1
                        telemetry.counter("worker.cells.completed").inc()
                    # else: the lease was reclaimed while we ran; the new
                    # owner re-executes the (idempotent) cell and records it.
                else:
                    new_state = backend.release(job, status,
                                                outcome.get("error"), attempts)
                    if new_state == "failed":
                        summary.failed += 1
                        telemetry.counter("worker.cells.failed").inc()
                    else:
                        summary.released += 1
                        telemetry.counter("worker.cells.released").inc()
                    record["error"] = outcome.get("error")
                summary.cells.append(record)
                backend.finalize(job)
                job = None
    except WorkerSignalled as signalled:
        summary.interrupted = True
        if job is not None:
            # Give the in-flight cell straight back to the queue so another
            # worker picks it up without waiting out the lease TTL.  If the
            # network is also gone, the lease expiring does the same job.
            try:
                backend.release(job, "interrupted", str(signalled),
                                job.attempts)
            except (RetryableTransportError, FatalRequestError):
                pass
            summary.released += 1
            summary.cells.append({"index": job.cell_index,
                                  "run_id": job.run_id,
                                  "status": "interrupted",
                                  "attempts": job.attempts,
                                  "error": str(signalled)})
    finally:
        flusher.stop()
        backend.close()
    return summary


def _elapsed_from(cell_dir: Path) -> Optional[float]:
    """The cell's recorded wall-clock seconds (from its result.json)."""
    try:
        payload = load_json(cell_dir / "result.json")
    except Exception:
        return None
    value = payload.get("elapsed_seconds") if isinstance(payload, dict) else None
    return float(value) if isinstance(value, (int, float)) else None


__all__ = [
    "Submission",
    "WorkerSignalled",
    "WorkerSummary",
    "default_worker_id",
    "submit_campaign",
    "work",
]
