"""``repro serve`` — the campaign service's HTTP face (stdlib only).

A small JSON API over :class:`http.server.ThreadingHTTPServer`; the server
owns no execution — it records submissions in the catalogue/queue and
answers reads, while ``repro work`` processes (local or remote, sharing the
catalogue file) do the draining.

Endpoints
---------
``GET  /api/health``                     liveness + catalogue path
``GET  /api/experiments``                registered experiment ids
``POST /api/campaigns``                  submit: ``{"experiment": "table5",
                                         "scale": "smoke", "seed": 0}``
``GET  /api/campaigns``                  every run with progress counters
``GET  /api/campaigns/<id>``             one run: cells, provenance, queue
``GET  /api/campaigns/<id>/rows``        finished rows in cell order
``GET  /api/campaigns/<id>/stream``      JSON-lines event stream: a snapshot,
                                         then one event per newly finished
                                         cell, then a terminal run event
``GET  /api/query?metric=accuracy&by=defense[&experiment=..][&scale=..]``
                                         cross-run aggregation
``GET  /api/query?bench=1&metric=speedup&by=num_envs[&benchmark=..]``
                                         perf-trajectory aggregation

Every request opens its own catalogue connection (SQLite connections are
thread-bound; the handler pool is threaded), so concurrent submits, streams,
and worker writes coexist under WAL.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.rl.stats import dump_json
from repro.store.catalog import Catalog, catalog_path
from repro.store.query import aggregate_bench, aggregate_metric
from repro.store.queue import JobQueue

DEFAULT_PORT = 8642

#: Seconds between catalogue polls while streaming campaign events.
STREAM_POLL_SECONDS = 0.25

#: Default wall-clock budget of one stream request.
STREAM_TIMEOUT_SECONDS = 300.0


class CampaignServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one runs root + catalogue file."""

    daemon_threads = True

    def __init__(self, root: Path, address: Tuple[str, int]):
        self.root = Path(root)
        self.catalog_file = catalog_path(self.root)
        super().__init__(address, CampaignRequestHandler)


class CampaignRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: CampaignServer

    # ----------------------------------------------------------- dispatching
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        try:
            if parts == ["api", "health"]:
                self._json(200, {"ok": True,
                                 "catalog": str(self.server.catalog_file),
                                 "root": str(self.server.root)})
            elif parts == ["api", "experiments"]:
                from repro.runs.registry import list_experiments

                self._json(200, {"experiments": list_experiments()})
            elif parts == ["api", "campaigns"]:
                with Catalog(self.server.catalog_file) as catalog:
                    self._json(200, {"campaigns": catalog.list_runs()})
            elif len(parts) == 3 and parts[:2] == ["api", "campaigns"]:
                self._campaign_detail(parts[2])
            elif len(parts) == 4 and parts[:2] == ["api", "campaigns"] \
                    and parts[3] == "rows":
                self._campaign_rows(parts[2])
            elif len(parts) == 4 and parts[:2] == ["api", "campaigns"] \
                    and parts[3] == "stream":
                self._stream(parts[2], query)
            elif parts == ["api", "query"]:
                self._query(query)
            else:
                self._json(404, {"error": f"no route for {url.path}"})
        except ValueError as error:
            self._json(400, {"error": str(error)})
        except BrokenPipeError:  # client went away mid-stream
            pass
        except Exception as error:  # pragma: no cover - defensive 500
            self._json(500, {"error": f"{type(error).__name__}: {error}"})

    def do_POST(self) -> None:  # noqa: N802
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["api", "campaigns"]:
                self._submit()
            else:
                self._json(404, {"error": f"no route for {url.path}"})
        except (ValueError, KeyError) as error:
            self._json(400, {"error": str(error)})
        except Exception as error:  # pragma: no cover - defensive 500
            self._json(500, {"error": f"{type(error).__name__}: {error}"})

    # -------------------------------------------------------------- handlers
    def _submit(self) -> None:
        from repro.store.worker import submit_campaign

        length = int(self.headers.get("Content-Length", "0"))
        try:
            body = json.loads(self.rfile.read(length) or b"{}")
        except json.JSONDecodeError as error:
            raise ValueError(f"request body is not JSON: {error}")
        if not isinstance(body, dict) or "experiment" not in body:
            raise ValueError('body must be a JSON object with "experiment"')
        submission = submit_campaign(
            body["experiment"], scale=body.get("scale"),
            seed=body.get("seed"), root=self.server.root,
            checkpoint_every=int(body.get("checkpoint_every", 2)),
            max_attempts=int(body.get("max_attempts", 1)),
            retry_backoff=float(body.get("retry_backoff", 0.25)),
            fault_plan=body.get("fault_plan"))
        self._json(201, {"submitted": submission.to_dict()})

    def _campaign_detail(self, run_id: str) -> None:
        with Catalog(self.server.catalog_file) as catalog:
            info = catalog.run_info(run_id)
            if info is None:
                self._json(404, {"error": f"unknown campaign {run_id!r}"})
                return
            queue = JobQueue(catalog)
            info["queue"] = queue.counts(run_id)
            info["lease_events"] = queue.lease_events(run_id)[-50:]
        self._json(200, info)

    def _campaign_rows(self, run_id: str) -> None:
        with Catalog(self.server.catalog_file) as catalog:
            if not catalog.has_run(run_id):
                self._json(404, {"error": f"unknown campaign {run_id!r}"})
                return
            self._json(200, {"run_id": run_id, "rows": catalog.rows(run_id)})

    def _query(self, query: Dict[str, str]) -> None:
        metric = query.get("metric")
        if not metric:
            raise ValueError("query needs a ?metric= parameter")
        with Catalog(self.server.catalog_file) as catalog:
            if query.get("bench"):
                rows = aggregate_bench(catalog, metric,
                                       by=query.get("by", "num_envs"),
                                       benchmark=query.get("benchmark"),
                                       scenario=query.get("scenario"))
            else:
                rows = aggregate_metric(catalog, metric,
                                        by=query.get("by", "run"),
                                        experiment=query.get("experiment"),
                                        scale=query.get("scale"))
        self._json(200, {"metric": metric, "by": query.get("by"),
                         "rows": rows})

    def _stream(self, run_id: str, query: Dict[str, str]) -> None:
        """JSON-lines campaign events until completion (or the timeout)."""
        timeout = float(query.get("timeout", STREAM_TIMEOUT_SECONDS))
        deadline = time.perf_counter() + timeout
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        seen: Dict[int, str] = {}
        first = True
        while True:
            with Catalog(self.server.catalog_file) as catalog:
                info = catalog.run_info(run_id)
            if info is None:
                self._stream_line({"event": "error",
                                   "error": f"unknown campaign {run_id!r}"})
                return
            if first:
                self._stream_line({"event": "snapshot", "run_id": run_id,
                                   "status": info["status"],
                                   "cells": len(info["cell_statuses"])})
                first = False
            for cell in info["cell_statuses"]:
                status = cell["status"]
                if status == "pending" or seen.get(cell["cell_index"]) == status:
                    continue
                seen[cell["cell_index"]] = status
                self._stream_line({"event": "cell", "run_id": run_id,
                                   "index": cell["cell_index"],
                                   "status": status,
                                   "attempts": cell["attempts"]})
            if info["status"] in ("complete", "failed"):
                self._stream_line({"event": "run", "run_id": run_id,
                                   "status": info["status"]})
                return
            if time.perf_counter() > deadline:
                self._stream_line({"event": "timeout", "run_id": run_id,
                                   "status": info["status"]})
                return
            time.sleep(STREAM_POLL_SECONDS)

    # --------------------------------------------------------------- plumbing
    def _json(self, code: int, payload: Any) -> None:
        body = dump_json(payload, indent=2).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _stream_line(self, payload: Any) -> None:
        self.wfile.write((dump_json(payload) + "\n").encode("utf-8"))
        self.wfile.flush()

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # quiet by default; the CLI prints the endpoint once


def make_server(root: Path, host: str = "127.0.0.1",
                port: int = DEFAULT_PORT) -> CampaignServer:
    """Build (but do not start) a campaign server; port 0 picks a free one."""
    return CampaignServer(Path(root), (host, port))


def serve(root: Path, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
          ready_message: Optional[Any] = print) -> None:
    """Run the campaign service until interrupted."""
    server = make_server(root, host, port)
    bound_host, bound_port = server.server_address[:2]
    if ready_message is not None:
        ready_message(f"repro serve: http://{bound_host}:{bound_port}/api/ "
                      f"(root={root}, catalog={server.catalog_file})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()


__all__ = ["CampaignServer", "DEFAULT_PORT", "make_server", "serve"]
