"""``repro serve`` — the campaign service's HTTP face (stdlib only).

A small JSON API over :class:`http.server.ThreadingHTTPServer`; the server
owns no execution — it records submissions in the catalogue/queue, answers
reads, and (since PR 9) speaks the full lease protocol so remote
``repro work --server`` workers can drain a campaign with no catalogue file
access.

Endpoints
---------
``GET  /api/health``                     liveness + queue depth + lease count
                                         + draining flag + schema version,
                                         start time, and code version (so
                                         fleet operators can detect version
                                         skew before a drain)
``GET  /api/experiments``                registered experiment ids
``POST /api/campaigns``                  submit: ``{"experiment": "table5",
                                         "scale": "smoke", "seed": 0}``
``GET  /api/campaigns``                  every run with progress counters
``GET  /api/campaigns/<id>``             one run: cells, provenance, queue
``GET  /api/campaigns/<id>/rows``        finished rows in cell order
``GET  /api/campaigns/<id>/stream``      JSON-lines event stream: a snapshot,
                                         then one event per newly finished
                                         cell, then a terminal run /
                                         timeout / shutdown event
``GET  /api/jobs[?run_id=..]``           queue counts + outstanding jobs
``POST /api/jobs/claim``                 lease the next job (503 while
                                         draining)
``POST /api/jobs/heartbeat``             extend a lease
``POST /api/jobs/complete``              upload a finished row, mark done
``POST /api/jobs/release``               give a failed job back
``GET  /api/query?metric=..&by=..``      cross-run aggregation
``GET  /api/workers``                    live worker roster (leases +
                                         heartbeats + telemetry: host, pid,
                                         current cell, last-seen, rates)
``GET  /api/telemetry``                  recent telemetry points + counter
                                         totals (``?name=``, ``?worker=``,
                                         ``?limit=``)
``POST /api/telemetry``                  batch-report a worker's metric
                                         flush (exactly-once via the same
                                         idempotency machinery as the lease
                                         protocol)

Observability: every request increments a per-endpoint counter and lands in
a latency histogram (``server.requests.<endpoint>`` /
``server.request.seconds``); a background ``TelemetryFlusher`` persists the
server's own metrics into the catalogue it serves.  All of it is inert
under ``REPRO_TELEMETRY=0``.

Exactly-once mutations: every mutating job request may carry an
``idempotency_key``; the key lookup, the queue transition, the catalogue
cell upsert, and the response recording all commit in **one** transaction
(see :meth:`~repro.store.connection.StoreConnection.transaction` —
re-entrant precisely for this).  A retried or duplicated delivery replays
the recorded response with ``"replayed": true`` instead of re-applying, so
``lease_events`` carries exactly one applied ``completed`` event per cell no
matter what the network does.

Hardening: per-connection read timeouts (a stalled client cannot pin a
handler thread), a request body cap (413 past it), and graceful drain —
SIGTERM (or :meth:`CampaignServer.initiate_drain`) finishes in-flight
requests, terminates long-poll streams with a ``shutdown`` event within one
poll interval, and refuses new claims with 503 so workers fail over or back
off.

Every request opens its own catalogue connection (SQLite connections are
thread-bound; the handler pool is threaded), so concurrent submits, streams,
and worker writes coexist under WAL.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro import telemetry
from repro.rl.stats import dump_json
from repro.runs.artifacts import atomic_write_json
from repro.store.catalog import Catalog, catalog_path, code_version
from repro.store.query import aggregate_bench, aggregate_metric
from repro.store.schema import SCHEMA_VERSION
from repro.store.queue import (
    DEFAULT_JOB_ATTEMPTS,
    DEFAULT_LEASE_TTL,
    Job,
    JobQueue,
)

DEFAULT_PORT = 8642

#: Seconds between catalogue polls while streaming campaign events (also the
#: worst-case latency for a stream to observe a server shutdown).
STREAM_POLL_SECONDS = 0.25

#: Default wall-clock budget of one stream request.
STREAM_TIMEOUT_SECONDS = 300.0

#: Per-connection socket read deadline (seconds).
REQUEST_TIMEOUT_SECONDS = 30.0

#: Largest accepted request body; anything bigger is answered with 413.
MAX_BODY_BYTES = 8_000_000


class CampaignServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one runs root + catalogue file.

    Non-daemon handler threads + ``block_on_close`` make ``server_close()``
    *join* in-flight requests — safe because every long-poll observes
    :attr:`shutdown_event` and exits within one poll interval.
    """

    daemon_threads = False
    block_on_close = True
    max_body_bytes = MAX_BODY_BYTES

    def __init__(self, root: Path, address: Tuple[str, int]):
        self.root = Path(root)
        self.catalog_file = catalog_path(self.root)
        self.shutdown_event = threading.Event()
        self.draining = False
        self.code_version = code_version()
        # Opening the catalogue here both ensures the schema exists before
        # the first request and stamps the start time on the catalogue's SQL
        # clock (the wall clock is lint-banned in repro code).
        with Catalog(self.catalog_file) as catalog:
            self.started_unix = catalog.conn.now()
        self._started_monotonic = time.perf_counter()
        self.telemetry_flusher = telemetry.TelemetryFlusher(
            telemetry.CatalogSink(
                self.catalog_file,
                worker=f"serve-{socket.gethostname()}-{os.getpid()}"))
        self.telemetry_flusher.start()
        super().__init__(address, CampaignRequestHandler)

    def uptime_seconds(self) -> float:
        return time.perf_counter() - self._started_monotonic

    def server_close(self) -> None:
        super().server_close()
        self.telemetry_flusher.stop()

    def shutdown(self) -> None:
        # Wake long-poll streams *before* stopping the accept loop, so the
        # serve_forever caller is never left joining a 300-second stream.
        self.shutdown_event.set()
        super().shutdown()

    def initiate_drain(self) -> None:
        """Graceful SIGTERM drain: refuse new claims, terminate streams,
        finish in-flight requests, then stop.  Returns immediately; the
        actual ``shutdown()`` must run off the serve_forever thread (calling
        it inline from a handler or a signal landing on that thread would
        deadlock)."""
        self.draining = True
        self.shutdown_event.set()
        threading.Thread(target=self.shutdown, daemon=True).start()


class CampaignRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    timeout = REQUEST_TIMEOUT_SECONDS
    server: CampaignServer

    # ----------------------------------------------------------- dispatching
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        started = time.perf_counter()
        try:
            if parts == ["api", "health"]:
                self._health()
            elif parts == ["api", "experiments"]:
                from repro.runs.registry import list_experiments

                self._json(200, {"experiments": list_experiments()})
            elif parts == ["api", "campaigns"]:
                with Catalog(self.server.catalog_file) as catalog:
                    self._json(200, {"campaigns": catalog.list_runs()})
            elif len(parts) == 3 and parts[:2] == ["api", "campaigns"]:
                self._campaign_detail(parts[2])
            elif len(parts) == 4 and parts[:2] == ["api", "campaigns"] \
                    and parts[3] == "rows":
                self._campaign_rows(parts[2])
            elif len(parts) == 4 and parts[:2] == ["api", "campaigns"] \
                    and parts[3] == "stream":
                self._stream(parts[2], query)
            elif parts == ["api", "jobs"]:
                self._jobs_overview(query)
            elif parts == ["api", "query"]:
                self._query(query)
            elif parts == ["api", "workers"]:
                self._workers(query)
            elif parts == ["api", "telemetry"]:
                self._telemetry_read(query)
            else:
                self._json(404, {"error": f"no route for {url.path}"})
        except ValueError as error:
            self._json(400, {"error": str(error)})
        except BrokenPipeError:  # client went away mid-stream
            pass
        except Exception as error:  # pragma: no cover - defensive 500
            self._json(500, {"error": f"{type(error).__name__}: {error}"})
        finally:
            self._observe_request("GET", parts, started)

    def do_POST(self) -> None:  # noqa: N802
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        started = time.perf_counter()
        try:
            if parts == ["api", "campaigns"]:
                self._submit()
            elif parts == ["api", "jobs", "claim"]:
                self._job_claim()
            elif parts == ["api", "jobs", "heartbeat"]:
                self._job_heartbeat()
            elif parts == ["api", "jobs", "complete"]:
                self._job_complete()
            elif parts == ["api", "jobs", "release"]:
                self._job_release()
            elif parts == ["api", "telemetry"]:
                self._telemetry_report()
            else:
                self._json(404, {"error": f"no route for {url.path}"})
        except (ValueError, KeyError) as error:
            self._json(400, {"error": str(error)})
        except Exception as error:  # pragma: no cover - defensive 500
            self._json(500, {"error": f"{type(error).__name__}: {error}"})
        finally:
            self._observe_request("POST", parts, started)

    def _observe_request(self, method: str, parts: List[str],
                         started: float) -> None:
        label = _endpoint_label(method, parts)
        telemetry.counter("server.requests." + label).inc()
        telemetry.histogram("server.request.seconds").record(
            time.perf_counter() - started)

    # -------------------------------------------------------------- handlers
    def _read_body(self) -> Dict[str, Any]:
        """The request's JSON body (413 past the size cap, 400 on bad JSON)."""
        length = int(self.headers.get("Content-Length", "0"))
        if length > self.server.max_body_bytes:
            self.close_connection = True
            self._json(413, {"error": f"request body of {length} bytes "
                             f"exceeds the {self.server.max_body_bytes}-byte"
                             " cap"})
            raise _Responded()
        try:
            body = json.loads(self.rfile.read(length) or b"{}")
        except json.JSONDecodeError as error:
            raise ValueError(f"request body is not JSON: {error}")
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    def _health(self) -> None:
        with Catalog(self.server.catalog_file) as catalog:
            counts = JobQueue(catalog).counts()
        telemetry.gauge("server.queue.depth").set(counts.get("pending", 0))
        telemetry.gauge("server.queue.leased").set(counts.get("leased", 0))
        self._json(200, {
            "ok": True, "catalog": str(self.server.catalog_file),
            "root": str(self.server.root),
            "draining": self.server.draining,
            "queue": counts,
            "queue_depth": counts.get("pending", 0),
            "active_leases": counts.get("leased", 0),
            "schema_version": SCHEMA_VERSION,
            "started_unix": self.server.started_unix,
            "uptime_seconds": round(self.server.uptime_seconds(), 3),
            "code_version": self.server.code_version,
        })

    def _workers(self, query: Dict[str, str]) -> None:
        stale = int(query.get("stale_seconds", 120))
        with Catalog(self.server.catalog_file) as catalog:
            roster = catalog.worker_roster(stale_seconds=stale)
        self._json(200, {"workers": roster, "stale_seconds": stale})

    def _telemetry_read(self, query: Dict[str, str]) -> None:
        limit = int(query.get("limit", 100))
        with Catalog(self.server.catalog_file) as catalog:
            points = catalog.telemetry_points(
                name=query.get("name"), worker=query.get("worker"),
                limit=limit)
            totals = catalog.telemetry_totals(
                since_unix=int(query["since"]) if "since" in query else None)
        self._json(200, {"points": points, "totals": totals})

    def _telemetry_report(self) -> None:
        body = self._read_body()
        worker = str(body.get("worker") or "remote")
        points = body.get("points") or []
        spans = body.get("spans") or []
        if not isinstance(points, list) or not isinstance(spans, list):
            raise ValueError('"points" and "spans" must be JSON arrays')

        def apply(catalog: Catalog) -> Dict[str, Any]:
            recorded = catalog.record_telemetry(
                worker, points, spans,
                host=body.get("host"), pid=body.get("pid"))
            return {"recorded": recorded, "worker": worker}

        self._mutate("telemetry", body, apply)

    def _submit(self) -> None:
        from repro.store.worker import submit_campaign

        body = self._read_body()
        if "experiment" not in body:
            raise ValueError('body must be a JSON object with "experiment"')
        submission = submit_campaign(
            body["experiment"], scale=body.get("scale"),
            seed=body.get("seed"), root=self.server.root,
            checkpoint_every=int(body.get("checkpoint_every", 2)),
            max_attempts=int(body.get("max_attempts", 1)),
            retry_backoff=float(body.get("retry_backoff", 0.25)),
            fault_plan=body.get("fault_plan"))
        self._json(201, {"submitted": submission.to_dict()})

    # ----------------------------------------------------- the lease protocol
    def _mutate(self, endpoint: str, body: Dict[str, Any],
                apply: "Callable[[Catalog], Dict[str, Any]]") -> Dict[str, Any]:
        """Run one exactly-once mutation and send its JSON response.

        Key lookup, mutation, and response recording share one transaction:
        either the mutation applied *and* its response is replayable, or
        neither happened.  Returns the response for post-commit follow-ups.
        """
        key = body.get("idempotency_key")
        with Catalog(self.server.catalog_file) as catalog:
            with catalog.conn.transaction():
                replayed = catalog.idempotent_replay(key)
                if replayed is not None:
                    response = dict(replayed)
                    response["replayed"] = True
                else:
                    response = apply(catalog)
                    catalog.idempotent_record(key, endpoint, response)
            self._json(200, response)
        return response

    def _job_claim(self) -> None:
        if self.server.draining:
            self.close_connection = True
            self._json(503, {"error": "server is draining; claims refused",
                             "draining": True})
            return
        body = self._read_body()
        worker = str(body.get("worker") or "remote")

        def apply(catalog: Catalog) -> Dict[str, Any]:
            queue = JobQueue(catalog, max_job_attempts=int(
                body.get("max_job_attempts", DEFAULT_JOB_ATTEMPTS)))
            job = queue.claim(worker, run_id=body.get("run_id"),
                              lease_ttl=int(body.get("lease_ttl",
                                                     DEFAULT_LEASE_TTL)))
            if job is None:
                return {"job": None,
                        "outstanding": queue.outstanding(body.get("run_id"))}
            return {"job": {"run_id": job.run_id,
                            "cell_index": job.cell_index,
                            "payload": job.payload,
                            "attempts": job.attempts,
                            "reclaimed_from": job.reclaimed_from}}

        self._mutate("claim", body, apply)

    def _job_from(self, catalog: Catalog, body: Dict[str, Any]) -> Job:
        """Rebuild the queue's view of the job a remote worker refers to."""
        run_id = str(body["run_id"])
        cell_index = int(body["cell_index"])
        row = catalog.conn.fetchone(
            "SELECT attempts, payload_json FROM jobs"
            " WHERE run_id = ? AND cell_index = ?", (run_id, cell_index))
        if row is None:
            raise ValueError(f"no job for {run_id!r} cell {cell_index}")
        return Job(run_id=run_id, cell_index=cell_index,
                   payload=json.loads(row["payload_json"]),
                   attempts=int(row["attempts"]))

    def _job_heartbeat(self) -> None:
        body = self._read_body()
        # Heartbeats are naturally idempotent (each just extends the
        # expiry), so they bypass the key machinery.
        with Catalog(self.server.catalog_file) as catalog:
            try:
                job = self._job_from(catalog, body)
            except ValueError:
                self._json(200, {"alive": False})
                return
            alive = JobQueue(catalog).heartbeat(
                job, str(body["worker"]),
                lease_ttl=int(body.get("lease_ttl", DEFAULT_LEASE_TTL)))
            self._json(200, {"alive": alive})

    def _job_complete(self) -> None:
        body = self._read_body()
        worker = str(body["worker"])
        status = str(body.get("status", "completed"))

        def apply(catalog: Catalog) -> Dict[str, Any]:
            job = self._job_from(catalog, body)
            applied = JobQueue(catalog).complete(job, worker)
            if applied:
                catalog.record_cell(
                    job.run_id, job.cell_index,
                    body.get("params") or job.payload.get("params", {}),
                    status, row=body.get("row"),
                    attempts=int(body.get("attempts", job.attempts)),
                    elapsed_seconds=body.get("elapsed_seconds"))
            return {"applied": applied, "run_id": job.run_id,
                    "cell_index": job.cell_index}

        self._mutate("complete", body, apply)
        with Catalog(self.server.catalog_file) as catalog:
            finalize_from_catalog(catalog, str(body["run_id"]))

    def _job_release(self) -> None:
        body = self._read_body()
        worker = str(body["worker"])

        def apply(catalog: Catalog) -> Dict[str, Any]:
            job = self._job_from(catalog, body)
            queue = JobQueue(catalog, max_job_attempts=int(
                body.get("max_job_attempts", DEFAULT_JOB_ATTEMPTS)))
            state = queue.release(job, worker, error=body.get("error"))
            catalog.record_cell(
                job.run_id, job.cell_index,
                body.get("params") or job.payload.get("params", {}),
                str(body.get("status", "failed")), error=body.get("error"),
                attempts=int(body.get("attempts", job.attempts)))
            return {"state": state, "run_id": job.run_id,
                    "cell_index": job.cell_index}

        self._mutate("release", body, apply)

    def _jobs_overview(self, query: Dict[str, str]) -> None:
        run_id = query.get("run_id")
        with Catalog(self.server.catalog_file) as catalog:
            queue = JobQueue(catalog)
            self._json(200, {"run_id": run_id, "counts": queue.counts(run_id),
                             "outstanding": queue.outstanding(run_id)})

    # ------------------------------------------------------------- campaigns
    def _campaign_detail(self, run_id: str) -> None:
        with Catalog(self.server.catalog_file) as catalog:
            info = catalog.run_info(run_id)
            if info is None:
                self._json(404, {"error": f"unknown campaign {run_id!r}"})
                return
            queue = JobQueue(catalog)
            info["queue"] = queue.counts(run_id)
            info["lease_events"] = queue.lease_events(run_id)[-50:]
        self._json(200, info)

    def _campaign_rows(self, run_id: str) -> None:
        with Catalog(self.server.catalog_file) as catalog:
            if not catalog.has_run(run_id):
                self._json(404, {"error": f"unknown campaign {run_id!r}"})
                return
            self._json(200, {"run_id": run_id, "rows": catalog.rows(run_id)})

    def _query(self, query: Dict[str, str]) -> None:
        metric = query.get("metric")
        if not metric:
            raise ValueError("query needs a ?metric= parameter")
        with Catalog(self.server.catalog_file) as catalog:
            if query.get("bench"):
                rows = aggregate_bench(catalog, metric,
                                       by=query.get("by", "num_envs"),
                                       benchmark=query.get("benchmark"),
                                       scenario=query.get("scenario"))
            else:
                rows = aggregate_metric(catalog, metric,
                                        by=query.get("by", "run"),
                                        experiment=query.get("experiment"),
                                        scale=query.get("scale"))
        self._json(200, {"metric": metric, "by": query.get("by"),
                         "rows": rows})

    def _stream(self, run_id: str, query: Dict[str, str]) -> None:
        """JSON-lines campaign events until completion, timeout, or shutdown.

        The loop never sleeps blindly: it waits on the server's
        ``shutdown_event``, so a draining server terminates every stream
        with a ``shutdown`` event within one poll interval instead of
        holding its handler thread for up to the full stream timeout.
        """
        timeout = float(query.get("timeout", STREAM_TIMEOUT_SECONDS))
        deadline = time.perf_counter() + timeout
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        seen: Dict[int, str] = {}
        first = True
        while True:
            with Catalog(self.server.catalog_file) as catalog:
                info = catalog.run_info(run_id)
            if info is None:
                self._stream_line({"event": "error",
                                   "error": f"unknown campaign {run_id!r}"})
                return
            if first:
                self._stream_line({"event": "snapshot", "run_id": run_id,
                                   "status": info["status"],
                                   "cells": len(info["cell_statuses"])})
                first = False
            for cell in info["cell_statuses"]:
                status = cell["status"]
                if status == "pending" or seen.get(cell["cell_index"]) == status:
                    continue
                seen[cell["cell_index"]] = status
                self._stream_line({"event": "cell", "run_id": run_id,
                                   "index": cell["cell_index"],
                                   "status": status,
                                   "attempts": cell["attempts"]})
            if info["status"] in ("complete", "failed"):
                self._stream_line({"event": "run", "run_id": run_id,
                                   "status": info["status"]})
                return
            if time.perf_counter() > deadline:
                self._stream_line({"event": "timeout", "run_id": run_id,
                                   "status": info["status"]})
                return
            if self.server.shutdown_event.wait(STREAM_POLL_SECONDS):
                self._stream_line({"event": "shutdown", "run_id": run_id,
                                   "status": info["status"]})
                return

    # --------------------------------------------------------------- plumbing
    def _json(self, code: int, payload: Any) -> None:
        body = dump_json(payload, indent=2).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _stream_line(self, payload: Any) -> None:
        self.wfile.write((dump_json(payload) + "\n").encode("utf-8"))
        self.wfile.flush()

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # quiet by default; the CLI prints the endpoint once

    def handle(self) -> None:
        # A _Responded raised mid-handler means the response already went
        # out (the 413 path); swallow it here rather than crash the thread.
        try:
            super().handle()
        except _Responded:
            pass


def _endpoint_label(method: str, parts: List[str]) -> str:
    """Low-cardinality metric label for one request path."""
    if len(parts) >= 2 and parts[0] == "api":
        if parts[1] == "campaigns" and len(parts) >= 4:
            tail = parts[3] if parts[3] in ("rows", "stream") else "detail"
            return f"{method}.campaigns.{tail}"
        if parts[1] == "campaigns" and len(parts) == 3:
            return f"{method}.campaigns.detail"
        if parts[1] == "jobs" and len(parts) == 3:
            return f"{method}.jobs.{parts[2]}"
        return f"{method}.{parts[1]}"
    return f"{method}.other"


class _Responded(BaseException):
    """Internal: the handler already sent a response; stop processing.

    Derives from ``BaseException`` so the dispatchers' defensive
    ``except Exception`` blocks cannot turn it into a second (500)
    response on the same connection.
    """


def finalize_from_catalog(catalog: Catalog, run_id: str) -> None:
    """Write a drained run's ``results.json`` from its catalogue rows.

    The server-side twin of the worker's tree-based ``_finalize_run``:
    remote workers never touch the server host's artifact tree, so once the
    queue has nothing outstanding and every cell row landed, the *server*
    materializes ``results.json``.  Rows round-trip through the same
    canonical ``dump_json`` as the runner's, so the file is byte-identical
    to a serial ``repro.run()``.
    """
    if JobQueue(catalog).outstanding(run_id) != 0:
        return
    info = catalog.conn.fetchone(
        "SELECT experiment, scale, seed, out_dir FROM runs"
        " WHERE run_id = ?", (run_id,))
    if info is None:
        return
    rows = catalog.rows(run_id)
    if not rows or any(row is None for row in rows):
        return
    atomic_write_json(Path(info["out_dir"]) / "results.json", {
        "experiment": info["experiment"], "scale": info["scale"],
        "seed": int(info["seed"]), "rows": rows,
    }, indent=2)


def make_server(root: Path, host: str = "127.0.0.1",
                port: int = DEFAULT_PORT) -> CampaignServer:
    """Build (but do not start) a campaign server; port 0 picks a free one."""
    return CampaignServer(Path(root), (host, port))


def serve(root: Path, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
          ready_message: Optional[Any] = print) -> None:
    """Run the campaign service until interrupted (SIGTERM drains gracefully)."""
    server = make_server(root, host, port)
    bound_host, bound_port = server.server_address[:2]
    if ready_message is not None:
        ready_message(f"repro serve: http://{bound_host}:{bound_port}/api/ "
                      f"(root={root}, catalog={server.catalog_file})")
    previous = None
    installed = threading.current_thread() is threading.main_thread()
    if installed:
        previous = signal.signal(signal.SIGTERM,
                                 lambda *_: server.initiate_drain())
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.shutdown_event.set()
    finally:
        if installed:
            signal.signal(signal.SIGTERM, previous)
        server.server_close()


__all__ = [
    "CampaignServer",
    "DEFAULT_PORT",
    "MAX_BODY_BYTES",
    "REQUEST_TIMEOUT_SECONDS",
    "finalize_from_catalog",
    "make_server",
    "serve",
]
