"""The run catalogue: transactional recording + reading of campaign state.

A :class:`Catalog` wraps the shared :class:`~repro.store.connection
.StoreConnection` with the operations the runner, the queue workers, the
HTTP server, and the CLI share:

* **recording** — ``record_campaign`` registers a run with its provenance
  (code version, spec hash, seed, fault-plan hash) and one pending row per
  cell; ``record_cell`` lands a cell outcome *and* its exploded metric rows
  in one transaction, so a reader never observes a cell whose row JSON and
  metrics disagree;
* **reading** — run listings, per-run cell status (including cumulative
  attempt counts), and the ordered finished rows that must match the
  artifact tree's ``results.json`` byte-for-byte.

The catalogue is a *second durable backend*, not a replacement: the artifact
tree under ``runs/<id>/`` stays the source of truth for resume (checkpoints,
memos, quarantine), while the catalogue is the queryable index across runs.
Both are populated by the same code paths, and ``repro store ingest``
backfills the catalogue from any legacy tree.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.rl.stats import dump_json
from repro.store.connection import (
    CATALOG_NAME,
    StoreConnection,
    catalog_path,
    connect,
)

#: Outcome statuses that count as a finished cell (mirrors the runner's).
FINISHED_STATUSES = ("completed", "cached")


def spec_hash(spec_json: str) -> str:
    """SHA-256 of a spec's canonical JSON — the provenance identity."""
    return hashlib.sha256(spec_json.encode("utf-8")).hexdigest()


def fault_plan_hash(plan: Optional[Mapping[str, Any]]) -> Optional[str]:
    if plan is None:
        return None
    return hashlib.sha256(
        json.dumps(plan, sort_keys=True).encode("utf-8")).hexdigest()


def code_version(repo_root: Optional[Path] = None) -> str:
    """The current git commit (read from ``.git`` directly; no subprocess).

    Falls back to ``"unknown"`` outside a git checkout — provenance then
    still carries the spec hash and seed.
    """
    root = Path(repo_root) if repo_root is not None else Path(
        __file__).resolve().parents[3]
    head = root / ".git" / "HEAD"
    try:
        text = head.read_text().strip()
        if text.startswith("ref:"):
            ref = root / ".git" / text.split(None, 1)[1]
            if ref.exists():
                return ref.read_text().strip()
            packed = root / ".git" / "packed-refs"
            for line in packed.read_text().splitlines():
                if line.endswith(text.split(None, 1)[1]):
                    return line.split()[0]
            return "unknown"
        return text
    except OSError:
        return "unknown"


def _metric_pairs(params: Mapping[str, Any],
                  row: Optional[Mapping[str, Any]]) -> List[tuple]:
    """``(key, value_num, value_text)`` rows for one cell (row wins on clash)."""
    merged: Dict[str, Any] = dict(params)
    if row:
        merged.update(row)
    pairs = []
    for key, value in merged.items():
        if isinstance(value, bool):
            pairs.append((key, None, str(value)))
        elif isinstance(value, (int, float)):
            pairs.append((key, float(value), None))
        elif value is None:
            pairs.append((key, None, None))
        elif isinstance(value, str):
            pairs.append((key, None, value))
        else:  # nested structures: store their JSON text form
            pairs.append((key, None, dump_json(value)))
    return pairs


class Catalog:
    """High-level catalogue operations over one ``catalog.sqlite`` file."""

    def __init__(self, path: Path):
        self.path = Path(path)
        self.conn: StoreConnection = connect(self.path)

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "Catalog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    @classmethod
    def for_root(cls, root: Path) -> "Catalog":
        """The catalogue serving the campaign directories under ``root``."""
        return cls(catalog_path(root))

    # ------------------------------------------------------------- recording
    def record_campaign(self, run_id: str, spec: Any, scale_name: str,
                        seed: int, out_dir: Path,
                        cells: Sequence[Mapping[str, Any]],
                        slugs: Sequence[str],
                        fault_plan: Optional[Mapping[str, Any]] = None,
                        manifest_version: int = 1,
                        ingested_from: Optional[str] = None) -> None:
        """Register (or re-register, idempotently) one campaign.

        ``spec`` is an :class:`~repro.runs.spec.ExperimentSpec` (anything
        with ``experiment_id`` and ``to_json()``).  Existing cell rows keep
        their recorded outcomes; only missing cells are inserted as pending.
        """
        spec_json = spec.to_json()
        now = self.conn.now()
        with self.conn.transaction():
            self.conn.execute(
                "INSERT INTO runs (run_id, experiment, scale, seed, out_dir,"
                " spec_json, cells, status, created_unix, updated_unix)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, 'pending', ?, ?)"
                " ON CONFLICT(run_id) DO UPDATE SET out_dir = excluded.out_dir,"
                " updated_unix = excluded.updated_unix",
                (run_id, spec.experiment_id, scale_name, int(seed),
                 str(out_dir), spec_json, len(cells), now, now))
            self.conn.execute(
                "INSERT OR REPLACE INTO provenance (run_id, code_version,"
                " spec_hash, seed, fault_plan_hash, manifest_version,"
                " ingested_from) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (run_id, code_version(), spec_hash(spec_json), int(seed),
                 fault_plan_hash(fault_plan), int(manifest_version),
                 ingested_from))
            self.conn.executemany(
                "INSERT OR IGNORE INTO cells (run_id, cell_index, slug,"
                " params_json, status) VALUES (?, ?, ?, ?, 'pending')",
                [(run_id, index, slugs[index], dump_json(params))
                 for index, params in enumerate(cells)])
        self.refresh_run_status(run_id)

    def record_cell(self, run_id: str, index: int,
                    params: Mapping[str, Any], status: str,
                    row: Optional[Mapping[str, Any]] = None,
                    error: Optional[str] = None,
                    attempts: int = 0,
                    elapsed_seconds: Optional[float] = None) -> None:
        """Land one cell outcome + its metric rows in a single transaction."""
        cell_status = "completed" if status in FINISHED_STATUSES else status
        row_json = dump_json(row) if row is not None else None
        now = self.conn.now()
        with self.conn.transaction():
            self.conn.execute(
                "UPDATE cells SET status = ?, attempts = ?,"
                " elapsed_seconds = ?, row_json = ?, error = ?,"
                " recorded_unix = ? WHERE run_id = ? AND cell_index = ?",
                (cell_status, int(attempts), elapsed_seconds, row_json,
                 error, now, run_id, int(index)))
            self.conn.execute(
                "DELETE FROM metrics WHERE run_id = ? AND cell_index = ?",
                (run_id, int(index)))
            if row is not None:
                self.conn.executemany(
                    "INSERT OR REPLACE INTO metrics (run_id, cell_index, key,"
                    " value_num, value_text) VALUES (?, ?, ?, ?, ?)",
                    [(run_id, int(index), key, num, text)
                     for key, num, text in _metric_pairs(params, row)])
        self.refresh_run_status(run_id)

    def refresh_run_status(self, run_id: str) -> str:
        """Derive + store the run's coarse status from its cell statuses."""
        counts = {r["status"]: r["n"] for r in self.conn.fetchall(
            "SELECT status, COUNT(*) AS n FROM cells WHERE run_id = ?"
            " GROUP BY status", (run_id,))}
        total = sum(counts.values())
        done = counts.get("completed", 0)
        bad = sum(n for s, n in counts.items()
                  if s in ("failed", "timeout", "interrupted"))
        if total and done == total:
            status = "complete"
        elif bad:
            status = "failed"
        elif done:
            status = "in-flight"
        else:
            status = "pending"
        with self.conn.transaction():
            self.conn.execute(
                "UPDATE runs SET status = ?, updated_unix ="
                " CAST(strftime('%s','now') AS INTEGER) WHERE run_id = ?",
                (status, run_id))
        return status

    # ----------------------------------------------------------- idempotency
    def idempotent_replay(self, key: Optional[str]) -> Optional[Dict[str, Any]]:
        """The recorded response for an idempotency key (None when unseen).

        Call inside the same :meth:`~repro.store.connection.StoreConnection
        .transaction` that would apply the mutation: seen key -> return the
        stored response without re-applying; unseen key -> apply, then
        :meth:`idempotent_record` the response before the commit.
        """
        if key is None:
            return None
        row = self.conn.fetchone(
            "SELECT response_json FROM idempotency WHERE key = ?", (key,))
        return json.loads(row["response_json"]) if row is not None else None

    def idempotent_record(self, key: Optional[str], endpoint: str,
                          response: Mapping[str, Any]) -> None:
        """Record a mutation's response under its idempotency key."""
        if key is None:
            return
        self.conn.execute(
            "INSERT OR REPLACE INTO idempotency (key, endpoint,"
            " response_json, at_unix) VALUES (?, ?, ?,"
            " CAST(strftime('%s','now') AS INTEGER))",
            (key, endpoint, dump_json(response)))

    # --------------------------------------------------------------- reading
    def has_run(self, run_id: str) -> bool:
        return self.conn.scalar(
            "SELECT 1 FROM runs WHERE run_id = ?", (run_id,)) is not None

    def list_runs(self) -> List[Dict[str, Any]]:
        """Every recorded run with derived progress counters."""
        rows = self.conn.fetchall(
            "SELECT r.run_id, r.experiment, r.scale, r.seed, r.out_dir,"
            " r.cells, r.status,"
            " SUM(CASE WHEN c.status = 'completed' THEN 1 ELSE 0 END)"
            "   AS completed,"
            " SUM(CASE WHEN c.status IN ('failed','timeout','interrupted')"
            "   THEN 1 ELSE 0 END) AS failed,"
            " COALESCE(SUM(c.attempts), 0) AS attempts"
            " FROM runs r LEFT JOIN cells c ON c.run_id = r.run_id"
            " GROUP BY r.run_id ORDER BY r.run_id")
        return [dict(row) for row in rows]

    def run_info(self, run_id: str) -> Optional[Dict[str, Any]]:
        """One run's record + provenance + per-cell statuses (None if absent)."""
        run = self.conn.fetchone(
            "SELECT run_id, experiment, scale, seed, out_dir, cells, status,"
            " created_unix, updated_unix FROM runs WHERE run_id = ?",
            (run_id,))
        if run is None:
            return None
        info = dict(run)
        provenance = self.conn.fetchone(
            "SELECT code_version, spec_hash, seed, fault_plan_hash,"
            " manifest_version, ingested_from FROM provenance"
            " WHERE run_id = ?", (run_id,))
        info["provenance"] = dict(provenance) if provenance else None
        info["cell_statuses"] = self.cell_statuses(run_id)
        return info

    def cell_statuses(self, run_id: str) -> List[Dict[str, Any]]:
        rows = self.conn.fetchall(
            "SELECT cell_index, slug, params_json, status, attempts,"
            " elapsed_seconds, error FROM cells WHERE run_id = ?"
            " ORDER BY cell_index", (run_id,))
        out = []
        for row in rows:
            record = dict(row)
            record["params"] = json.loads(record.pop("params_json"))
            out.append(record)
        return out

    def rows(self, run_id: str) -> List[Optional[Dict[str, Any]]]:
        """The campaign's finished rows in cell order (None where missing)."""
        records = self.conn.fetchall(
            "SELECT row_json FROM cells WHERE run_id = ? ORDER BY cell_index",
            (run_id,))
        return [json.loads(r["row_json"]) if r["row_json"] is not None
                else None for r in records]

    def attempt_counts(self, run_id: str) -> Dict[int, int]:
        return {int(r["cell_index"]): int(r["attempts"])
                for r in self.conn.fetchall(
                    "SELECT cell_index, attempts FROM cells"
                    " WHERE run_id = ?", (run_id,))}

    # ------------------------------------------------------------- telemetry
    def record_telemetry(self, worker: str, points: Sequence[Mapping[str, Any]],
                         spans: Sequence[Mapping[str, Any]] = (),
                         host: Optional[str] = None,
                         pid: Optional[int] = None) -> Dict[str, int]:
        """Land one telemetry flush batch (points + spans) transactionally.

        Points are delta snapshots (see ``repro.telemetry``); ``at_unix`` is
        stamped here with the catalogue's SQL clock so all reporters share
        one timeline regardless of their local clocks.
        """
        now = self.conn.now()
        with self.conn.transaction():
            self.conn.executemany(
                "INSERT INTO telemetry_points (worker, host, pid, name, kind,"
                " value, count, buckets_json, labels_json, at_unix)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [(worker, host, pid, p["name"], p.get("kind", "counter"),
                  float(p.get("value", 0.0)),
                  int(p["count"]) if p.get("count") is not None else None,
                  dump_json(p["buckets"]) if p.get("buckets") else None,
                  dump_json(p["labels"]) if p.get("labels") else None,
                  now) for p in points])
            self.conn.executemany(
                "INSERT INTO telemetry_spans (worker, name, labels_json,"
                " seconds, at_unix) VALUES (?, ?, ?, ?, ?)",
                [(worker, s["name"],
                  dump_json(s["labels"]) if s.get("labels") else None,
                  float(s["seconds"]), now) for s in spans])
        return {"points": len(points), "spans": len(spans)}

    def telemetry_points(self, name: Optional[str] = None,
                         worker: Optional[str] = None,
                         limit: int = 100) -> List[Dict[str, Any]]:
        """Most-recent-first telemetry points, optionally filtered."""
        rows = self.conn.fetchall(
            "SELECT point_id, worker, host, pid, name, kind, value, count,"
            " buckets_json, labels_json, at_unix FROM telemetry_points"
            " WHERE (?1 IS NULL OR name = ?1) AND (?2 IS NULL OR worker = ?2)"
            " ORDER BY point_id DESC LIMIT ?3",
            (name, worker, int(limit)))
        out = []
        for row in rows:
            record = dict(row)
            buckets = record.pop("buckets_json")
            labels = record.pop("labels_json")
            record["buckets"] = json.loads(buckets) if buckets else None
            record["labels"] = json.loads(labels) if labels else None
            out.append(record)
        return out

    def telemetry_totals(self, since_unix: Optional[int] = None) -> List[Dict[str, Any]]:
        """Counter deltas summed per metric name (the dashboard's ticker)."""
        rows = self.conn.fetchall(
            "SELECT name, SUM(value) AS total, COUNT(*) AS flushes,"
            " MAX(at_unix) AS last_unix FROM telemetry_points"
            " WHERE kind = 'counter' AND (?1 IS NULL OR at_unix >= ?1)"
            " GROUP BY name ORDER BY name",
            (None if since_unix is None else int(since_unix),))
        return [dict(row) for row in rows]

    def active_workers_by_run(self) -> Dict[str, int]:
        """Distinct workers currently holding a lease, per run (``status``)."""
        return {row["run_id"]: int(row["n"]) for row in self.conn.fetchall(
            "SELECT run_id, COUNT(DISTINCT worker) AS n FROM jobs"
            " WHERE state = 'leased' AND worker IS NOT NULL"
            " GROUP BY run_id")}

    def worker_roster(self, stale_seconds: int = 120) -> List[Dict[str, Any]]:
        """Live worker roster joined from leases, lease events, telemetry.

        One entry per worker ever seen in ``lease_events`` or
        ``telemetry_points``: identity (host/pid from its latest telemetry
        flush), the cell it currently holds a lease on, last-seen time, and
        completion counts — including a completions-per-minute rate over the
        trailing ``stale_seconds`` window.
        """
        now = self.conn.now()
        workers: Dict[str, Dict[str, Any]] = {}
        for row in self.conn.fetchall(
                "SELECT worker, MAX(at_unix) AS last_seen,"
                " SUM(CASE WHEN event = 'completed' THEN 1 ELSE 0 END)"
                "   AS completed,"
                " SUM(CASE WHEN event = 'claimed' THEN 1 ELSE 0 END)"
                "   AS claimed,"
                " SUM(CASE WHEN event = 'completed' AND at_unix >= ?"
                "   THEN 1 ELSE 0 END) AS recent_completed"
                " FROM lease_events WHERE worker IS NOT NULL"
                " GROUP BY worker", (now - int(stale_seconds),)):
            workers[row["worker"]] = {
                "worker": row["worker"],
                "host": None,
                "pid": None,
                "last_seen_unix": int(row["last_seen"]),
                "completed": int(row["completed"]),
                "claimed": int(row["claimed"]),
                "cells_per_minute": round(
                    60.0 * int(row["recent_completed"]) / max(1, stale_seconds),
                    3),
                "current": None,
            }
        for row in self.conn.fetchall(
                "SELECT worker, host, pid, MAX(at_unix) AS last_flush"
                " FROM telemetry_points GROUP BY worker"):
            entry = workers.setdefault(row["worker"], {
                "worker": row["worker"], "host": None, "pid": None,
                "last_seen_unix": 0, "completed": 0, "claimed": 0,
                "cells_per_minute": 0.0, "current": None,
            })
            entry["host"] = row["host"]
            entry["pid"] = row["pid"]
            entry["last_seen_unix"] = max(
                entry["last_seen_unix"], int(row["last_flush"]))
        for row in self.conn.fetchall(
                "SELECT worker, run_id, cell_index, lease_expires_unix"
                " FROM jobs WHERE state = 'leased' AND worker IS NOT NULL"):
            entry = workers.get(row["worker"])
            if entry is None:
                continue
            entry["current"] = {
                "run_id": row["run_id"],
                "cell_index": int(row["cell_index"]),
                "lease_expires_unix": int(row["lease_expires_unix"])
                if row["lease_expires_unix"] is not None else None,
            }
        roster = []
        for entry in workers.values():
            entry["age_seconds"] = now - entry["last_seen_unix"]
            entry["alive"] = entry["age_seconds"] <= stale_seconds
            roster.append(entry)
        roster.sort(key=lambda e: e["worker"])
        return roster


__all__ = [
    "CATALOG_NAME",
    "Catalog",
    "catalog_path",
    "code_version",
    "fault_plan_hash",
    "spec_hash",
]
