"""``StoreClient`` — the sole sanctioned HTTP transport of the repo.

Every network call a ``repro work --server`` worker makes goes through this
module (the ``artifacts.store-client`` lint rule bans raw ``urllib`` /
``http.client`` / ``socket`` request construction anywhere else), because
this is where the reliability contract lives:

* **deadline** — every request carries a per-attempt socket timeout, so a
  stalled server can never hang a worker;
* **bounded retries** — transient failures are retried up to
  ``max_retries`` times with deterministic exponential backoff plus
  seed-derived jitter (no RNG state, so two clients with the same
  ``retry_seed`` sleep the same schedule);
* **error taxonomy** — failures are split into
  :class:`RetryableTransportError` (connection refused/reset, timeouts,
  5xx, a draining server's 503, torn response bytes) and
  :class:`FatalRequestError` (4xx, protocol violations): only the former is
  ever retried, and it is raised to the caller only once the budget is
  exhausted;
* **idempotency keys** — every mutating call carries a client-unique key,
  stable across its retries, so the server can make the lease protocol
  exactly-once: a retried ``complete`` whose first response was lost
  replays the recorded response instead of double-applying.

:class:`ChaosTransport` wraps any transport with a deterministic
:class:`~repro.runs.faults.NetworkChaosPlan` — the in-process half of the
network chaos harness (the TCP half is :mod:`repro.store.chaos`).
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple
from urllib.parse import urlsplit

from repro import telemetry
from repro.rl.stats import dump_json
from repro.runs.faults import NetworkChaosPlan

#: Per-attempt socket deadline (seconds) unless the caller overrides it.
DEFAULT_TIMEOUT_SECONDS = 30.0

#: Retries after the first attempt (6 retries -> 7 attempts total).
DEFAULT_MAX_RETRIES = 6

#: Base backoff (seconds); doubles per retry up to :data:`BACKOFF_CAP_SECONDS`.
DEFAULT_BACKOFF_SECONDS = 0.25

BACKOFF_CAP_SECONDS = 8.0

#: A transport is any callable with this signature.
Transport = Callable[[str, str, Optional[bytes], Mapping[str, str], float],
                     Tuple[int, bytes]]


class StoreClientError(Exception):
    """Base of the client's error taxonomy."""


class FatalRequestError(StoreClientError):
    """A non-retryable failure: the request itself is wrong (4xx, protocol
    violations).  Retrying an identical request cannot succeed, so the
    client fails fast instead of burning its budget."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class RetryableTransportError(StoreClientError):
    """A transient failure: connection refused/reset, a timeout, a 5xx, a
    draining server's 503, or a response torn mid-flight.  The client
    retries these (mutations re-send the same idempotency key); the
    instance that escapes to the caller carries the attempt count."""

    def __init__(self, message: str, status: Optional[int] = None,
                 attempts: int = 1):
        super().__init__(message)
        self.status = status
        self.attempts = attempts


def _mix64(value: int) -> int:
    """splitmix64 finalizer — the deterministic jitter source."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def backoff_schedule(base: float, retries: int, seed: int,
                     cap: float = BACKOFF_CAP_SECONDS) -> List[float]:
    """The deterministic sleep schedule: ``base * 2**i`` capped, plus up to
    25% seed-derived jitter so a fleet of workers does not retry in
    lockstep (each worker seeds from its own identity)."""
    delays = []
    for attempt in range(retries):
        delay = min(cap, base * (2 ** attempt))
        jitter = _mix64((seed << 8) ^ attempt) / float(2 ** 64)
        delays.append(delay * (1.0 + 0.25 * jitter))
    return delays


class UrllibTransport:
    """The real transport: one stdlib-``urllib`` request per call.

    ``Connection: close`` is sent on every request — one request per TCP
    connection keeps the chaos proxy's request counting exact and means a
    dead server never poisons a kept-alive socket.
    """

    def __call__(self, method: str, url: str, body: Optional[bytes],
                 headers: Mapping[str, str], timeout: float) -> Tuple[int, bytes]:
        request = urllib.request.Request(url, data=body, method=method,
                                         headers=dict(headers))
        request.add_header("Connection", "close")
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as error:
            # A non-2xx response with a body is still a response; the
            # client classifies it by status.
            return error.code, error.read()


class ChaosTransport:
    """Deterministic fault injection between the client and its transport.

    Each fault of the plan keeps its own counter of requests matching its
    ``op`` filter and fires when that counter reaches ``at_request`` — the
    same plan always perturbs the same protocol steps, independent of
    timing.  Fired faults are recorded in :attr:`fired` for tests.
    """

    def __init__(self, inner: Transport, plan: NetworkChaosPlan,
                 sleep: Callable[[float], None] = time.sleep):
        self.inner = inner
        self.plan = plan
        self.fired: List[Dict[str, Any]] = []
        self._sleep = sleep
        self._seen = [0] * len(plan.faults)
        self._lock = threading.Lock()

    def _matching(self, path: str) -> List[Any]:
        matched = []
        with self._lock:
            for index, fault in enumerate(self.plan.faults):
                if fault.op is not None and fault.op not in path:
                    continue
                if self._seen[index] == fault.at_request:
                    matched.append(fault)
                self._seen[index] += 1
        return matched

    def __call__(self, method: str, url: str, body: Optional[bytes],
                 headers: Mapping[str, str], timeout: float) -> Tuple[int, bytes]:
        path = urlsplit(url).path
        faults = self._matching(path)
        for fault in faults:
            self.fired.append({"kind": fault.kind, "path": path})
            telemetry.counter("client.chaos.fired").inc()
            if fault.kind == "reset":
                raise ConnectionResetError(
                    f"chaos: injected connection reset on {path}")
            if fault.kind == "http-500":
                return 500, b'{"error": "chaos: injected server error"}'
            if fault.kind == "stall":
                self._sleep(fault.delay_seconds)
        status, payload = self.inner(method, url, body, headers, timeout)
        for fault in faults:
            if fault.kind == "duplicate":
                # Deliver the identical request a second time — the server's
                # idempotency dedup must make this a no-op replay.
                status, payload = self.inner(method, url, body, headers,
                                             timeout)
            elif fault.kind == "drop-response":
                # The mutation was applied but the response never arrives:
                # the client must retry with the same idempotency key.
                raise ConnectionResetError(
                    f"chaos: response dropped after delivering {path}")
        return status, payload


class StoreClient:
    """HTTP access to a ``repro serve`` catalogue with the full reliability
    contract (deadline, bounded deterministic retries, error taxonomy,
    idempotency keys).  Thread-safe for concurrent calls; mutation key
    generation is lock-protected."""

    def __init__(self, base_url: str, *, worker_id: str = "client",
                 timeout: float = DEFAULT_TIMEOUT_SECONDS,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 backoff: float = DEFAULT_BACKOFF_SECONDS,
                 retry_seed: int = 0,
                 transport: Optional[Transport] = None,
                 sleep: Callable[[float], None] = time.sleep):
        self.base_url = base_url.rstrip("/")
        self.worker_id = worker_id
        self.timeout = float(timeout)
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.retry_seed = int(retry_seed)
        self.transport: Transport = transport or UrllibTransport()
        self._sleep = sleep
        # Idempotency keys must be unique across client *instances* (a
        # restarted worker reusing --worker-id must not replay the previous
        # process's responses) and stable across retries of one mutation.
        self._session = os.urandom(4).hex()
        self._sequence = 0
        self._lock = threading.Lock()

    # ----------------------------------------------------------- primitives
    def _next_key(self, op: str) -> str:
        with self._lock:
            self._sequence += 1
            return f"{self.worker_id}.{self._session}.{self._sequence:06d}.{op}"

    def request(self, method: str, path: str,
                payload: Optional[Mapping[str, Any]] = None,
                timeout: Optional[float] = None) -> Dict[str, Any]:
        """One logical call: attempt, classify, back off, retry, or raise.

        Retries re-send byte-identical requests — for mutations the payload
        already carries its idempotency key, so a lost response and a
        duplicated delivery are indistinguishable to the server.
        """
        url = f"{self.base_url}{path}"
        body = dump_json(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        deadline = self.timeout if timeout is None else float(timeout)
        delays = backoff_schedule(self.backoff, self.max_retries,
                                  self.retry_seed)
        telemetry.counter("client.requests.total").inc()
        started = time.perf_counter()
        last_error: Optional[str] = None
        last_status: Optional[int] = None
        for attempt in range(self.max_retries + 1):
            try:
                status, raw = self.transport(method, url, body, headers,
                                             deadline)
            except (ConnectionError, TimeoutError, socket.timeout,
                    http.client.HTTPException, urllib.error.URLError,
                    OSError) as error:
                last_error, last_status = f"{type(error).__name__}: {error}", None
            else:
                if status >= 500:
                    last_error = f"server returned {status}"
                    last_status = status
                elif 400 <= status < 500:
                    telemetry.counter("client.requests.fatal").inc()
                    raise FatalRequestError(
                        f"{method} {path} rejected with {status}: "
                        f"{raw[:200].decode('utf-8', 'replace')}",
                        status=status)
                else:
                    try:
                        response = json.loads(raw)
                    except ValueError:
                        # A 2xx with torn/non-JSON bytes: the response was
                        # corrupted in flight — safe to retry (mutations
                        # carry idempotency keys).
                        last_error = "2xx response with undecodable body"
                        last_status = status
                    else:
                        telemetry.histogram("client.request.seconds").record(
                            time.perf_counter() - started)
                        if isinstance(response, dict) and response.get("replayed"):
                            telemetry.counter(
                                "client.idempotent.replays").inc()
                        return response
            if attempt < self.max_retries:
                telemetry.counter("client.request.retries").inc()
                self._sleep(delays[attempt])
        telemetry.counter("client.requests.exhausted").inc()
        raise RetryableTransportError(
            f"{method} {path} failed after {self.max_retries + 1} attempts: "
            f"{last_error}", status=last_status,
            attempts=self.max_retries + 1)

    def get(self, path: str) -> Dict[str, Any]:
        return self.request("GET", path)

    def post(self, path: str, payload: Mapping[str, Any]) -> Dict[str, Any]:
        return self.request("POST", path, payload)

    # --------------------------------------------------------- read methods
    def health(self) -> Dict[str, Any]:
        return self.get("/api/health")

    def outstanding(self, run_id: Optional[str] = None) -> int:
        query = f"?run_id={run_id}" if run_id else ""
        return int(self.get(f"/api/jobs{query}")["outstanding"])

    # ----------------------------------------------------- the lease protocol
    def claim(self, run_id: Optional[str] = None, lease_ttl: int = 60,
              max_job_attempts: int = 3) -> Optional[Dict[str, Any]]:
        """Claim the next job (None when nothing is claimable).

        The idempotency key makes a retried claim return the *same* job
        instead of leasing a second one while the first waits out its TTL.
        """
        response = self.post("/api/jobs/claim", {
            "worker": self.worker_id, "run_id": run_id,
            "lease_ttl": int(lease_ttl),
            "max_job_attempts": int(max_job_attempts),
            "idempotency_key": self._next_key("claim"),
        })
        return response.get("job")

    def heartbeat(self, run_id: str, cell_index: int,
                  lease_ttl: int = 60) -> bool:
        """Extend the lease; False means it was lost to a reclaim.

        Heartbeats are naturally idempotent (each one just pushes the
        expiry forward), so they carry no key.
        """
        response = self.post("/api/jobs/heartbeat", {
            "worker": self.worker_id, "run_id": run_id,
            "cell_index": int(cell_index), "lease_ttl": int(lease_ttl),
        })
        return bool(response.get("alive"))

    def complete(self, run_id: str, cell_index: int, *, status: str,
                 row: Optional[Mapping[str, Any]],
                 params: Mapping[str, Any], attempts: int,
                 elapsed_seconds: Optional[float] = None) -> Dict[str, Any]:
        """Upload a finished cell's row and mark its job done (exactly-once)."""
        return self.post("/api/jobs/complete", {
            "worker": self.worker_id, "run_id": run_id,
            "cell_index": int(cell_index), "status": status, "row": row,
            "params": dict(params), "attempts": int(attempts),
            "elapsed_seconds": elapsed_seconds,
            "idempotency_key": self._next_key("complete"),
        })

    def release(self, run_id: str, cell_index: int, *, status: str,
                error: Optional[str], params: Mapping[str, Any],
                attempts: int) -> Dict[str, Any]:
        """Give a failed/interrupted job back to the queue (exactly-once)."""
        return self.post("/api/jobs/release", {
            "worker": self.worker_id, "run_id": run_id,
            "cell_index": int(cell_index), "status": status, "error": error,
            "params": dict(params), "attempts": int(attempts),
            "idempotency_key": self._next_key("release"),
        })

    # ------------------------------------------------------------- telemetry
    def post_telemetry(self, worker: str, points: List[Dict[str, Any]],
                       spans: Optional[List[Dict[str, Any]]] = None,
                       host: Optional[str] = None,
                       pid: Optional[int] = None) -> Dict[str, Any]:
        """Batch-report one telemetry flush (exactly-once: a retried batch
        whose response was lost replays instead of double-inserting)."""
        return self.post("/api/telemetry", {
            "worker": worker, "points": list(points),
            "spans": list(spans) if spans else [],
            "host": host, "pid": pid,
            "idempotency_key": self._next_key("telemetry"),
        })

    # -------------------------------------------------------- NDJSON streams
    def stream(self, path: str,
               timeout: Optional[float] = None) -> Iterator[Dict[str, Any]]:
        """Yield parsed JSON objects from one NDJSON response (no retries).

        Raises :class:`RetryableTransportError` for anything transient —
        connection failures, per-read socket timeouts, torn lines — and
        :class:`FatalRequestError` for 4xx, matching :meth:`request`'s
        taxonomy so callers can share recovery logic.
        """
        url = f"{self.base_url}{path}"
        http_request = urllib.request.Request(url, method="GET")
        http_request.add_header("Connection", "close")
        deadline = self.timeout if timeout is None else float(timeout)
        try:
            response = urllib.request.urlopen(http_request, timeout=deadline)
        except urllib.error.HTTPError as error:
            if 400 <= error.code < 500:
                raise FatalRequestError(
                    f"GET {path} rejected with {error.code}",
                    status=error.code)
            raise RetryableTransportError(
                f"GET {path} failed with {error.code}", status=error.code)
        except (ConnectionError, TimeoutError, socket.timeout,
                http.client.HTTPException, urllib.error.URLError,
                OSError) as error:
            raise RetryableTransportError(
                f"GET {path} failed: {type(error).__name__}: {error}")
        try:
            with response:
                for raw_line in response:
                    line = raw_line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line)
                    except ValueError:
                        raise RetryableTransportError(
                            f"GET {path} delivered a torn NDJSON line")
        except (ConnectionError, TimeoutError, socket.timeout,
                http.client.HTTPException, OSError) as error:
            raise RetryableTransportError(
                f"GET {path} stream broke: {type(error).__name__}: {error}")

    def follow_campaign(self, run_id: str, poll_timeout: float = 30.0,
                        max_reconnects: Optional[int] = None
                        ) -> Iterator[Dict[str, Any]]:
        """Follow a campaign's event stream across reconnects.

        Resumes from the last-seen event after server ``shutdown`` /
        ``timeout`` events and transient transport failures: cell events are
        deduplicated by their latest seen status and the snapshot is
        forwarded only once, so a consumer sees each transition exactly once
        no matter how many times the underlying stream reconnects (the
        PR 9 kill+restart scenario).  Ends after the terminal ``run`` /
        ``error`` event; raises :class:`RetryableTransportError` only once
        ``max_reconnects`` (default: the client's retry budget) consecutive
        attempts yield no events.
        """
        budget = self.max_retries if max_reconnects is None else int(
            max_reconnects)
        delays = backoff_schedule(self.backoff, max(budget, 1),
                                  self.retry_seed ^ 0x51A3)
        seen: Dict[int, str] = {}
        snapshot_sent = False
        misses = 0
        while True:
            try:
                for event in self.stream(
                        f"/api/campaigns/{run_id}/stream"
                        f"?timeout={poll_timeout}",
                        timeout=poll_timeout + self.timeout):
                    kind = event.get("event")
                    if kind == "snapshot":
                        misses = 0
                        if not snapshot_sent:
                            snapshot_sent = True
                            yield event
                    elif kind == "cell":
                        misses = 0
                        index = int(event["index"])
                        if seen.get(index) == event["status"]:
                            continue
                        seen[index] = event["status"]
                        yield event
                    elif kind in ("run", "error"):
                        yield event
                        return
                    elif kind == "shutdown":
                        telemetry.counter("client.stream.shutdowns").inc()
                        yield event
                        break  # reconnect once the server is back
                    elif kind == "timeout":
                        break  # idle long-poll expiry: reconnect immediately
                    else:
                        yield event
                else:
                    # Stream ended without a terminal event (torn mid-line
                    # EOF short of an exception): treat as a lost stream.
                    misses += 1
            except RetryableTransportError:
                misses += 1
            except FatalRequestError:
                raise
            if misses > budget:
                raise RetryableTransportError(
                    f"stream of {run_id!r} lost after {misses} consecutive"
                    " reconnect attempts", attempts=misses)
            if misses:
                telemetry.counter("client.stream.reconnects").inc()
                self._sleep(delays[min(misses - 1, len(delays) - 1)])


__all__ = [
    "BACKOFF_CAP_SECONDS",
    "ChaosTransport",
    "DEFAULT_BACKOFF_SECONDS",
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_TIMEOUT_SECONDS",
    "FatalRequestError",
    "RetryableTransportError",
    "StoreClient",
    "StoreClientError",
    "Transport",
    "UrllibTransport",
    "backoff_schedule",
]
