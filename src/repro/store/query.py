"""Cross-run aggregation: the engine behind ``repro query``.

Campaign cells land in the catalogue twice — as the verbatim row JSON in
``cells`` and exploded into key/value pairs in ``metrics`` — so "accuracy by
defense across all runs" is one self-join: the metric rows provide the
values, a second metrics alias provides the group key (any param or row
column: ``defense``, ``scenario``, ``policy``, ...).  The perf trajectory
ingested from ``BENCH_*.json`` aggregates the same way over the ``bench``
table's fixed dimensions.

All SQL here is literal and parameterized (the ``artifacts.store-connection``
contract): group keys never splice into the SQL text — cell grouping joins
on ``metrics.key = ?``, and bench grouping selects its dimension through a
CASE over the fixed column whitelist.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.common import format_table
from repro.rl.stats import dump_json
from repro.store.catalog import Catalog

#: Columns of an aggregation result row, in rendering order.
AGGREGATE_COLUMNS = ("group", "n", "mean", "min", "max")

#: The bench table's groupable dimensions (CASE whitelist in the SQL below).
BENCH_DIMENSIONS = ("scenario", "variant", "num_envs", "dtype", "benchmark",
                    "source", "timestamp")


def aggregate_metric(catalog: Catalog, metric: str, by: str = "run",
                     experiment: Optional[str] = None,
                     scale: Optional[str] = None) -> List[Dict[str, Any]]:
    """Aggregate one numeric cell metric grouped by a param/row key.

    ``by="run"`` groups by campaign; any other value names a metrics key
    (``"defense"``, ``"scenario"``, ...) whose per-cell value becomes the
    group.  Cells whose metric is non-numeric are excluded.
    """
    if by == "run":
        rows = catalog.conn.fetchall(
            "SELECT m.run_id AS group_value, COUNT(m.value_num) AS n,"
            " AVG(m.value_num) AS mean, MIN(m.value_num) AS min_value,"
            " MAX(m.value_num) AS max_value"
            " FROM metrics m JOIN runs r ON r.run_id = m.run_id"
            " WHERE m.key = ? AND m.value_num IS NOT NULL"
            " AND (? IS NULL OR r.experiment = ?)"
            " AND (? IS NULL OR r.scale = ?)"
            " GROUP BY m.run_id ORDER BY m.run_id",
            (metric, experiment, experiment, scale, scale))
    else:
        rows = catalog.conn.fetchall(
            "SELECT COALESCE(g.value_text, CAST(g.value_num AS TEXT))"
            "   AS group_value,"
            " COUNT(m.value_num) AS n, AVG(m.value_num) AS mean,"
            " MIN(m.value_num) AS min_value, MAX(m.value_num) AS max_value"
            " FROM metrics m"
            " JOIN metrics g ON g.run_id = m.run_id"
            "   AND g.cell_index = m.cell_index AND g.key = ?"
            " JOIN runs r ON r.run_id = m.run_id"
            " WHERE m.key = ? AND m.value_num IS NOT NULL"
            " AND (? IS NULL OR r.experiment = ?)"
            " AND (? IS NULL OR r.scale = ?)"
            " GROUP BY group_value ORDER BY group_value",
            (by, metric, experiment, experiment, scale, scale))
    return [_aggregate_row(row) for row in rows]


def aggregate_bench(catalog: Catalog, metric: str, by: str = "num_envs",
                    benchmark: Optional[str] = None,
                    scenario: Optional[str] = None) -> List[Dict[str, Any]]:
    """Aggregate one bench metric over a fixed bench dimension."""
    if by not in BENCH_DIMENSIONS:
        raise ValueError(f"unknown bench dimension {by!r}; "
                         f"choose from {BENCH_DIMENSIONS}")
    rows = catalog.conn.fetchall(
        "SELECT CASE ? WHEN 'scenario' THEN scenario"
        " WHEN 'variant' THEN variant"
        " WHEN 'num_envs' THEN CAST(num_envs AS TEXT)"
        " WHEN 'dtype' THEN dtype WHEN 'benchmark' THEN benchmark"
        " WHEN 'source' THEN source WHEN 'timestamp' THEN timestamp END"
        "   AS group_value,"
        " COUNT(value) AS n, AVG(value) AS mean,"
        " MIN(value) AS min_value, MAX(value) AS max_value"
        " FROM bench WHERE key = ?"
        " AND (? IS NULL OR benchmark = ?)"
        " AND (? IS NULL OR scenario = ?)"
        " GROUP BY group_value ORDER BY group_value",
        (by, metric, benchmark, benchmark, scenario, scenario))
    return [_aggregate_row(row) for row in rows]


def _aggregate_row(row: Any) -> Dict[str, Any]:
    return {"group": row["group_value"], "n": int(row["n"]),
            "mean": row["mean"], "min": row["min_value"],
            "max": row["max_value"]}


def list_metric_keys(catalog: Catalog) -> List[Dict[str, Any]]:
    """Every metrics key with its numeric-cell count (for discoverability)."""
    rows = catalog.conn.fetchall(
        "SELECT key, COUNT(*) AS cells, COUNT(value_num) AS numeric_cells"
        " FROM metrics GROUP BY key ORDER BY key")
    return [dict(row) for row in rows]


def list_bench_keys(catalog: Catalog) -> List[Dict[str, Any]]:
    rows = catalog.conn.fetchall(
        "SELECT benchmark, key, COUNT(*) AS rows_recorded FROM bench"
        " GROUP BY benchmark, key ORDER BY benchmark, key")
    return [dict(row) for row in rows]


def format_rows(rows: Sequence[Dict[str, Any]], fmt: str = "table",
                columns: Optional[Sequence[str]] = None,
                title: str = "") -> str:
    """Render aggregation rows as ``table`` / ``json`` / ``csv`` text."""
    columns = list(columns) if columns is not None else (
        list(rows[0]) if rows else list(AGGREGATE_COLUMNS))
    if fmt == "json":
        return dump_json(list(rows), indent=2)
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns,
                                extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({key: row.get(key) for key in columns})
        return buffer.getvalue().rstrip("\n")
    if fmt == "table":
        return format_table(list(rows), columns, title=title)
    raise ValueError(f"unknown format {fmt!r}; choose table, json, or csv")


__all__ = [
    "AGGREGATE_COLUMNS",
    "BENCH_DIMENSIONS",
    "aggregate_bench",
    "aggregate_metric",
    "format_rows",
    "list_bench_keys",
    "list_metric_keys",
]
