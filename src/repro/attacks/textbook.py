"""Textbook attack-sequence generators (Table I categories).

These produce the "for-loop" versions of the known attacks that the paper
compares against: prime the whole set / flush every shared line, trigger the
victim, probe everything.  The RL agent typically finds shorter sequences
(Sec. V-B), which is part of what Table IV demonstrates.
"""

from __future__ import annotations

from typing import List, Optional

from repro.attacks.sequences import AttackCategory, AttackSequence, access, flush, trigger
from repro.env.config import EnvConfig


def prime_probe_sequence(config: EnvConfig) -> AttackSequence:
    """Prime+probe: fill the cache with attacker lines, trigger, re-access them.

    Requires no shared addresses and no flush; observation is which probe
    misses (the victim's access evicted it).
    """
    attacker = config.attacker_addresses
    actions = [access(address) for address in attacker]
    actions.append(trigger())
    actions.extend(access(address) for address in attacker)
    return AttackSequence(actions=actions, category=AttackCategory.PRIME_PROBE,
                          name="textbook prime+probe",
                          description="prime all attacker lines, trigger victim, probe all")


def flush_reload_sequence(config: EnvConfig) -> AttackSequence:
    """Flush+reload: flush every shared line, trigger, reload and time each.

    Requires shared addresses and the flush instruction.
    """
    shared = config.shared_addresses
    if not shared:
        raise ValueError("flush+reload requires shared victim/attacker addresses")
    if not config.flush_enable:
        raise ValueError("flush+reload requires flush_enable")
    actions = [flush(address) for address in shared]
    actions.append(trigger())
    actions.extend(access(address) for address in shared)
    return AttackSequence(actions=actions, category=AttackCategory.FLUSH_RELOAD,
                          name="textbook flush+reload",
                          description="flush shared lines, trigger victim, reload all")


def evict_reload_sequence(config: EnvConfig, eviction_addresses: Optional[List[int]] = None) -> AttackSequence:
    """Evict+reload: evict the shared lines by filling the cache, trigger, reload.

    Requires shared addresses; eviction is done with attacker-only addresses
    (those not shared with the victim) or an explicit eviction set.
    """
    shared = config.shared_addresses
    if not shared:
        raise ValueError("evict+reload requires shared victim/attacker addresses")
    if eviction_addresses is None:
        eviction_addresses = [address for address in config.attacker_addresses
                              if address not in shared]
    if not eviction_addresses:
        raise ValueError("evict+reload requires attacker-only addresses to evict with")
    actions = [access(address) for address in eviction_addresses]
    actions.append(trigger())
    actions.extend(access(address) for address in shared)
    return AttackSequence(actions=actions, category=AttackCategory.EVICT_RELOAD,
                          name="textbook evict+reload",
                          description="evict shared lines by filling, trigger victim, reload")


def textbook_attack_for_config(config: EnvConfig) -> AttackSequence:
    """Pick the canonical textbook attack feasible under ``config``.

    Preference order mirrors the paper's "expected attacks" column: use
    flush+reload when flush and sharing are available, evict+reload when only
    sharing is available, and prime+probe otherwise.
    """
    shared = config.shared_addresses
    if shared and config.flush_enable:
        return flush_reload_sequence(config)
    if shared and len(config.attacker_addresses) > len(shared):
        return evict_reload_sequence(config)
    return prime_probe_sequence(config)
