"""Attack-sequence representation shared by the textbook attacks and the classifier."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.env.actions import Action, ActionKind, ActionSpace


class AttackCategory(enum.Enum):
    """Known attack categories (Table I plus the LRU-state attacks)."""

    PRIME_PROBE = "prime+probe"
    FLUSH_RELOAD = "flush+reload"
    EVICT_RELOAD = "evict+reload"
    EVICT_TIME = "evict+time"
    LRU_STATE = "lru"
    STREAMLINE = "streamline"
    STEALTHY_STREAMLINE = "stealthy_streamline"
    UNKNOWN = "unknown"


@dataclass
class AttackSequence:
    """A sequence of semantic actions, optionally tagged with its category."""

    actions: List[Action]
    category: AttackCategory = AttackCategory.UNKNOWN
    name: str = ""
    description: str = ""

    def __len__(self) -> int:
        return len(self.actions)

    def render(self) -> str:
        """Arrow notation used throughout the paper (e.g. "7 -> 4 -> v -> g")."""
        return " -> ".join(str(action) for action in self.actions)

    def to_indices(self, action_space: ActionSpace) -> List[int]:
        """Encode the semantic actions into indices of a concrete action space."""
        return [action_space.encode(action) for action in self.actions]

    @property
    def uses_flush(self) -> bool:
        return any(action.kind is ActionKind.FLUSH for action in self.actions)

    @property
    def trigger_count(self) -> int:
        return sum(1 for action in self.actions if action.kind is ActionKind.TRIGGER)

    @property
    def accessed_addresses(self) -> List[int]:
        return [action.address for action in self.actions
                if action.kind is ActionKind.ACCESS and action.address is not None]

    @classmethod
    def from_labels(cls, labels: Sequence[str], name: str = "",
                    category: AttackCategory = AttackCategory.UNKNOWN) -> "AttackSequence":
        """Parse the paper's compact notation: "3", "f2", "v", "g4", "gE"."""
        actions: List[Action] = []
        for label in labels:
            label = label.strip()
            if label == "v":
                actions.append(Action(ActionKind.TRIGGER))
            elif label == "gE":
                actions.append(Action(ActionKind.GUESS_EMPTY))
            elif label.startswith("g"):
                address = label[1:]
                actions.append(Action(ActionKind.GUESS, int(address) if address else None))
            elif label.startswith("f"):
                actions.append(Action(ActionKind.FLUSH, int(label[1:])))
            else:
                actions.append(Action(ActionKind.ACCESS, int(label)))
        return cls(actions=actions, name=name, category=category)


def access(address: int) -> Action:
    return Action(ActionKind.ACCESS, address)


def flush(address: int) -> Action:
    return Action(ActionKind.FLUSH, address)


def trigger() -> Action:
    return Action(ActionKind.TRIGGER)


def guess(address: Optional[int] = None) -> Action:
    if address is None:
        return Action(ActionKind.GUESS_EMPTY)
    return Action(ActionKind.GUESS, address)
