"""Streamline-style overlapped flush+reload covert channel (Saileshwar et al., 2021).

Streamline achieves a high bit rate by overlapping the steps of consecutive
symbols, but — unlike the LRU-state attacks and StealthyStreamline — the
sender's secret-dependent access *misses* (the receiver evicted/flushed the
line first), so a performance-counter detector watching the victim's miss rate
sees it immediately.  This channel is the non-stealthy, high-rate reference
point in the Figure-4 comparison.
"""

from __future__ import annotations

from repro.attacks.covert import SimulatedCovertChannel


class StreamlineChannel(SimulatedCovertChannel):
    """Two-bit-per-symbol flush-based channel: fast but causes sender misses."""

    name = "streamline"
    bits_per_symbol = 2

    def __init__(self, num_ways: int = 8, rep_policy: str = "lru", seed: int = 0,
                 use_flush: bool = True):
        super().__init__(num_ways=num_ways, rep_policy=rep_policy, seed=seed)
        self.victim_lines = [0, 1, 2, 3]
        self.use_flush = use_flush
        self.evict_lines = list(range(4, 4 + num_ways))

    def prepare(self) -> None:
        for address in self.victim_lines:
            self._receiver_flush(address) if self.use_flush else self._receiver_access(address)

    def send_and_receive_symbol(self, value: int) -> int:
        # 1. Remove every victim line (flush, or eviction when flush is unavailable).
        if self.use_flush:
            for address in self.victim_lines:
                self._receiver_flush(address)
        else:
            for address in self.evict_lines:
                self._receiver_access(address)
        # 2. The sender touches the line encoding the symbol — necessarily a miss.
        self._sender_access(self.victim_lines[value % 4])
        # 3. The receiver reloads each victim line; the hit identifies the symbol.
        decoded = 0
        for position, address in enumerate(self.victim_lines):
            if self._receiver_access(address, measure=True):
                decoded = position
        return decoded
