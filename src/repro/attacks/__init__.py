"""Attack library: textbook attack sequences, LRU-state attacks, Streamline,
StealthyStreamline, covert channels, and a Spectre-v1 demonstration.

The RL agent discovers attack *sequences*; this package provides the known
attack *categories* (Table I) as scripted generators so they can be compared
against, evaluated on the simulator, and used to train detectors.
"""

from repro.attacks.sequences import AttackSequence, AttackCategory
from repro.attacks.evaluate import (
    evaluate_action_sequence,
    observation_signature,
    distinguishing_accuracy,
)
from repro.attacks.textbook import (
    prime_probe_sequence,
    flush_reload_sequence,
    evict_reload_sequence,
    textbook_attack_for_config,
)
from repro.attacks.scripted import TextbookPrimeProbeAttacker, run_scripted_attacker
from repro.attacks.lru_attacks import (
    LRUAddressBasedChannel,
    lru_address_based_sequence,
    lru_set_based_sequence,
)
from repro.attacks.streamline import StreamlineChannel
from repro.attacks.stealthy_streamline import StealthyStreamlineChannel
from repro.attacks.covert import ChannelTransmissionResult, SimulatedCovertChannel
from repro.attacks.spectre import SpectreV1Victim, run_spectre_demo

__all__ = [
    "AttackSequence",
    "AttackCategory",
    "evaluate_action_sequence",
    "observation_signature",
    "distinguishing_accuracy",
    "prime_probe_sequence",
    "flush_reload_sequence",
    "evict_reload_sequence",
    "textbook_attack_for_config",
    "TextbookPrimeProbeAttacker",
    "run_scripted_attacker",
    "LRUAddressBasedChannel",
    "lru_address_based_sequence",
    "lru_set_based_sequence",
    "StreamlineChannel",
    "StealthyStreamlineChannel",
    "ChannelTransmissionResult",
    "SimulatedCovertChannel",
    "SpectreV1Victim",
    "run_spectre_demo",
]
