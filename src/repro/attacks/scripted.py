"""Scripted (non-RL) attackers used as the "textbook" rows of Tables VIII and IX.

The textbook prime+probe attacker always executes the full for-loop attack:
prime every attacker line, trigger the victim, probe every attacker line, then
guess from the missing probe — even when an early probe already reveals the
answer.  Its periodic structure is exactly what CC-Hunter and Cyclone detect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.detection.autocorrelation import AutocorrelationDetector
from repro.env.actions import Action, ActionKind
from repro.env.covert_env import MultiGuessCovertEnv


class TextbookPrimeProbeAttacker:
    """Fixed-loop prime+probe attacker for a direct-mapped cache covert channel."""

    def __init__(self, env: MultiGuessCovertEnv):
        self.env = env
        config = env.config
        self.attacker_addresses = config.attacker_addresses
        self.victim_addresses = config.victim_addresses
        self.num_sets = config.cache.num_sets
        self.reset()

    def reset(self) -> None:
        self._plan: List[int] = []
        self._probe_results: Dict[int, bool] = {}
        self._phase = "prime"

    # ------------------------------------------------------------------ plan
    def _encode(self, action: Action) -> int:
        return self.env.actions.encode(action)

    def _build_round(self) -> List[int]:
        plan = [self._encode(Action(ActionKind.ACCESS, address))
                for address in self.attacker_addresses]
        plan.append(self._encode(Action(ActionKind.TRIGGER)))
        plan.extend(self._encode(Action(ActionKind.ACCESS, address))
                    for address in self.attacker_addresses)
        return plan

    def _guess_from_probes(self) -> int:
        missed = [address for address, hit in self._probe_results.items() if not hit]
        if missed:
            target_set = missed[0] % self.num_sets
            for victim_address in self.victim_addresses:
                if victim_address % self.num_sets == target_set:
                    return self._encode(Action(ActionKind.GUESS, victim_address))
        if self.env.config.victim_no_access_enable:
            return self._encode(Action(ActionKind.GUESS_EMPTY))
        return self._encode(Action(ActionKind.GUESS, self.victim_addresses[0]))

    # ------------------------------------------------------------------- act
    def act(self, last_info: Optional[Dict]) -> int:
        """Choose the next action index given the info dict of the previous step."""
        if last_info is not None:
            action = last_info.get("action")
            if (action is not None and action.kind is ActionKind.ACCESS
                    and self._phase == "probe"):
                self._probe_results[action.address] = bool(last_info.get("hit"))
            if action is not None and action.is_guess:
                self.reset()
        if not self._plan:
            if self._phase == "prime":
                self._plan = self._build_round()
                self._probe_results = {}
                self._phase = "probe"
            else:
                self._phase = "prime"
                return self._guess_from_probes()
        next_action = self._plan.pop(0)
        if not self._plan and self._phase == "probe":
            # After the last probe executes we will guess on the next call.
            pass
        return next_action


def run_scripted_attacker(env: MultiGuessCovertEnv, attacker, episodes: int = 3,
                          autocorrelation_detector: Optional[AutocorrelationDetector] = None) -> Dict:
    """Run a scripted attacker for full episodes and aggregate channel statistics."""
    detector = autocorrelation_detector or AutocorrelationDetector()
    bit_rates: List[float] = []
    accuracies: List[float] = []
    max_autocorrelations: List[float] = []
    traces = []
    for _ in range(episodes):
        env.reset()
        attacker.reset()
        last_info: Optional[Dict] = None
        done = False
        while not done:
            action_index = attacker.act(last_info)
            _observation, _reward, done, info = env.step(action_index)
            last_info = info
        statistics = env.episode_statistics()
        bit_rates.append(statistics["bit_rate"])
        accuracies.append(statistics["guess_accuracy"])
        events = env.backend.events
        train = events.conflict_train() if events is not None else []
        max_autocorrelations.append(detector.max_autocorrelation(train))
        traces.append([(entry.actor, entry.address) for entry in env.trace
                       if entry.kind == "access" and entry.address is not None])
    return {
        "bit_rate": float(np.mean(bit_rates)),
        "guess_accuracy": float(np.mean(accuracies)),
        "max_autocorrelation": float(np.mean(max_autocorrelations)),
        "traces": traces,
        "episodes": episodes,
    }
