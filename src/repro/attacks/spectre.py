"""Spectre-v1 demonstration using a cache covert channel (Sec. V-E).

The paper tests Spectre V1 with StealthyStreamline as the transmission
channel.  This module models the essential structure: a victim with a bounds
check that is bypassed speculatively, a secret byte array, and a
secret-dependent access into a probe array.  The "speculative" access is the
sender side of a covert channel; the attacker recovers the secret two bits at
a time by decoding the channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.attacks.covert import SimulatedCovertChannel
from repro.attacks.stealthy_streamline import StealthyStreamlineChannel


@dataclass
class SpectreV1Victim:
    """A victim with a speculatively-bypassable bounds check.

    ``array1`` has ``bounds`` in-bounds entries; the secret lives just past the
    end.  ``speculative_read(index)`` models the transient window: the bounds
    check is bypassed and the secret-dependent value is returned so it can
    drive a cache access, but the architectural result is always 0.
    """

    secret: bytes
    bounds: int = 16

    def in_bounds(self, index: int) -> bool:
        return 0 <= index < self.bounds

    def architectural_read(self, index: int) -> int:
        """The committed result: out-of-bounds reads return 0."""
        if self.in_bounds(index):
            return index % 251
        return 0

    def speculative_read(self, index: int) -> Optional[int]:
        """The transiently-forwarded value: out-of-bounds reads leak the secret."""
        if self.in_bounds(index):
            return self.architectural_read(index)
        offset = index - self.bounds
        if 0 <= offset < len(self.secret):
            return self.secret[offset]
        return None


def run_spectre_demo(secret: bytes = b"AutoCAT", channel: Optional[SimulatedCovertChannel] = None,
                     bounds: int = 16) -> dict:
    """Recover ``secret`` through the covert channel; return the transcript.

    Each secret byte is transmitted as four 2-bit symbols (most significant
    pair first) by letting the speculative, secret-dependent access play the
    channel's sender role.
    """
    channel = channel or StealthyStreamlineChannel(num_ways=8)
    victim = SpectreV1Victim(secret=secret, bounds=bounds)
    channel.cache.reset()
    channel._reset_counters()
    channel.prepare()

    recovered: List[int] = []
    for offset in range(len(secret)):
        leaked = victim.speculative_read(victim.bounds + offset)
        if leaked is None:
            break
        byte_value = 0
        for pair_index in range(4):
            pair = (leaked >> (6 - 2 * pair_index)) & 0b11
            decoded = channel.send_and_receive_symbol(pair)
            byte_value = (byte_value << 2) | decoded
        recovered.append(byte_value)

    recovered_bytes = bytes(recovered)
    correct = sum(1 for a, b in zip(secret, recovered_bytes) if a == b)
    return {
        "secret": secret,
        "recovered": recovered_bytes,
        "byte_accuracy": correct / len(secret) if secret else 1.0,
        "sender_misses": channel.sender_misses,
        "total_accesses": channel.total_accesses,
        "stealthy": channel.sender_misses == 0,
    }
