"""StealthyStreamline: the new attack discovered by AutoCAT (Sec. V-D / Fig. 4).

StealthyStreamline combines the LRU-state attacks (which never make the victim
miss, so they bypass miss-count detection) with Streamline-style overlapping
of steps for multiple bits, yielding a stealthy channel with a higher bit rate
than the LRU address-based baseline.

On the simulator the 2-bit variant works as follows for a W-way set (W >= 8)
with true/pseudo LRU replacement:

1. the receiver primes victim lines 0-3 and filler lines 4..W-1 in order, so
   the victim lines are the oldest and their relative ages are known;
2. the sender accesses line ``s`` (the 2-bit symbol) — a *hit*, since the line
   was just primed, so the victim/sender never misses;
3. the receiver accesses three fresh lines, evicting the three oldest lines —
   exactly the victim lines other than ``s``;
4. the receiver reloads lines 0-3 and measures each: the single hit identifies
   ``s`` (the refills evict filler lines, never ``s``, because ``s`` was
   promoted above the fillers in step 2).

Only the four reload accesses need to be timed, which is where the real-machine
bit-rate advantage over the LRU address-based channel comes from.
"""

from __future__ import annotations

from typing import List

from repro.attacks.covert import SimulatedCovertChannel
from repro.attacks.sequences import AttackCategory, AttackSequence, access, guess, trigger
from repro.env.config import EnvConfig


class StealthyStreamlineChannel(SimulatedCovertChannel):
    """Two-bit-per-symbol stealthy covert channel over replacement state."""

    name = "stealthy_streamline"
    bits_per_symbol = 2

    def __init__(self, num_ways: int = 8, rep_policy: str = "lru", seed: int = 0):
        if num_ways < 8:
            raise ValueError("the 2-bit StealthyStreamline channel needs at least 8 ways")
        super().__init__(num_ways=num_ways, rep_policy=rep_policy, seed=seed)
        self.victim_lines = [0, 1, 2, 3]
        self.filler_lines = list(range(4, num_ways))
        self.evict_lines = [num_ways, num_ways + 1, num_ways + 2]

    def prepare(self) -> None:
        for address in self.victim_lines + self.filler_lines:
            self._receiver_access(address)

    def send_and_receive_symbol(self, value: int) -> int:
        # 1. Re-prime so the victim lines are the oldest, in known order.
        for address in self.victim_lines + self.filler_lines:
            self._receiver_access(address)
        # 2. The sender encodes the symbol by touching one victim line (a hit).
        self._sender_access(self.victim_lines[value % 4])
        # 3. Three fresh lines evict the three untouched victim lines.
        for address in self.evict_lines:
            self._receiver_access(address)
        # 4. Reload and measure the victim lines; the surviving one is the symbol.
        decoded = 0
        for position, address in enumerate(self.victim_lines):
            if self._receiver_access(address, measure=True):
                decoded = position
        return decoded


def stealthy_streamline_sequence(config: EnvConfig) -> AttackSequence:
    """StealthyStreamline as a guessing-game action sequence for a 4-way set.

    This is the Figure 4(b)-style sequence: prime the victim-reachable lines,
    trigger the victim, bring in a fresh line, and reload — the reload that
    hits identifies the victim's access, and the victim itself never misses.
    """
    attacker = config.attacker_addresses
    victim = config.victim_addresses
    shared = [address for address in victim if address in attacker]
    if not shared:
        raise ValueError("StealthyStreamline needs the victim lines to be attacker-reachable")
    fresh = [address for address in attacker if address not in shared]
    if not fresh:
        raise ValueError("StealthyStreamline needs at least one attacker-only line")
    actions = [access(address) for address in shared]
    actions.append(trigger())
    actions.extend(access(address) for address in fresh[: max(1, len(shared) - 1)])
    actions.extend(access(address) for address in shared)
    return AttackSequence(actions=actions, category=AttackCategory.STEALTHY_STREAMLINE,
                          name="StealthyStreamline",
                          description="stealthy replacement-state attack with overlapped bits")
